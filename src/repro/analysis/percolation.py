"""Percolation theory: the Molloy–Reed criterion.

Random-failure robustness has a closed form: a random graph with degree
distribution P(k) keeps a giant component while

    kappa = <k²> / <k>  >  2

and the critical random-removal fraction is

    f_c = 1 − 1 / (kappa − 1).

For heavy-tailed networks ⟨k²⟩ diverges with size, so f_c → 1 — the
analytic root of the "robust to failure" half of the attack experiment
(A3).  These functions compute the criterion so sweeps can be checked
against theory instead of eyeballed.
"""

from __future__ import annotations

from ..graph.graph import Graph

__all__ = ["molloy_reed_ratio", "critical_failure_fraction", "has_giant_component_criterion"]


def molloy_reed_ratio(graph: Graph) -> float:
    """kappa = <k²>/<k> of the degree distribution."""
    degrees = list(graph.degrees().values())
    if not degrees:
        raise ValueError("empty graph has no degree distribution")
    mean_k = sum(degrees) / len(degrees)
    if mean_k == 0:
        raise ValueError("graph has no edges")
    mean_k2 = sum(k * k for k in degrees) / len(degrees)
    return mean_k2 / mean_k


def has_giant_component_criterion(graph: Graph) -> bool:
    """Molloy–Reed: kappa > 2 predicts a giant component (for random
    wiring with this degree sequence)."""
    return molloy_reed_ratio(graph) > 2.0


def critical_failure_fraction(graph: Graph) -> float:
    """Predicted random-removal fraction destroying the giant component.

    ``f_c = 1 − 1/(kappa − 1)``; clamped to [0, 1].  Values near 1 mean
    "effectively unbreakable by random failure" — the heavy-tail signature.
    The prediction is exact for configuration-model wiring and a good
    first-order guide for the correlated graphs the generators produce.
    """
    kappa = molloy_reed_ratio(graph)
    if kappa <= 1.0:
        return 0.0
    return min(max(1.0 - 1.0 / (kappa - 1.0), 0.0), 1.0)
