"""Traceroute sampling bias (Lakhina–Byers–Crovella–Xie).

The cautionary tale of internet measurement: AS/router maps are built from
traceroute-like shortest-path samples out of a few monitors, and such
sampling is *biased* — links near monitors are oversampled, low-degree
nodes near the fringe are missed, and the sampled degree distribution of
even a degree-homogeneous (ER) network can look heavy-tailed.  Any claim
about the internet's topology has to survive this critique, so the toolkit
ships the instrument to reproduce it.

:func:`traceroute_sample` builds the union of one shortest path per
(monitor, destination) pair — the idealized one-probe-per-pair traceroute
study — and returns it as a topology whose bias can be measured against
the ground truth it came from.
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Sequence

from ..graph.graph import Graph
from ..graph.traversal import bfs_tree
from ..stats.rng import SeedLike, make_rng

__all__ = ["traceroute_sample"]

Node = Hashable


def traceroute_sample(
    graph: Graph,
    num_monitors: int = 3,
    destinations: Optional[Sequence[Node]] = None,
    seed: SeedLike = 0,
) -> Graph:
    """Sample *graph* the way a traceroute study would see it.

    *num_monitors* sources are drawn uniformly; from each, one shortest
    path (the BFS-tree path) is traced to every destination (default: all
    nodes).  The sampled topology is the union of those paths — nodes or
    links never on any monitor's tree simply do not exist in the map,
    exactly like the real measurement artifact.
    """
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("cannot sample an empty graph")
    if not 1 <= num_monitors <= len(nodes):
        raise ValueError("num_monitors must be in [1, N]")
    rng = make_rng(seed)
    monitors = rng.sample(nodes, num_monitors)
    targets = list(destinations) if destinations is not None else nodes

    sampled = Graph(name=f"{graph.name}-traceroute-{num_monitors}" if graph.name
                    else f"traceroute-{num_monitors}")
    for monitor in monitors:
        parent = bfs_tree(graph, monitor)
        sampled.add_node(monitor)
        for destination in targets:
            if destination == monitor or destination not in parent:
                continue  # unreachable from this monitor
            # Walk destination → monitor through the BFS tree, adding the
            # traversed links (idempotent: Graph.add_edge would reinforce,
            # so guard with has_edge — the sampled map is unweighted).
            current = destination
            while current != monitor:
                above = parent[current]
                if not sampled.has_edge(current, above):
                    sampled.add_edge(current, above)
                current = above
    return sampled
