"""Measurement techniques: attachment kernels and sampling bias."""

from .kernel import KernelMeasurement, measure_attachment_kernel, snapshot_pair
from .percolation import (
    critical_failure_fraction,
    has_giant_component_criterion,
    molloy_reed_ratio,
)
from .sampling_bias import traceroute_sample

__all__ = [
    "KernelMeasurement",
    "measure_attachment_kernel",
    "snapshot_pair",
    "traceroute_sample",
    "molloy_reed_ratio",
    "critical_failure_fraction",
    "has_giant_component_criterion",
]
