"""Measuring the attachment kernel (Jeong–Néda–Barabási).

Growth models *assume* a preference function Π(k); measurement papers
showed how to recover it from two snapshots of a growing network: nodes
present at time t₁ with degree k receive new links between t₁ and t₂ at a
rate proportional to Π(k), so binning degree gains against initial degree
and fitting ``gain(k) ∝ k^a`` estimates the kernel exponent — a = 1 for
linear preferential attachment, a > 1 for positive feedback, a ≈ 0 for
uniform attachment.

Snapshots come for free from seeded growth models: for a deterministic
growth process, ``generate(n₂, seed)`` extends ``generate(n₁, seed)``
node-for-node, so the two calls *are* two snapshots of one growth history.
:func:`snapshot_pair` exploits that (and verifies the prefix property);
models that violate it (rewiring moves, structural generators) are
rejected loudly rather than measured wrongly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..generators.base import TopologyGenerator
from ..graph.graph import Graph
from ..stats.distributions import binned_spectrum
from ..stats.growth import PowerFit, fit_power_scaling
from ..stats.rng import SeedLike

__all__ = ["KernelMeasurement", "snapshot_pair", "measure_attachment_kernel"]


@dataclass(frozen=True)
class KernelMeasurement:
    """Result of one kernel measurement.

    ``exponent`` is the fitted a in gain(k) ∝ k^a; ``spectrum`` holds the
    log-binned (k, mean gain) points behind the fit.
    """

    exponent: float
    exponent_stderr: float
    r_squared: float
    spectrum: Tuple[Tuple[float, float], ...]
    nodes_measured: int


def snapshot_pair(
    generator: TopologyGenerator, n1: int, n2: int, seed: SeedLike
) -> Tuple[Graph, Graph]:
    """Two snapshots of one growth history via the seeded-prefix property.

    Verifies that the n₁-snapshot truly is a prefix of the n₂-snapshot
    (same nodes, every early edge still present); raises
    :class:`ValueError` for generators whose dynamics rewire or whose
    node sets differ — those cannot be measured this way.
    """
    if not 1 < n1 < n2:
        raise ValueError("need 1 < n1 < n2")
    early = generator.generate(n1, seed=seed)
    late = generator.generate(n2, seed=seed)
    early_nodes = set(early.nodes())
    if not early_nodes <= set(late.nodes()):
        raise ValueError(
            f"{generator.name}: early nodes missing from the late snapshot; "
            "not a prefix-stable growth model"
        )
    for u, v in early.edges():
        if not late.has_edge(u, v):
            raise ValueError(
                f"{generator.name}: edge ({u!r}, {v!r}) vanished between "
                "snapshots; growth is not prefix-stable (rewiring moves?)"
            )
    return early, late


def measure_attachment_kernel(
    generator: TopologyGenerator,
    n1: int = 1000,
    n2: int = 2000,
    seed: SeedLike = 0,
    bins_per_decade: int = 6,
    min_k: int = 1,
) -> KernelMeasurement:
    """Estimate the attachment-kernel exponent of a growth model.

    Measures the degree gain of every node alive at the n₁ snapshot over
    the window to n₂, log-bins gains against initial degree, and fits the
    power law.  Bins with zero mean gain are dropped before fitting (they
    carry no log-scale information).
    """
    early, late = snapshot_pair(generator, n1, n2, seed)
    pairs: List[Tuple[float, float]] = []
    for node in early.nodes():
        k0 = early.degree(node)
        if k0 < min_k:
            continue
        gain = late.degree(node) - k0
        pairs.append((float(k0), float(gain)))
    if len(pairs) < 10:
        raise ValueError("too few measurable nodes; grow a larger window")
    spectrum = binned_spectrum(pairs, log_bins=True, bins_per_decade=bins_per_decade)
    positive = [(k, g) for k, g in spectrum if g > 0]
    if len(positive) < 3:
        raise ValueError("degree gains too sparse to fit a kernel")
    fit: PowerFit = fit_power_scaling(
        [k for k, _ in positive], [g for _, g in positive]
    )
    return KernelMeasurement(
        exponent=fit.exponent,
        exponent_stderr=fit.exponent_stderr,
        r_squared=fit.r_squared,
        spectrum=tuple(spectrum),
        nodes_measured=len(pairs),
    )
