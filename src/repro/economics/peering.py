"""Peering strategy: when does a settlement-free link pay for itself?

The operational version of "can you make a living": an AS pays its
providers per unit of transit; a candidate peering link lets the traffic
between the two ASes' customer cones flow directly, free of per-unit
charges, in exchange for a fixed monthly port cost.  The break-even rule:

    peer iff  transit_price * offloadable_volume  >  peering_cost

for *both* sides — settlement-free peering only forms when the savings are
mutual (the real-world "peering inclination" asymmetry drops out of the
symmetric pricing used here, but the mutuality constraint stays).

:func:`evaluate_peering` prices one candidate pair; :func:`suggest_peerings`
scans non-adjacent pairs among the largest cones and ranks the mutually
profitable candidates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..graph.graph import Graph
from .market import PricingModel
from .relationships import RelationshipMap
from .traffic import TrafficMatrix

__all__ = ["PeeringAssessment", "evaluate_peering", "suggest_peerings"]

Node = Hashable


@dataclass(frozen=True)
class PeeringAssessment:
    """Economics of one candidate peering.

    ``offload_volume`` — traffic between the two customer cones that the
    link would carry directly; ``monthly_saving_a/b`` — each side's
    avoided transit charges net of the port cost.
    """

    a: Node
    b: Node
    offload_volume: float
    monthly_saving_a: float
    monthly_saving_b: float

    @property
    def mutually_beneficial(self) -> bool:
        """Whether both sides come out ahead."""
        return self.monthly_saving_a > 0 and self.monthly_saving_b > 0


def _cone_volume(
    matrix: TrafficMatrix, cone_a: set, cone_b: set
) -> float:
    """Total demand between two (disjoint) customer cones."""
    volume = 0.0
    for flow in matrix.flows:
        if (flow.source in cone_a and flow.destination in cone_b) or (
            flow.source in cone_b and flow.destination in cone_a
        ):
            volume += flow.volume
    return volume


def evaluate_peering(
    rels: RelationshipMap,
    matrix: TrafficMatrix,
    a: Node,
    b: Node,
    pricing: Optional[PricingModel] = None,
) -> PeeringAssessment:
    """Price the candidate peering (a, b).

    Cones that overlap (one AS transits the other already) offload nothing
    — the assessment returns zero volume rather than double-counting.
    """
    pricing = pricing or PricingModel()
    cone_a = rels.customer_cone(a)
    cone_b = rels.customer_cone(b)
    if cone_a & cone_b:
        volume = 0.0
    else:
        volume = _cone_volume(matrix, cone_a, cone_b)
    # Each side currently pays transit for this volume iff it has providers
    # (tier-1s already reach everyone settlement-free).
    saving_a = (
        pricing.transit_price * volume if rels.providers(a) else 0.0
    ) - pricing.peering_cost
    saving_b = (
        pricing.transit_price * volume if rels.providers(b) else 0.0
    ) - pricing.peering_cost
    return PeeringAssessment(
        a=a, b=b, offload_volume=volume,
        monthly_saving_a=saving_a, monthly_saving_b=saving_b,
    )


def suggest_peerings(
    graph: Graph,
    rels: RelationshipMap,
    matrix: TrafficMatrix,
    pricing: Optional[PricingModel] = None,
    top_candidates: int = 20,
) -> List[PeeringAssessment]:
    """Rank mutually beneficial peerings among the biggest candidate ASes.

    Scans the *top_candidates* largest customer cones (the ASes with
    traffic worth offloading), skipping pairs that are already adjacent or
    whose cones overlap, and returns mutually beneficial assessments sorted
    by combined savings, best first.
    """
    if top_candidates < 2:
        raise ValueError("need at least two candidates")
    pricing = pricing or PricingModel()
    sizes = rels.cone_sizes()
    ranked = sorted(sizes, key=lambda n: (-sizes[n], str(n)))[:top_candidates]
    suggestions: List[PeeringAssessment] = []
    for i, a in enumerate(ranked):
        for b in ranked[i + 1:]:
            if graph.has_edge(a, b):
                continue
            assessment = evaluate_peering(rels, matrix, a, b, pricing=pricing)
            if assessment.mutually_beneficial:
                suggestions.append(assessment)
    suggestions.sort(
        key=lambda s: -(s.monthly_saving_a + s.monthly_saving_b)
    )
    return suggestions
