"""Traffic demand and flow routing (experiment T3 substrate).

Inter-domain traffic is modeled with the **gravity model**: the volume
between two ASes is proportional to the product of their populations (user
counts), the standard first-order approximation for aggregate internet
demand.  Sampled flows are routed valley-free and accumulated into per-edge
and per-AS volumes — the quantities transit billing runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Tuple

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import AliasSampler
from .relationships import RelationshipMap
from .routing import routing_table

__all__ = ["Flow", "TrafficMatrix", "TrafficReport", "gravity_flows", "route_flows"]

Node = Hashable


@dataclass(frozen=True)
class Flow:
    """One source → destination demand of *volume* traffic units."""

    source: Node
    destination: Node
    volume: float


@dataclass
class TrafficMatrix:
    """A bag of sampled flows, grouped by destination for cheap routing."""

    flows: List[Flow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.flows)

    @property
    def total_volume(self) -> float:
        """Sum of all flow volumes."""
        return sum(f.volume for f in self.flows)

    def by_destination(self) -> Dict[Node, List[Flow]]:
        """Flows grouped by destination (routing tables are per-dest)."""
        grouped: Dict[Node, List[Flow]] = {}
        for flow in self.flows:
            grouped.setdefault(flow.destination, []).append(flow)
        return grouped


def gravity_flows(
    populations: Mapping[Node, float],
    num_flows: int,
    total_volume: float = 1_000_000.0,
    seed: SeedLike = None,
) -> TrafficMatrix:
    """Sample *num_flows* gravity-model flows.

    Endpoint pairs are drawn with probability ∝ pop(s)·pop(t), s ≠ t, and
    the *total_volume* is split equally across flows (so flow count sets
    granularity, populations set concentration).
    """
    if num_flows < 1:
        raise ValueError("num_flows must be >= 1")
    if total_volume <= 0:
        raise ValueError("total_volume must be positive")
    nodes = [n for n, p in populations.items() if p > 0]
    if len(nodes) < 2:
        raise ValueError("need at least two nodes with positive population")
    rng = make_rng(seed)
    sampler = AliasSampler([populations[n] for n in nodes], seed=rng)
    per_flow = total_volume / num_flows
    flows: List[Flow] = []
    while len(flows) < num_flows:
        s = nodes[sampler.sample()]
        t = nodes[sampler.sample()]
        if s != t:
            flows.append(Flow(source=s, destination=t, volume=per_flow))
    return TrafficMatrix(flows=flows)


@dataclass
class TrafficReport:
    """Routed traffic volumes.

    ``edge_volume`` — total volume crossing each undirected edge;
    ``carried`` — per AS, total volume it forwards *or* terminates;
    ``transit`` — per AS, volume it forwards on behalf of others;
    ``originated`` / ``terminated`` — per AS endpoint volumes;
    ``unroutable`` — volume dropped for lack of a valley-free route.
    """

    edge_volume: Dict[FrozenSet, float] = field(default_factory=dict)
    carried: Dict[Node, float] = field(default_factory=dict)
    transit: Dict[Node, float] = field(default_factory=dict)
    originated: Dict[Node, float] = field(default_factory=dict)
    terminated: Dict[Node, float] = field(default_factory=dict)
    unroutable: float = 0.0

    def volume_on_edge(self, u: Node, v: Node) -> float:
        """Volume that crossed edge (u, v) in either direction."""
        return self.edge_volume.get(frozenset((u, v)), 0.0)


def route_flows(
    graph: Graph,
    rels: RelationshipMap,
    matrix: TrafficMatrix,
) -> TrafficReport:
    """Route every flow valley-free and accumulate volumes.

    Builds one routing table per distinct destination (O(E) each), then
    walks each flow's path, crediting edge and node counters.  Flows with no
    valley-free route accumulate into ``unroutable`` instead of vanishing.
    """
    report = TrafficReport()
    for node in graph.nodes():
        report.carried[node] = 0.0
        report.transit[node] = 0.0
        report.originated[node] = 0.0
        report.terminated[node] = 0.0
    for destination, flows in matrix.by_destination().items():
        table = routing_table(graph, rels, destination)
        for flow in flows:
            path = table.path_from(flow.source)
            if path is None:
                report.unroutable += flow.volume
                continue
            report.originated[flow.source] += flow.volume
            report.terminated[flow.destination] += flow.volume
            for u, v in zip(path, path[1:]):
                key = frozenset((u, v))
                report.edge_volume[key] = report.edge_volume.get(key, 0.0) + flow.volume
            for position, node in enumerate(path):
                report.carried[node] += flow.volume
                if 0 < position < len(path) - 1:
                    report.transit[node] += flow.volume
    return report
