"""ISP profit-and-loss accounting — the "can you make a living?" question.

Given a topology, its relationship annotations, routed traffic and user
populations, compute each AS's stylized monthly books:

* **retail revenue** — its own users pay a flat subscription;
* **transit revenue** — customers pay per unit of traffic crossing their
  customer→provider links (both directions, the customer pays);
* **transit cost** — what the AS itself pays its providers, same rule;
* **peering cost** — flat per settlement-free link (ports, cross-connects);
* **carriage cost** — per unit of traffic the AS carries (backbone opex).

Absolute currency is meaningless without proprietary pricing data (see the
substitution table in DESIGN.md); every reported result is relative —
profitable fractions, revenue shares, tier-level margins, concentration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from ..graph.graph import Graph
from .relationships import RelationshipMap
from .traffic import TrafficReport

__all__ = ["PricingModel", "AsBooks", "MarketReport", "settle_market", "herfindahl_index"]

Node = Hashable


@dataclass(frozen=True)
class PricingModel:
    """Stylized price sheet, in arbitrary currency units.

    ``transit_price`` — per traffic unit on a customer→provider link;
    ``retail_price`` — per user per month;
    ``peering_cost`` — per peer link per month;
    ``carriage_cost`` — per traffic unit carried;
    ``link_cost`` — fixed per adjacent link per month (maintenance).
    """

    transit_price: float = 1.0
    retail_price: float = 2.0
    peering_cost: float = 50.0
    carriage_cost: float = 0.05
    link_cost: float = 10.0

    def __post_init__(self):
        for name in ("transit_price", "retail_price", "peering_cost", "carriage_cost", "link_cost"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass
class AsBooks:
    """One AS's monthly books."""

    node: Node
    tier: int
    users: float
    retail_revenue: float
    transit_revenue: float
    transit_cost: float
    peering_cost: float
    carriage_cost: float
    link_cost: float

    @property
    def revenue(self) -> float:
        """Total revenue."""
        return self.retail_revenue + self.transit_revenue

    @property
    def cost(self) -> float:
        """Total cost."""
        return self.transit_cost + self.peering_cost + self.carriage_cost + self.link_cost

    @property
    def profit(self) -> float:
        """Revenue minus cost."""
        return self.revenue - self.cost

    @property
    def profitable(self) -> bool:
        """Whether the AS at least breaks even."""
        return self.profit >= 0.0


@dataclass
class MarketReport:
    """Market-wide settlement outcome."""

    books: Dict[Node, AsBooks] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.books)

    def by_tier(self) -> Dict[int, List[AsBooks]]:
        """Books grouped by tier."""
        grouped: Dict[int, List[AsBooks]] = {}
        for entry in self.books.values():
            grouped.setdefault(entry.tier, []).append(entry)
        return grouped

    def profitable_fraction(self, tier: Optional[int] = None) -> float:
        """Fraction of ASes (optionally within *tier*) that break even."""
        entries = [
            b for b in self.books.values() if tier is None or b.tier == tier
        ]
        if not entries:
            return 0.0
        return sum(1 for b in entries if b.profitable) / len(entries)

    def transit_revenue_concentration(self) -> float:
        """Herfindahl–Hirschman index of transit revenue shares (0..1)."""
        return herfindahl_index([b.transit_revenue for b in self.books.values()])

    def tier_summary(self) -> List[Tuple[int, int, float, float, float]]:
        """Rows (tier, count, mean profit, mean transit revenue, profitable
        fraction), ascending by tier."""
        rows = []
        for tier, entries in sorted(self.by_tier().items()):
            count = len(entries)
            mean_profit = sum(b.profit for b in entries) / count
            mean_transit = sum(b.transit_revenue for b in entries) / count
            frac = sum(1 for b in entries if b.profitable) / count
            rows.append((tier, count, mean_profit, mean_transit, frac))
        return rows


def herfindahl_index(values) -> float:
    """HHI of the share distribution of *values* (0 = atomized, 1 = monopoly)."""
    total = float(sum(values))
    if total <= 0:
        return 0.0
    return sum((v / total) ** 2 for v in values)


def settle_market(
    graph: Graph,
    rels: RelationshipMap,
    traffic: TrafficReport,
    users: Optional[Mapping[Node, float]] = None,
    pricing: Optional[PricingModel] = None,
) -> MarketReport:
    """Run one settlement month and return every AS's books.

    *users* defaults to 1 per AS when populations are unknown; *pricing*
    defaults to :class:`PricingModel` defaults.
    """
    pricing = pricing or PricingModel()
    tiers = rels.tiers()
    report = MarketReport()
    for node in graph.nodes():
        population = float(users.get(node, 0.0)) if users is not None else 1.0
        transit_revenue = 0.0
        transit_cost = 0.0
        for customer in rels.customers(node):
            transit_revenue += pricing.transit_price * traffic.volume_on_edge(node, customer)
        for provider in rels.providers(node):
            transit_cost += pricing.transit_price * traffic.volume_on_edge(node, provider)
        entry = AsBooks(
            node=node,
            tier=tiers.get(node, 1),
            users=population,
            retail_revenue=pricing.retail_price * population,
            transit_revenue=transit_revenue,
            transit_cost=transit_cost,
            peering_cost=pricing.peering_cost * len(rels.peers(node)),
            carriage_cost=pricing.carriage_cost * traffic.carried.get(node, 0.0),
            link_cost=pricing.link_cost * graph.degree(node),
        )
        report.books[node] = entry
    return report
