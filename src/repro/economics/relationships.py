"""AS business relationships (experiment T3 substrate).

Inter-domain links are not all equal: most are **customer→provider**
(the customer pays for transit), a minority are settlement-free **peer**
links.  Relationship structure is what turns a topology into an economy —
and what constrains routing (valley-free, :mod:`repro.economics.routing`).

Real relationship data is inferred from BGP tables (Gao 2001).  Without BGP
feeds we *assign* relationships with the same degree-hierarchy heuristic the
inference literature validates against: the top clique of the largest ASes
peer among themselves (tier 1), similar-sized ASes peer, and unequal edges
point customer→provider from the smaller to the larger AS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from ..graph.graph import Graph

__all__ = ["Relationship", "RelationshipMap", "assign_relationships"]

Node = Hashable


class Relationship(enum.Enum):
    """Directed role of an edge from a node's own perspective."""

    CUSTOMER_TO_PROVIDER = "c2p"  # I pay the neighbor for transit
    PROVIDER_TO_CUSTOMER = "p2c"  # the neighbor pays me
    PEER_TO_PEER = "p2p"          # settlement-free


@dataclass
class RelationshipMap:
    """Edge relationship annotations over a topology.

    ``_providers[u]`` / ``_customers[u]`` / ``_peers[u]`` hold u's neighbor
    sets by role.  Built by :func:`assign_relationships`; immutable in
    spirit (mutate only through that constructor).
    """

    _providers: Dict[Node, Set[Node]] = field(default_factory=dict)
    _customers: Dict[Node, Set[Node]] = field(default_factory=dict)
    _peers: Dict[Node, Set[Node]] = field(default_factory=dict)

    # -------------------------------------------------------------- building

    def _ensure(self, node: Node) -> None:
        self._providers.setdefault(node, set())
        self._customers.setdefault(node, set())
        self._peers.setdefault(node, set())

    def add_customer_provider(self, customer: Node, provider: Node) -> None:
        """Annotate *customer* → *provider* (customer pays)."""
        self._ensure(customer)
        self._ensure(provider)
        self._providers[customer].add(provider)
        self._customers[provider].add(customer)

    def add_peering(self, a: Node, b: Node) -> None:
        """Annotate a settlement-free peer link."""
        self._ensure(a)
        self._ensure(b)
        self._peers[a].add(b)
        self._peers[b].add(a)

    # -------------------------------------------------------------- queries

    def nodes(self) -> Iterable[Node]:
        """All annotated nodes."""
        return self._providers.keys()

    def providers(self, node: Node) -> Set[Node]:
        """Neighbors *node* buys transit from."""
        return set(self._providers.get(node, ()))

    def customers(self, node: Node) -> Set[Node]:
        """Neighbors that buy transit from *node*."""
        return set(self._customers.get(node, ()))

    def peers(self, node: Node) -> Set[Node]:
        """Settlement-free neighbors of *node*."""
        return set(self._peers.get(node, ()))

    def relationship(self, u: Node, v: Node) -> Relationship:
        """Role of edge (u, v) from u's perspective."""
        if v in self._providers.get(u, ()):
            return Relationship.CUSTOMER_TO_PROVIDER
        if v in self._customers.get(u, ()):
            return Relationship.PROVIDER_TO_CUSTOMER
        if v in self._peers.get(u, ()):
            return Relationship.PEER_TO_PEER
        raise KeyError(f"edge ({u!r}, {v!r}) has no relationship annotation")

    def is_stub(self, node: Node) -> bool:
        """A stub AS has no customers — it only buys transit (and peers)."""
        return not self._customers.get(node, ())

    def tier_one(self) -> Set[Node]:
        """ASes with no providers: the default-free zone."""
        return {node for node in self.nodes() if not self._providers.get(node)}

    def tiers(self) -> Dict[Node, int]:
        """Provider-depth tiers: tier 1 = no providers, tier t = 1 + min
        provider tier.  Nodes unreachable downward from tier 1 (possible on
        adversarial annotations) get the worst observed tier + 1."""
        tier: Dict[Node, int] = {}
        frontier = sorted(self.tier_one(), key=str)
        for node in frontier:
            tier[node] = 1
        level = 1
        while frontier:
            next_frontier: List[Node] = []
            for node in frontier:
                for customer in self._customers.get(node, ()):
                    if customer not in tier:
                        tier[customer] = level + 1
                        next_frontier.append(customer)
            frontier = next_frontier
            level += 1
        worst = max(tier.values(), default=1)
        for node in self.nodes():
            if node not in tier:
                tier[node] = worst + 1
        return tier

    def counts(self) -> Tuple[int, int]:
        """(number of c2p edges, number of p2p edges)."""
        c2p = sum(len(ps) for ps in self._providers.values())
        p2p = sum(len(ps) for ps in self._peers.values()) // 2
        return c2p, p2p

    def customer_cone(self, node: Node) -> Set[Node]:
        """The AS plus everything reachable downward through customers.

        CAIDA's AS-rank orders providers by exactly this set's size: the
        cone is the market an AS can sell transit *to*.
        """
        cone: Set[Node] = {node}
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for customer in self._customers.get(current, ()):
                if customer not in cone:
                    cone.add(customer)
                    frontier.append(customer)
        return cone

    def cone_sizes(self) -> Dict[Node, int]:
        """Customer-cone size for every AS (1 = stub)."""
        return {node: len(self.customer_cone(node)) for node in self.nodes()}


def assign_relationships(
    graph: Graph,
    peer_degree_ratio: float = 1.5,
    top_clique_size: int = 10,
) -> RelationshipMap:
    """Annotate every edge of *graph* with a business relationship.

    Heuristic (degree hierarchy, the structure Gao-style inference recovers
    from real BGP data):

    * the ``top_clique_size`` highest-degree ASes are tier 1 — every edge
      among them is a peering;
    * any other edge whose endpoint degrees are within a factor of
      ``peer_degree_ratio`` is a peering between equals;
    * all remaining edges point customer→provider from the lower-degree to
      the higher-degree endpoint (degree ties broken by node order so the
      assignment is deterministic).
    """
    if peer_degree_ratio < 1.0:
        raise ValueError("peer_degree_ratio must be >= 1")
    if top_clique_size < 1:
        raise ValueError("top_clique_size must be >= 1")
    degrees = graph.degrees()
    ranked = sorted(degrees, key=lambda node: (-degrees[node], str(node)))
    clique = set(ranked[:top_clique_size])
    rels = RelationshipMap()
    for node in graph.nodes():
        rels._ensure(node)
    for u, v in graph.edges():
        if u in clique and v in clique:
            rels.add_peering(u, v)
            continue
        ku, kv = degrees[u], degrees[v]
        high, low = max(ku, kv), min(ku, kv)
        if high <= low * peer_degree_ratio:
            rels.add_peering(u, v)
        elif ku > kv or (ku == kv and str(u) < str(v)):
            rels.add_customer_provider(customer=v, provider=u)
        else:
            rels.add_customer_provider(customer=u, provider=v)
    return rels
