"""Valley-free inter-domain routing (Gao–Rexford).

Money constrains paths: an AS forwards traffic only when someone pays for
it, so a valid AS path climbs customer→provider links, crosses at most one
peer link, then descends provider→customer — no "valleys".  Route choice
follows local preference: **customer routes beat peer routes beat provider
routes** (revenue beats free beats paid), tie-broken by shorter AS path.

:func:`routing_table` computes, for one destination, every AS's chosen next
hop with the standard three-phase propagation — O(E) per destination:

1. *customer routes* climb from the destination along provider links;
2. *peer routes* take one peer hop off any customer route;
3. *provider routes* descend to customers from anything routed so far.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Tuple

from ..graph.graph import Graph
from .relationships import RelationshipMap

__all__ = ["RouteKind", "RoutingTable", "routing_table", "valley_free_path"]

Node = Hashable

# Route kinds in preference order (lower = more preferred).
CUSTOMER_ROUTE = 0
PEER_ROUTE = 1
PROVIDER_ROUTE = 2

RouteKind = int


@dataclass(frozen=True)
class RoutingTable:
    """All chosen routes toward one destination.

    ``next_hop[u]`` is u's chosen neighbor toward the destination,
    ``kind[u]`` its route class, ``hops[u]`` the AS-path length.  The
    destination itself has no entry.  Unroutable nodes (possible in odd
    annotations) are simply absent.
    """

    destination: Node
    next_hop: Dict[Node, Node]
    kind: Dict[Node, RouteKind]
    hops: Dict[Node, int]

    def path_from(self, source: Node) -> Optional[List[Node]]:
        """Full AS path source → destination, or None if unroutable."""
        if source == self.destination:
            return [source]
        if source not in self.next_hop:
            return None
        path = [source]
        current = source
        # hops strictly decreases along next_hop, so this terminates.
        while current != self.destination:
            current = self.next_hop[current]
            path.append(current)
        return path


def routing_table(
    graph: Graph, rels: RelationshipMap, destination: Node
) -> RoutingTable:
    """Compute every AS's valley-free route toward *destination*."""
    if not graph.has_node(destination):
        raise KeyError(f"destination {destination!r} not in graph")
    next_hop: Dict[Node, Node] = {}
    kind: Dict[Node, RouteKind] = {}
    hops: Dict[Node, int] = {destination: 0}

    # Phase 1 — customer routes: BFS from the destination climbing
    # customer→provider edges.  A provider reaches the destination through
    # its customer chain, the most preferred (revenue-generating) route.
    queue = deque([destination])
    customer_routed = {destination}
    while queue:
        u = queue.popleft()
        for provider in sorted(rels.providers(u), key=str):
            if provider in customer_routed:
                continue
            customer_routed.add(provider)
            next_hop[provider] = u
            kind[provider] = CUSTOMER_ROUTE
            hops[provider] = hops[u] + 1
            queue.append(provider)

    # Phase 2 — peer routes: one peer hop off any customer-routed node.
    # Shorter customer chains win; process in hop order for determinism.
    for u in sorted(customer_routed, key=lambda n: (hops[n], str(n))):
        for peer in sorted(rels.peers(u), key=str):
            if peer in customer_routed or peer in next_hop:
                continue
            next_hop[peer] = u
            kind[peer] = PEER_ROUTE
            hops[peer] = hops[u] + 1

    # Phase 3 — provider routes: descend provider→customer from anything
    # routed so far, preferring the fewest additional hops (heap-ordered,
    # since the seeded nodes start at different depths).
    import heapq

    heap = [
        (hops[n], str(n), n)
        for n in hops
        if n == destination or n in next_hop
    ]
    heapq.heapify(heap)
    while heap:
        hop_count, _, u = heapq.heappop(heap)
        if hop_count > hops.get(u, hop_count):
            continue  # stale entry
        for customer in sorted(rels.customers(u), key=str):
            if customer == destination or customer in next_hop:
                continue
            next_hop[customer] = u
            kind[customer] = PROVIDER_ROUTE
            hops[customer] = hop_count + 1
            heapq.heappush(heap, (hop_count + 1, str(customer), customer))

    return RoutingTable(destination=destination, next_hop=next_hop, kind=kind, hops=hops)


def valley_free_path(
    graph: Graph, rels: RelationshipMap, source: Node, destination: Node
) -> Optional[List[Node]]:
    """One-shot valley-free path; None when no exportable route exists."""
    return routing_table(graph, rels, destination).path_from(source)
