"""Inter-domain economics: relationships, valley-free routing, gravity
traffic and ISP profit-and-loss settlement."""

from .dynamics import MarketEvolution, MarketRound, simulate_market_evolution
from .inflation import InflationReport, path_inflation
from .peering import PeeringAssessment, evaluate_peering, suggest_peerings
from .market import (
    AsBooks,
    MarketReport,
    PricingModel,
    herfindahl_index,
    settle_market,
)
from .relationships import Relationship, RelationshipMap, assign_relationships
from .routing import (
    CUSTOMER_ROUTE,
    PEER_ROUTE,
    PROVIDER_ROUTE,
    RoutingTable,
    routing_table,
    valley_free_path,
)
from .traffic import Flow, TrafficMatrix, TrafficReport, gravity_flows, route_flows

__all__ = [
    "Relationship",
    "RelationshipMap",
    "assign_relationships",
    "RoutingTable",
    "routing_table",
    "valley_free_path",
    "CUSTOMER_ROUTE",
    "PEER_ROUTE",
    "PROVIDER_ROUTE",
    "Flow",
    "TrafficMatrix",
    "TrafficReport",
    "gravity_flows",
    "route_flows",
    "PricingModel",
    "AsBooks",
    "MarketReport",
    "settle_market",
    "herfindahl_index",
    "MarketRound",
    "MarketEvolution",
    "simulate_market_evolution",
    "InflationReport",
    "path_inflation",
    "PeeringAssessment",
    "evaluate_peering",
    "suggest_peerings",
]
