"""Policy path inflation.

Money makes paths longer: valley-free routing forbids shortcuts through
non-paying neighbors, so the AS path between two networks is often longer
than the undirected shortest path (Gao–Wang; Spring et al. measured ~20% of
real AS paths inflated).  :func:`path_inflation` quantifies that gap on any
annotated topology: hop difference and ratio distributions over sampled
destination trees, plus the fraction of pairs made unreachable outright by
policy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from ..graph.graph import Graph
from ..graph.traversal import bfs_distances
from ..stats.rng import SeedLike, make_rng
from .relationships import RelationshipMap
from .routing import routing_table

__all__ = ["InflationReport", "path_inflation"]

Node = Hashable


@dataclass(frozen=True)
class InflationReport:
    """Inflation statistics over sampled source→destination pairs.

    ``extra_hop_counts[d]`` — pairs whose policy path is d hops longer than
    the shortest path; ``policy_unreachable`` — pairs with a topological
    path but no valley-free route.
    """

    pairs_measured: int
    policy_unreachable: int
    extra_hop_counts: Dict[int, int]
    mean_shortest: float
    mean_policy: float

    @property
    def mean_inflation(self) -> float:
        """Mean extra hops over measured pairs."""
        if self.pairs_measured == 0:
            return 0.0
        total = sum(d * c for d, c in self.extra_hop_counts.items())
        return total / self.pairs_measured

    @property
    def inflated_fraction(self) -> float:
        """Fraction of measured pairs with at least one extra hop."""
        if self.pairs_measured == 0:
            return 0.0
        inflated = sum(c for d, c in self.extra_hop_counts.items() if d > 0)
        return inflated / self.pairs_measured

    @property
    def unreachable_fraction(self) -> float:
        """Policy-stranded fraction among topologically connected pairs."""
        total = self.pairs_measured + self.policy_unreachable
        if total == 0:
            return 0.0
        return self.policy_unreachable / total

    def as_points(self) -> List[Tuple[float, float]]:
        """(extra hops, pair fraction) distribution for plotting."""
        if self.pairs_measured == 0:
            return []
        return [
            (float(d), c / self.pairs_measured)
            for d, c in sorted(self.extra_hop_counts.items())
        ]


def path_inflation(
    graph: Graph,
    rels: RelationshipMap,
    num_destinations: int = 30,
    seed: SeedLike = 0,
) -> InflationReport:
    """Compare valley-free hop counts against shortest paths.

    Samples *num_destinations* destinations uniformly; for each, computes
    the full policy routing tree and the BFS tree, then tallies per-source
    differences.  Cost is O(destinations × E).
    """
    if num_destinations < 1:
        raise ValueError("num_destinations must be >= 1")
    nodes = list(graph.nodes())
    if len(nodes) < 2:
        raise ValueError("need at least two nodes")
    rng = make_rng(seed)
    destinations = rng.sample(nodes, min(num_destinations, len(nodes)))

    extra: Dict[int, int] = {}
    unreachable = 0
    pairs = 0
    total_shortest = 0
    total_policy = 0
    for destination in destinations:
        shortest = bfs_distances(graph, destination)
        table = routing_table(graph, rels, destination)
        for source, hop_count in shortest.items():
            if source == destination:
                continue
            policy_hops = table.hops.get(source)
            if policy_hops is None:
                unreachable += 1
                continue
            diff = policy_hops - hop_count
            extra[diff] = extra.get(diff, 0) + 1
            pairs += 1
            total_shortest += hop_count
            total_policy += policy_hops
    return InflationReport(
        pairs_measured=pairs,
        policy_unreachable=unreachable,
        extra_hop_counts=extra,
        mean_shortest=total_shortest / pairs if pairs else 0.0,
        mean_policy=total_policy / pairs if pairs else 0.0,
    )
