"""Market dynamics: can an AS *keep* making a living?

The static settlement (:mod:`repro.economics.market`) prices one month.
This module iterates: each round the books are settled, persistently
unprofitable transit providers **exit**, their customers **re-home** to
surviving providers (preferentially by provider size, the same
rich-get-richer force that shaped the topology), and the market is settled
again.  The process reproduces the consolidation arc of the transit
industry — revenue concentrates, the provider count shrinks, stubs persist
on retail revenue.

Exit rule: a *transit provider* (an AS with customers) whose profit is
negative for ``patience`` consecutive rounds leaves the market.  Stubs
never exit (their profitability depends on retail pricing outside the
model's scope); tier-1 ASes exit like anyone else, which is how default-
free-zone consolidation shows up.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from ..graph.graph import Graph
from ..graph.traversal import giant_component
from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import weighted_choice
from .market import MarketReport, PricingModel, herfindahl_index, settle_market
from .relationships import RelationshipMap, assign_relationships
from .traffic import gravity_flows, route_flows

__all__ = ["MarketRound", "MarketEvolution", "simulate_market_evolution"]

Node = Hashable


@dataclass(frozen=True)
class MarketRound:
    """One settled round of the evolving market."""

    round_index: int
    num_ases: int
    num_providers: int
    exits: int
    transit_hhi: float
    profitable_fraction: float
    unroutable_fraction: float


@dataclass
class MarketEvolution:
    """Full trajectory of the consolidation simulation."""

    rounds: List[MarketRound] = field(default_factory=list)
    final_graph: Optional[Graph] = None
    final_report: Optional[MarketReport] = None

    @property
    def total_exits(self) -> int:
        """Providers that left the market over the whole run."""
        return sum(r.exits for r in self.rounds)

    @property
    def concentration_trend(self) -> float:
        """Final HHI minus initial HHI (positive = consolidating)."""
        if len(self.rounds) < 2:
            return 0.0
        return self.rounds[-1].transit_hhi - self.rounds[0].transit_hhi


def _rehome_customers(
    graph: Graph,
    rels: RelationshipMap,
    dead: Node,
    rng,
) -> None:
    """Re-attach the dead provider's customers to surviving providers.

    Each orphan picks a new provider among the dead AS's *other* neighbors'
    providers and the market's remaining providers, weighted by degree (the
    bigger carrier wins the RFP).  Orphans that already have another
    provider just lose the link.
    """
    customers = rels.customers(dead)
    survivors = [
        node
        for node in graph.nodes()
        if node != dead and rels.customers(node) and node not in customers
    ]
    for orphan in sorted(customers, key=str):
        if not graph.has_node(orphan):
            continue  # the orphan itself exited earlier this round
        other_providers = {
            p for p in rels.providers(orphan) - {dead} if graph.has_node(p)
        }
        if other_providers or not survivors:
            continue  # multihomed (or nobody left to sell transit)
        weights = [graph.degree(s) + 1.0 for s in survivors]
        choice = survivors[weighted_choice(weights, rng)]
        if not graph.has_edge(orphan, choice):
            graph.add_edge(orphan, choice)
        rels.add_customer_provider(customer=orphan, provider=choice)


def simulate_market_evolution(
    graph: Graph,
    users: Optional[Dict[Node, float]] = None,
    pricing: Optional[PricingModel] = None,
    rounds: int = 6,
    patience: int = 2,
    num_flows: int = 1000,
    seed: SeedLike = 0,
) -> MarketEvolution:
    """Run *rounds* of settle → exit → re-home on a copy of *graph*."""
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    if patience < 1:
        raise ValueError("patience must be >= 1")
    rng = make_rng(seed)
    market = giant_component(graph).copy()
    if users is None:
        users = {node: 1.0 + market.degree(node) for node in market.nodes()}
    else:
        users = {node: float(users.get(node, 1.0)) for node in market.nodes()}

    evolution = MarketEvolution()
    losing_streak: Dict[Node, int] = {}
    rels = assign_relationships(market)
    for round_index in range(rounds):
        active_users = {n: users[n] for n in market.nodes()}
        matrix = gravity_flows(
            active_users, num_flows=num_flows, seed=rng.getrandbits(32)
        )
        traffic = route_flows(market, rels, matrix)
        report = settle_market(market, rels, traffic, users=active_users, pricing=pricing)

        # Update losing streaks for transit providers.
        to_exit: List[Node] = []
        for node, books in report.books.items():
            if not rels.customers(node):
                losing_streak.pop(node, None)
                continue
            if books.profit < 0:
                losing_streak[node] = losing_streak.get(node, 0) + 1
                if losing_streak[node] >= patience and market.num_nodes > 10:
                    to_exit.append(node)
            else:
                losing_streak[node] = 0

        routed = sum(traffic.originated.values())
        total = routed + traffic.unroutable
        evolution.rounds.append(
            MarketRound(
                round_index=round_index,
                num_ases=market.num_nodes,
                num_providers=sum(
                    1 for node in market.nodes() if rels.customers(node)
                ),
                exits=len(to_exit),
                transit_hhi=report.transit_revenue_concentration(),
                profitable_fraction=report.profitable_fraction(),
                unroutable_fraction=(traffic.unroutable / total) if total else 0.0,
            )
        )

        for dead in sorted(to_exit, key=str):
            _rehome_customers(market, rels, dead, rng)
            market.remove_node(dead)
            users.pop(dead, None)
            losing_streak.pop(dead, None)
        if to_exit:
            market = giant_component(market)
            users = {n: users[n] for n in market.nodes()}
            # Relationships are re-inferred on the consolidated topology.
            rels = assign_relationships(market)

        evolution.final_graph = market
        evolution.final_report = report
    return evolution
