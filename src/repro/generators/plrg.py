"""Power-Law Random Graph (Aiello–Chung–Lu).

The structural counterpoint to growth models: prescribe a power-law degree
sequence outright, then wire stubs uniformly at random (the configuration
model) and collapse the resulting self-loops and multi-edges.  PLRG matches
the AS map's degree distribution *by construction* while carrying none of
its correlation, clustering or core structure — which is exactly the
distinction the comparison experiments are designed to expose.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..graph.graph import Graph
from ..stats.powerlaw import sample_discrete_powerlaw
from ..stats.rng import SeedLike, make_rng, spawn_seed
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["PlrgGenerator", "configuration_model"]


def configuration_model(
    degrees: List[int],
    seed: SeedLike = None,
    name: str = "configuration",
    engine: str = "python",
) -> Graph:
    """Wire a degree sequence by uniform stub matching.

    Self-loops are dropped and parallel stub pairs collapse into a single
    simple edge, so realized degrees can fall slightly below the prescribed
    ones — the standard simple-graph projection used when PLRG is compared
    against AS maps.  The degree sum must be even.

    ``engine="vector"`` collapses the shuffled stub pairing with numpy
    (self-loop mask + canonical-pair ``np.unique``) instead of the per-pair
    loop.  The shuffle — the only randomness — is shared, and duplicate
    collapse is order-insensitive for unweighted simple edges, so both
    engines build the identical graph.
    """
    if any(d < 0 for d in degrees):
        raise GenerationError("degrees must be non-negative")
    if sum(degrees) % 2 != 0:
        raise GenerationError("degree sum must be even")
    rng = make_rng(seed)
    stubs: List[int] = []
    for node, degree in enumerate(degrees):
        stubs.extend([node] * degree)
    rng.shuffle(stubs)
    graph = Graph(name=name)
    graph.add_nodes(range(len(degrees)))
    if engine == "vector":
        arr = np.asarray(stubs, dtype=np.int64)
        if arr.size % 2:
            arr = arr[:-1]
        us, vs = arr[0::2], arr[1::2]
        keep = us != vs
        lo = np.minimum(us[keep], vs[keep])
        hi = np.maximum(us[keep], vs[keep])
        unique = np.unique(lo * np.int64(len(degrees)) + hi)
        size = np.int64(len(degrees))
        graph.add_edges(
            zip((unique // size).tolist(), (unique % size).tolist())
        )
        return graph
    for i in range(0, len(stubs) - 1, 2):
        u, v = stubs[i], stubs[i + 1]
        if u != v and not graph.has_edge(u, v):
            graph.add_edge(u, v)
    return graph


class PlrgGenerator(TopologyGenerator):
    """PLRG: power-law degree sequence + configuration wiring.

    ``gamma`` is the target exponent, ``k_min`` the minimum degree, and
    ``k_max_fraction`` caps the largest sampled degree at that fraction of n
    (the structural cutoff; without it the collapse step distorts the tail).
    """

    name = "plrg"

    def __init__(
        self,
        gamma: float = 2.2,
        k_min: int = 1,
        k_max_fraction: float = 0.5,
        engine: str = "auto",
    ):
        if gamma <= 1:
            raise ValueError("gamma must exceed 1")
        if k_min < 1:
            raise ValueError("k_min must be >= 1")
        if not 0 < k_max_fraction <= 1:
            raise ValueError("k_max_fraction must be in (0, 1]")
        self.gamma = gamma
        self.k_min = k_min
        self.k_max_fraction = k_max_fraction
        self.engine = engine

    def degree_sequence(self, n: int, seed: SeedLike = None) -> List[int]:
        """Sample the prescribed degree sequence (even sum guaranteed)."""
        _validate_size(n, minimum=2)
        rng = make_rng(seed)
        k_max = max(self.k_min + 1, int(n * self.k_max_fraction))
        degrees = sample_discrete_powerlaw(
            self.gamma, n, x_min=self.k_min, x_max=k_max, seed=spawn_seed(rng)
        )
        if sum(degrees) % 2 != 0:
            # Parity fix: bump one minimum-degree node by one stub.
            degrees[degrees.index(min(degrees))] += 1
        return degrees

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Sample a PLRG with *n* nodes (some may be isolated after collapse)."""
        rng = make_rng(seed)
        engine = self.resolve_engine(n)
        degrees = self.degree_sequence(n, seed=rng)
        with self.trace_phase("wire", n=n, engine=engine):
            return configuration_model(
                degrees, seed=rng, name=self.name, engine=engine
            )
