"""Watts–Strogatz small-world rewiring.

Not an internet model per se, but the canonical *small-world baseline*: it
decouples the two properties internet maps exhibit together (short paths,
high clustering) from the one they add (heavy tails).  Including it in the
battery shows that small-world + clustering alone do not make a topology
internet-like — the degree distribution stays narrow.
"""

from __future__ import annotations

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["WattsStrogatzGenerator"]


class WattsStrogatzGenerator(TopologyGenerator):
    """Ring lattice of even degree *k* with rewiring probability *p*."""

    name = "watts-strogatz"

    def __init__(self, k: int = 4, p: float = 0.1):
        if k < 2 or k % 2 != 0:
            raise ValueError("k must be an even integer >= 2")
        if not 0 <= p <= 1:
            raise ValueError("p must be in [0, 1]")
        self.k = k
        self.p = p

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Build the lattice, then rewire each edge with probability p."""
        _validate_size(n, minimum=self.k + 2)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        graph.add_nodes(range(n))
        half = self.k // 2
        for u in range(n):
            for offset in range(1, half + 1):
                graph.add_edge(u, (u + offset) % n)
        # Rewire the "forward" endpoint of each lattice edge.
        for u in range(n):
            for offset in range(1, half + 1):
                if rng.random() >= self.p:
                    continue
                old = (u + offset) % n
                if not graph.has_edge(u, old):
                    continue  # already rewired away
                for _ in range(50):
                    new = rng.randrange(n)
                    if new != u and not graph.has_edge(u, new):
                        graph.remove_edge(u, old)
                        graph.add_edge(u, new)
                        break
        return graph
