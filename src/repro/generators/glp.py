"""Generalized Linear Preference model (Bu & Towsley 2002).

GLP was built to fix the two gaps plain BA leaves against the AS map: its
exponent is pinned at 3 and its clustering is far too low.  Two changes fix
both: the preference is *shifted linear*, ``Π(i) ∝ k_i − beta`` with
``beta < 1`` (small-degree nodes become relatively less attractive, lowering
the exponent), and with probability *p* a step adds internal edges between
existing nodes instead of a new node (raising clustering and density).

Defaults are the parameters Bu & Towsley fitted to the AS map:
``m = 1.13, p = 0.4695, beta = 0.6447``.  Non-integer *m* is realized per
step as ``floor(m)`` plus a Bernoulli on the fractional part, so the mean
links-per-step matches the fitted value.
"""

from __future__ import annotations

from typing import List

from ..graph.graph import Graph
from ..stats.rng import BufferedUniforms, SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import FenwickSampler
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["GlpGenerator"]


class GlpGenerator(TopologyGenerator):
    """GLP growth with shifted-linear preference and internal edge moves.

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path decomposes the shifted preference ``k − β`` into the
    mixture ``(k−1)·1 + (1−β)·1`` — an O(1) draw from an endpoint pool (one
    slot per degree above 1) or a uniform node — fed by block-buffered
    numpy uniforms.  Different seeded stream than the Fenwick walk, so this
    generator is ``engine_sensitive``.
    """

    name = "glp"
    engine_sensitive = True

    def __init__(
        self,
        m: float = 1.13,
        p: float = 0.4695,
        beta: float = 0.6447,
        engine: str = "auto",
    ):
        if m < 1:
            raise ValueError("m must be >= 1")
        if not 0 <= p < 1:
            raise ValueError("p must be in [0, 1)")
        if beta >= 1:
            raise ValueError("beta must be < 1 so every weight stays positive")
        self.m = m
        self.p = p
        self.beta = beta
        self.engine = engine

    def _links_this_step(self, rng) -> int:
        """Realize the possibly fractional m as an integer for one step."""
        whole = int(self.m)
        frac = self.m - whole
        return whole + (1 if rng.random() < frac else 0)

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a GLP network to exactly *n* nodes."""
        seed_size = 3
        _validate_size(n, minimum=seed_size + 1)
        engine = self.resolve_engine(n)
        if engine == "vector":
            return self._generate_vector(n, seed, seed_size)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        sampler = FenwickSampler(seed=rng)
        with self.trace_phase("seed", size=seed_size, engine=engine):
            # Seed: a triangle, so internal-edge moves have somewhere to land.
            for i in range(seed_size):
                graph.add_node(i)
                sampler.append(0.0)
            for i, j in ((0, 1), (1, 2), (2, 0)):
                graph.add_edge(i, j)
            for i in range(seed_size):
                sampler.update(i, graph.degree(i) - self.beta)

        with self.trace_phase("growth", n=n, engine=engine):
            next_node = seed_size
            steps = 0
            stall_budget = 100 * n
            while next_node < n:
                if stall_budget <= 0:
                    raise GenerationError(
                        "GLP growth stalled before reaching target size"
                    )
                stall_budget -= 1
                steps += 1
                m_step = self._links_this_step(rng)
                if rng.random() < self.p:
                    self._add_internal_links(graph, sampler, m_step, rng)
                else:
                    self._add_node(graph, sampler, next_node, m_step, rng)
                    next_node += 1
            self.count_steps(steps)
        return graph

    def _bump(self, sampler: FenwickSampler, node: int) -> None:
        """A node gained one degree: its preference weight rises by one."""
        sampler.add(node, 1.0)

    def _add_internal_links(
        self, graph: Graph, sampler: FenwickSampler, count: int, rng
    ) -> None:
        """Add *count* edges between preferentially chosen existing pairs."""
        for _ in range(count):
            for _ in range(30):  # bounded retries on duplicates
                i = sampler.sample()
                j = sampler.sample()
                if i != j and not graph.has_edge(i, j):
                    graph.add_edge(i, j)
                    self._bump(sampler, i)
                    self._bump(sampler, j)
                    break

    def _add_node(
        self, graph: Graph, sampler: FenwickSampler, node: int, count: int, rng
    ) -> None:
        """Add *node* with min(count, existing) preferential links."""
        count = min(count, len(sampler))
        targets: set = set()
        tries = 0
        while len(targets) < count and tries < 200:
            targets.add(sampler.sample())
            tries += 1
        graph.add_node(node)
        sampler.append(0.0)
        for target in targets:
            graph.add_edge(node, target)
            self._bump(sampler, target)
        sampler.update(node, graph.degree(node) - self.beta)

    # ------------------------------------------------------------ vector path

    def _generate_vector(self, n: int, seed: SeedLike, seed_size: int) -> Graph:
        """Pool-mixture growth: O(1) shifted-preference draws.

        ``Π(i) ∝ k_i − β`` splits into ``(k_i − 1)`` endpoint-pool slots plus
        a ``(1 − β)`` uniform-node share; one buffered uniform decides the
        branch and (re-used, still uniform) indexes it, replacing the
        O(log n) Fenwick descent.  The pool gains one slot per degree a
        node acquires beyond its first.
        """
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        uniform_share = 1.0 - self.beta
        whole = int(self.m)
        frac = self.m - whole

        next_uniform = BufferedUniforms(np_rng).next

        graph = Graph(name=self.name)
        pool: List[int] = []  # node id once per degree above 1
        num_nodes = seed_size

        def draw_node() -> int:
            pool_len = len(pool)
            u = next_uniform() * (pool_len + num_nodes * uniform_share)
            if u < pool_len:
                return pool[int(u)]
            return min(int((u - pool_len) / uniform_share), num_nodes - 1)

        with self.trace_phase("seed", size=seed_size, engine="vector"):
            graph.add_nodes(range(seed_size))
            for i, j in ((0, 1), (1, 2), (2, 0)):
                graph.add_edge(i, j)
            pool.extend(range(seed_size))  # triangle: degree 2 → one slot each

        with self.trace_phase("growth", n=n, engine="vector"):
            next_node = seed_size
            steps = 0
            stall_budget = 100 * n
            while next_node < n:
                if stall_budget <= 0:
                    raise GenerationError(
                        "GLP growth stalled before reaching target size"
                    )
                stall_budget -= 1
                steps += 1
                m_step = whole + (1 if next_uniform() < frac else 0)
                if next_uniform() < self.p:
                    for _ in range(m_step):
                        for _ in range(30):  # bounded retries on duplicates
                            i = draw_node()
                            j = draw_node()
                            if i != j and not graph.has_edge(i, j):
                                graph.add_edge(i, j)
                                pool.append(i)
                                pool.append(j)
                                break
                else:
                    count = min(m_step, num_nodes)
                    targets: set = set()
                    tries = 0
                    while len(targets) < count and tries < 200:
                        targets.add(draw_node())
                        tries += 1
                    node = next_node
                    graph.add_node(node)
                    for target in targets:
                        graph.add_edge(node, target)
                        pool.append(target)
                    pool.extend([node] * (len(targets) - 1))
                    num_nodes += 1
                    next_node += 1
            self.count_steps(steps)
        return graph
