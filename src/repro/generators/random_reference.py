"""Degree-preserving randomization (Maslov–Sneppen rewiring).

Given any graph, produce a null model with the *same degree sequence* but
otherwise random wiring, by repeated double-edge swaps::

    (a—b, c—d)  →  (a—d, c—b)

rejecting swaps that would create self-loops or parallel edges.  This is the
mandatory normalization for the rich-club coefficient (experiment F7) and a
useful baseline for clustering and correlation comparisons: any structure
surviving in the ratio graph/null is degree-sequence-independent.
"""

from __future__ import annotations

from typing import List, Tuple

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import TopologyGenerator

__all__ = ["rewired_reference", "RandomReferenceGenerator"]


def rewired_reference(
    graph: Graph, swaps_per_edge: float = 10.0, seed: SeedLike = None
) -> Graph:
    """Degree-preserving randomization of *graph*.

    Performs ``swaps_per_edge * E`` *successful* double-edge swaps (with a
    bounded attempt budget so pathological graphs terminate).  Edge weights
    are reset to 1 — the null model is topological.
    """
    if swaps_per_edge < 0:
        raise ValueError("swaps_per_edge must be non-negative")
    rng = make_rng(seed)
    result = Graph(name=f"{graph.name}-rewired" if graph.name else "rewired")
    for node in graph.nodes():
        result.add_node(node)
    edges: List[Tuple] = []
    for u, v in graph.edges():
        result.add_edge(u, v)
        edges.append((u, v))
    num_edges = len(edges)
    if num_edges < 2:
        return result
    target_swaps = int(swaps_per_edge * num_edges)
    attempts_budget = max(20 * target_swaps, 100)
    swaps_done = 0
    while swaps_done < target_swaps and attempts_budget > 0:
        attempts_budget -= 1
        i = rng.randrange(num_edges)
        j = rng.randrange(num_edges)
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        # Random orientation of the second edge diversifies the swap space.
        if rng.random() < 0.5:
            c, d = d, c
        if len({a, b, c, d}) < 4:
            continue
        if result.has_edge(a, d) or result.has_edge(c, b):
            continue
        result.remove_edge(a, b)
        result.remove_edge(c, d)
        result.add_edge(a, d)
        result.add_edge(c, b)
        edges[i] = (a, d)
        edges[j] = (c, b)
        swaps_done += 1
    return result


class RandomReferenceGenerator(TopologyGenerator):
    """Generator-protocol wrapper around :func:`rewired_reference`.

    Holds a template graph and produces fresh randomizations of it; *n* is
    ignored (the null model inherits the template's size) but validated to
    match so registry-driven sweeps fail loudly on misuse.
    """

    name = "random-reference"

    def __init__(self, template: Graph, swaps_per_edge: float = 10.0):
        self.swaps_per_edge = swaps_per_edge
        self._template = template
        # Public (so params() reports it): without a content fingerprint,
        # two generators built on different templates would be identical to
        # the battery's cache keys and seed derivation.
        self.template_fingerprint = template.fingerprint()

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Randomize the template (n must equal the template size)."""
        if n != self._template.num_nodes:
            raise ValueError(
                f"template has {self._template.num_nodes} nodes; got n={n}"
            )
        return rewired_reference(self._template, self.swaps_per_edge, seed=seed)
