"""Weighted supply/demand growth model (Serrano–Boguñá–Díaz-Guilera).

The genre exemplar of *environment-coupled* internet models: the network is
not isolated but embedded in an exponentially growing pool of users that
demand service, and ASes adapt their bandwidth to the users they win.

Per unit time step (one "month"):

1. **demand growth** — ``ΔW(t)`` new users arrive and choose an AS by
   linear preference ``Π_i = ω_i / W``;
2. **supply growth** — ``ΔN(t)`` new ASes appear, each seeded with ``ω₀``
   users withdrawn uniformly from existing ASes (W is conserved);
3. **churn** — optionally, a fraction ``churn`` of users relocate by the
   same preference (the λ term: pure diffusion, no drift);
4. **adaptation** — every AS targets bandwidth
   ``b_i = 1 + a(t) (ω_i − ω₀)`` with ``a(t) = 2 B(t) / W(t)`` and
   ``B(t) = B0 e^{δ' t}``; the shortfall ``Δb_i`` is its *activity*.
   Pairs are drawn with probability ∝ Δb_i Δb_j among active nodes; an
   accepted pair forms one link (or reinforces an existing one — edge
   weight is bandwidth in discrete units) and keeps adding parallel units
   with probability ``r`` while both still need bandwidth.  With
   ``distance=True`` nodes live on a fractal set (D_f ≈ 1.5) and a pair at
   distance d is accepted with probability ``exp(-d / d_c)``,
   ``d_c = ω_i ω_j / (κ W)`` — long links are affordable only to large ASes.

Analytic targets the experiments check against: size distribution exponent
``1 + α/β``, degree exponent ``γ = 1 + 1/(2 − δ/β)`` with
``δ = 2β − αβ/δ'``, and the degree–bandwidth scaling ``k ∝ b^μ``,
``μ = β/δ'`` (F9).

Scale note: the original simulations used ``ω₀ = 5000`` (then W ≈ 5·10⁷
users at the 2001-map size).  User arrivals are simulated individually in
aggregate batches, so the default here is ``ω₀ = 50``, which preserves every
ratio the analysis depends on (ω₀ only sets the resource granularity) while
keeping harness runtimes in seconds.  Pass ``omega0=5000`` to reproduce the
original scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..environment.growth import GrowthSeries
from ..geometry.fractal import FractalBoxSet
from ..geometry.plane import Plane, Point
from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import FenwickSampler
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["SerranoGenerator", "SerranoRun"]


@dataclass
class SerranoRun:
    """Full output of one simulation: topology plus model state.

    ``graph`` — the weighted AS topology (edge weight = bandwidth units);
    ``users`` — final ω_i per AS;
    ``positions`` — node → Point when geography was on, else empty;
    ``history`` — GrowthSeries for W, N, E and B over simulated months;
    ``snapshots`` — size → frozen topology copy, captured the first time
    the node count reached each requested threshold (temporal snapshots of
    *one* growth history, for scaling and kernel measurements).
    """

    graph: Graph
    users: Dict[int, int]
    positions: Dict[int, Point] = field(default_factory=dict)
    history: Dict[str, GrowthSeries] = field(default_factory=dict)
    snapshots: Dict[int, Graph] = field(default_factory=dict)

    @property
    def total_users(self) -> int:
        """Total users W at the end of the run."""
        return int(sum(self.users.values()))


class SerranoGenerator(TopologyGenerator):
    """Weighted supply/demand growth with optional distance constraints.

    *engine* selects the adaptation kernel (see
    :mod:`repro.generators.engine`): the vector path draws whole rounds of
    activity-weighted pairs by ``searchsorted`` over the cumulative
    activity, applies the ``exp(-d/d_c)`` distance acceptance blockwise,
    realizes bandwidth reinforcement as geometric unit batches, and commits
    each round through one bulk insert.  Pairs within a round are drawn
    from the round's activity snapshot rather than re-weighted after every
    link, so the engines are distributionally equivalent, not draw-order
    identical — this generator is ``engine_sensitive`` and gated by the
    KS/band equivalence suite.
    """

    name = "serrano"
    engine_sensitive = True

    def __init__(
        self,
        omega0: int = 50,
        n0: int = 2,
        b0: float = 1.0,
        alpha: float = 0.035,
        beta: float = 0.03,
        delta_prime: float = 0.04,
        r: float = 0.8,
        churn: float = 0.0,
        distance: bool = False,
        fractal_dimension: float = 1.5,
        kappa: Optional[float] = None,
        nn_cutoff_factor: float = 4.0,
        engine: str = "auto",
    ):
        if omega0 < 2:
            raise ValueError("omega0 must be >= 2")
        if n0 < 2:
            raise ValueError("n0 must be >= 2")
        if b0 <= 0:
            raise ValueError("b0 must be positive")
        if alpha <= 0 or beta <= 0 or delta_prime <= 0:
            raise ValueError("growth rates must be positive")
        if beta >= alpha:
            raise ValueError("the model requires alpha > beta (demand outgrows supply)")
        if delta_prime <= alpha:
            raise ValueError("delta' must exceed alpha (traffic outgrows demand)")
        if not 0 <= r < 1:
            raise ValueError("r must be in [0, 1)")
        if not 0 <= churn < 1:
            raise ValueError("churn must be in [0, 1)")
        self.omega0 = omega0
        self.n0 = n0
        self.b0 = b0
        self.alpha = alpha
        self.beta = beta
        self.delta_prime = delta_prime
        self.r = r
        self.churn = churn
        self.distance = distance
        self.fractal_dimension = fractal_dimension
        self.kappa = kappa
        self.nn_cutoff_factor = nn_cutoff_factor
        self.engine = engine

    # ----------------------------------------------------------- predictions

    @property
    def tau(self) -> float:
        """β/α — size-distribution exponent is 1 + 1/τ · τ = 1 + τ⁻¹·…;
        p(ω) ~ ω^-(1+τ) with this τ… i.e. size exponent = 1 + α/β."""
        return self.beta / self.alpha

    @property
    def predicted_mu(self) -> float:
        """Degree–bandwidth exponent μ = β/δ′."""
        return self.beta / self.delta_prime

    @property
    def predicted_delta(self) -> float:
        """Edge growth rate δ = 2β − αβ/δ′ (from E ∝ N^(2−α/δ′))."""
        return 2.0 * self.beta - self.alpha * self.beta / self.delta_prime

    @property
    def predicted_gamma(self) -> float:
        """Degree exponent γ = 1 + 1/(2 − δ/β)."""
        return 1.0 + 1.0 / (2.0 - self.predicted_delta / self.beta)

    # ------------------------------------------------------------ simulation

    def _auto_kappa(self, n: int) -> float:
        """κ such that, at final W, two minimum-size ASes see a distance
        cutoff of ``nn_cutoff_factor`` nearest-neighbor spacings.

        Nearest-neighbor spacing on a D_f-dimensional set of n points in the
        unit square scales as n^(-1/D_f)."""
        w_final = self.omega0 * self.n0 * (n / self.n0) ** (self.alpha / self.beta)
        d_target = self.nn_cutoff_factor * n ** (-1.0 / self.fractal_dimension)
        return self.omega0**2 / (d_target * w_final)

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow the weighted topology to exactly *n* ASes."""
        return self.generate_detailed(n, seed=seed).graph

    def generate_detailed(
        self,
        n: int,
        seed: SeedLike = None,
        snapshot_sizes: Optional[List[int]] = None,
    ) -> SerranoRun:
        """Run the full simulation, returning topology plus model state.

        *snapshot_sizes* (ascending node counts below *n*) captures frozen
        copies of the topology the first time the network reaches each
        size — true temporal snapshots of a single growth history.
        """
        _validate_size(n, minimum=self.n0 + 1)
        pending_snapshots = sorted(set(snapshot_sizes or []))
        if pending_snapshots and (
            pending_snapshots[0] <= self.n0 or pending_snapshots[-1] > n
        ):
            raise ValueError("snapshot sizes must lie in (n0, n]")
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        engine = self.resolve_engine(n)
        kappa = self.kappa if self.kappa is not None else (
            self._auto_kappa(n) if self.distance else 0.0
        )

        fractal = (
            FractalBoxSet(dimension=self.fractal_dimension, seed=rng)
            if self.distance
            else None
        )
        positions: List[Point] = []
        # Coordinate arrays mirror `positions` so the vector adaptation
        # kernel can compute distance blocks without attribute chasing.
        xs = np.empty(n, dtype=np.float64) if fractal is not None else None
        ys = np.empty(n, dtype=np.float64) if fractal is not None else None

        graph = Graph(name=self.name + ("-distance" if self.distance else ""))
        omega = np.zeros(n, dtype=np.float64)
        num_nodes = self.n0
        for i in range(self.n0):
            graph.add_node(i)
            omega[i] = self.omega0
            if fractal is not None:
                point = fractal.sample_point()
                positions.append(point)
                xs[i] = point.x
                ys[i] = point.y
        # Seed topology: a chain over the n0 initial ASes.
        for i in range(self.n0 - 1):
            graph.add_edge(i, i + 1)
        strength = np.zeros(n, dtype=np.float64)
        for i in range(self.n0):
            strength[i] = graph.strength(i)

        history = {
            key: GrowthSeries(name=key) for key in ("users", "nodes", "edges", "bandwidth")
        }
        w0_total = float(self.omega0 * self.n0)
        total_steps = max(1, math.ceil(math.log(n / self.n0) / self.beta))

        snapshots: Dict[int, Graph] = {}
        self._record(history, 0.0, omega, num_nodes, graph)
        t = 0
        with self.trace_phase("grow", n=n, engine=engine):
            while num_nodes < n:
                t += 1
                if t > 4 * total_steps + 100:
                    raise GenerationError("growth failed to reach target size")
                # -- 1. demand growth --------------------------------------
                w_target = w0_total * math.exp(self.alpha * t)
                arrivals = int(round(w_target - float(omega[:num_nodes].sum())))
                if arrivals > 0:
                    self._assign_users(omega, num_nodes, arrivals, np_rng)
                # -- 2. supply growth --------------------------------------
                n_target = min(n, round(self.n0 * math.exp(self.beta * t)))
                if engine == "vector" and n_target > num_nodes and num_nodes >= 512:
                    self._spawn_nodes_vector(
                        graph, omega, num_nodes, n_target - num_nodes, np_rng
                    )
                    for new_id in range(num_nodes, n_target):
                        if fractal is not None:
                            point = fractal.sample_point()
                            positions.append(point)
                            xs[new_id] = point.x
                            ys[new_id] = point.y
                    num_nodes = n_target
                else:
                    while num_nodes < n_target:
                        self._spawn_node(graph, omega, num_nodes, np_rng)
                        if fractal is not None:
                            point = fractal.sample_point()
                            positions.append(point)
                            xs[num_nodes] = point.x
                            ys[num_nodes] = point.y
                        num_nodes += 1
                # -- 3. churn ----------------------------------------------
                if self.churn > 0:
                    self._relocate_users(omega, num_nodes, np_rng)
                # -- 4. adaptation -----------------------------------------
                bandwidth_target = self.b0 * math.exp(self.delta_prime * t)
                if engine == "vector":
                    self._adapt_vector(
                        graph, omega, strength, num_nodes, bandwidth_target,
                        xs, ys, kappa, np_rng,
                    )
                else:
                    self._adapt(
                        graph, omega, strength, num_nodes, bandwidth_target,
                        positions, kappa, rng,
                    )
                self._record(history, float(t), omega, num_nodes, graph)
                while pending_snapshots and num_nodes >= pending_snapshots[0]:
                    size = pending_snapshots.pop(0)
                    frozen = graph.copy()
                    frozen.name = f"{graph.name}@{num_nodes}"
                    snapshots[size] = frozen

        users = {i: int(round(omega[i])) for i in range(num_nodes)}
        position_map = {i: positions[i] for i in range(num_nodes)} if positions else {}
        return SerranoRun(
            graph=graph, users=users, positions=position_map, history=history,
            snapshots=snapshots,
        )

    # ------------------------------------------------------------- internals

    @staticmethod
    def _record(history, t: float, omega, num_nodes: int, graph: Graph) -> None:
        history["users"].record(t, float(omega[:num_nodes].sum()))
        history["nodes"].record(t, float(num_nodes))
        history["edges"].record(t, float(max(graph.num_edges, 1)))
        history["bandwidth"].record(t, float(max(graph.total_weight, 1.0)))

    @staticmethod
    def _assign_users(omega, num_nodes: int, count: int, np_rng) -> None:
        """Batch linear-preference arrival: multinomial over Π_i = ω_i/W."""
        weights = omega[:num_nodes]
        total = weights.sum()
        probs = weights / total
        omega[:num_nodes] += np_rng.multinomial(count, probs)

    def _spawn_node(self, graph: Graph, omega, new_id: int, np_rng) -> None:
        """Create one AS with ω₀ users withdrawn from existing ASes.

        Donor ASes are drawn *uniformly over nodes* (not over users): the
        model's drift has a constant loss term −βω₀ per node, which is the
        uniform-over-donors convention.  An AS is never drained below one
        user (the reflecting-boundary analogue)."""
        needed = self.omega0
        for _ in range(50):  # clamped redraw rounds
            eligible = np.nonzero(omega[:new_id] > 1.0)[0]
            if eligible.size == 0:
                raise GenerationError("user pool exhausted while seeding a new AS")
            capacity = omega[eligible] - 1.0
            if capacity.sum() < needed:
                raise GenerationError("user pool exhausted while seeding a new AS")
            draws = np.bincount(
                np_rng.integers(0, eligible.size, size=needed),
                minlength=eligible.size,
            ).astype(np.float64)
            taken = np.minimum(draws, capacity)
            omega[eligible] -= taken
            shortfall = needed - int(taken.sum())
            if shortfall <= 0:
                break
            needed = shortfall
        graph.add_node(new_id)
        omega[new_id] = self.omega0

    def _spawn_nodes_vector(
        self, graph: Graph, omega, first_id: int, count: int, np_rng
    ) -> None:
        """Batch supply growth: one aggregate withdrawal for a step's spawns.

        The scalar path seeds ASes one at a time, re-scanning the donor pool
        per spawn — O(n) numpy work per node, the dominant cost at full
        scale.  Here all of a time step's arrivals are seeded together and
        their combined ``count·ω₀`` users are withdrawn in one uniform draw
        per redraw round.  Donors are the pre-step nodes only: letting the
        batch's own spawns absorb part of the withdrawal systematically
        under-drains the founder nodes while the network is small, a bias
        that preferential arrivals then compound for the rest of the run.
        The caller therefore batches only once the network is large enough
        (≥ 512 nodes) that a step's spawns are a few percent of the pool.
        W is conserved either way; the KS equivalence suite bounds the
        residual within-step difference.
        """
        last = first_id + count
        graph.add_nodes(range(first_id, last))
        omega[first_id:last] = self.omega0
        needed = count * self.omega0
        for _ in range(50):  # clamped redraw rounds
            eligible = np.nonzero(omega[:first_id] > 1.0)[0]
            if eligible.size == 0:
                raise GenerationError("user pool exhausted while seeding a new AS")
            capacity = omega[eligible] - 1.0
            if capacity.sum() < needed:
                raise GenerationError("user pool exhausted while seeding a new AS")
            draws = np.bincount(
                np_rng.integers(0, eligible.size, size=needed),
                minlength=eligible.size,
            ).astype(np.float64)
            taken = np.minimum(draws, capacity)
            omega[eligible] -= taken
            shortfall = needed - int(taken.sum())
            if shortfall <= 0:
                break
            needed = shortfall

    def _relocate_users(self, omega, num_nodes: int, np_rng) -> None:
        """Move churn·W users: uniform departure, preferential arrival."""
        count = int(self.churn * omega[:num_nodes].sum())
        if count <= 0:
            return
        weights = np.maximum(omega[:num_nodes] - 1.0, 0.0)
        total = weights.sum()
        if total <= 0:
            return
        count = min(count, int(total))
        out = np.minimum(np_rng.multinomial(count, weights / total), weights)
        omega[:num_nodes] -= out
        moved = int(out.sum())
        stay = omega[:num_nodes]
        omega[:num_nodes] += np_rng.multinomial(moved, stay / stay.sum())

    @staticmethod
    def _acceptance(
        omega_i: float,
        omega_j: float,
        point_i: Point,
        point_j: Point,
        kappa: float,
        w_total: float,
    ) -> float:
        """Distance acceptance exp(-d/d_c) with d_c = ω_i ω_j / (κ W)."""
        if kappa <= 0 or w_total <= 0:
            return 0.0
        d = math.hypot(point_i.x - point_j.x, point_i.y - point_j.y)
        d_c = omega_i * omega_j / (kappa * w_total)
        if d_c <= 0:
            return 0.0
        exponent = -d / d_c
        return math.exp(exponent) if exponent > -700.0 else 0.0

    def _adapt(
        self,
        graph: Graph,
        omega,
        strength,
        num_nodes: int,
        bandwidth_target: float,
        positions: List[Point],
        kappa: float,
        rng,
    ) -> None:
        """One adaptation round: compute activities and match active pairs."""
        w_total = float(omega[:num_nodes].sum())
        a_t = 2.0 * bandwidth_target / w_total
        desired = np.maximum(1.0 + a_t * (omega[:num_nodes] - self.omega0), 1.0)
        need = np.floor(desired - strength[:num_nodes] + 0.5)
        need = np.maximum(need, 0.0)
        active = np.nonzero(need)[0]
        if active.size < 2:
            return
        sampler = FenwickSampler((float(need[i]) for i in active), seed=rng)
        index_of = {int(node): pos for pos, node in enumerate(active)}
        remaining = {int(node): int(need[node]) for node in active}
        budget = int(50 + 30 * need.sum())

        def consume(node: int, amount: int = 1) -> None:
            remaining[node] -= amount
            strength[node] += amount
            sampler.update(index_of[node], float(max(remaining[node], 0)))

        while budget > 0 and sampler.total > 0:
            budget -= 1
            pos_i = sampler.sample()
            i = int(active[pos_i])
            # Mask i out while drawing the partner.
            saved = sampler.weight(pos_i)
            sampler.update(pos_i, 0.0)
            if sampler.total <= 0:
                sampler.update(pos_i, saved)
                break
            pos_j = sampler.sample()
            sampler.update(pos_i, saved)
            j = int(active[pos_j])
            if positions:
                accept = self._acceptance(
                    float(omega[i]), float(omega[j]),
                    positions[i], positions[j], kappa, w_total,
                )
                if rng.random() >= accept:
                    continue
            graph.add_edge(i, j)
            consume(i)
            consume(j)
            # Bandwidth reinforcement: parallel units with probability r.
            while (
                remaining[i] > 0 and remaining[j] > 0 and rng.random() < self.r
            ):
                graph.add_edge(i, j)
                consume(i)
                consume(j)

    def _adapt_vector(
        self,
        graph: Graph,
        omega,
        strength,
        num_nodes: int,
        bandwidth_target: float,
        xs,
        ys,
        kappa: float,
        np_rng,
    ) -> None:
        """Batch adaptation round: whole blocks of activity-weighted pairs.

        The scalar kernel draws one pair at a time from a Fenwick tree and
        re-weights after every link.  Here each round snapshots the
        outstanding need, draws a block of pairs by ``searchsorted`` over its
        running sum, applies the distance acceptance ``exp(-d/d_c)``
        vectorized, and realizes each accepted pair's reinforcement run as a
        single geometric draw — ``min(G, need_i, need_j)`` with
        ``G ~ Geometric(1-r)`` is exactly the distribution of the scalar
        1 + while-``r`` loop, truncated by either side's budget.  A light
        Python pass resolves intra-block conflicts (pairs whose endpoints an
        earlier pair already exhausted), and all units commit through one
        bulk :meth:`Graph.add_edges`.
        """
        w_total = float(omega[:num_nodes].sum())
        a_t = 2.0 * bandwidth_target / w_total
        desired = np.maximum(1.0 + a_t * (omega[:num_nodes] - self.omega0), 1.0)
        need = np.floor(desired - strength[:num_nodes] + 0.5)
        need = np.maximum(need, 0.0)
        active = np.nonzero(need)[0]
        if active.size < 2:
            return
        remaining = need[active].copy()
        use_distance = kappa > 0.0 and xs is not None
        pending: Dict[tuple, int] = {}
        rounds = 256
        dry_rounds = 0
        while rounds > 0 and dry_rounds < 3:
            rounds -= 1
            cum = np.cumsum(remaining)
            total = float(cum[-1])
            if total <= 0 or int(np.count_nonzero(remaining > 0)) < 2:
                break
            # A round's pair weights are a snapshot: too large a block lets
            # stale high-need endpoints soak up proposals after exhaustion,
            # concentrating reinforcement on fewer distinct pairs than the
            # per-draw re-weighted scalar kernel.  ~total/8 keeps the
            # staleness negligible at a few extra (cheap) rounds.
            block = int(min(max(total / 8.0, 16.0), float(1 << 18)))
            pos_i = np.searchsorted(cum, np_rng.random(block) * total, side="right")
            pos_j = np.searchsorted(cum, np_rng.random(block) * total, side="right")
            mask = pos_i != pos_j
            if use_distance:
                node_i = active[pos_i]
                node_j = active[pos_j]
                d = np.hypot(xs[node_i] - xs[node_j], ys[node_i] - ys[node_j])
                d_c = omega[node_i] * omega[node_j] / (kappa * w_total)
                with np.errstate(divide="ignore"):
                    accept = np.exp(
                        np.maximum(-d / np.maximum(d_c, 1e-300), -745.0)
                    )
                mask &= np_rng.random(block) < accept
            units_proposed = (
                np_rng.geometric(1.0 - self.r, size=block)
                if self.r > 0
                else np.ones(block, dtype=np.int64)
            )
            progress = False
            for k in np.nonzero(mask)[0].tolist():
                a, b = int(pos_i[k]), int(pos_j[k])
                if remaining[a] <= 0 or remaining[b] <= 0:
                    continue  # an earlier pair in this block exhausted it
                units = int(min(units_proposed[k], remaining[a], remaining[b]))
                remaining[a] -= units
                remaining[b] -= units
                i, j = int(active[a]), int(active[b])
                strength[i] += units
                strength[j] += units
                key = (i, j) if i < j else (j, i)
                pending[key] = pending.get(key, 0) + units
                progress = True
            dry_rounds = 0 if progress else dry_rounds + 1
        if pending:
            graph.add_edges(
                (i, j, float(units)) for (i, j), units in pending.items()
            )
