"""Weighted supply/demand growth model (Serrano–Boguñá–Díaz-Guilera).

The genre exemplar of *environment-coupled* internet models: the network is
not isolated but embedded in an exponentially growing pool of users that
demand service, and ASes adapt their bandwidth to the users they win.

Per unit time step (one "month"):

1. **demand growth** — ``ΔW(t)`` new users arrive and choose an AS by
   linear preference ``Π_i = ω_i / W``;
2. **supply growth** — ``ΔN(t)`` new ASes appear, each seeded with ``ω₀``
   users withdrawn uniformly from existing ASes (W is conserved);
3. **churn** — optionally, a fraction ``churn`` of users relocate by the
   same preference (the λ term: pure diffusion, no drift);
4. **adaptation** — every AS targets bandwidth
   ``b_i = 1 + a(t) (ω_i − ω₀)`` with ``a(t) = 2 B(t) / W(t)`` and
   ``B(t) = B0 e^{δ' t}``; the shortfall ``Δb_i`` is its *activity*.
   Pairs are drawn with probability ∝ Δb_i Δb_j among active nodes; an
   accepted pair forms one link (or reinforces an existing one — edge
   weight is bandwidth in discrete units) and keeps adding parallel units
   with probability ``r`` while both still need bandwidth.  With
   ``distance=True`` nodes live on a fractal set (D_f ≈ 1.5) and a pair at
   distance d is accepted with probability ``exp(-d / d_c)``,
   ``d_c = ω_i ω_j / (κ W)`` — long links are affordable only to large ASes.

Analytic targets the experiments check against: size distribution exponent
``1 + α/β``, degree exponent ``γ = 1 + 1/(2 − δ/β)`` with
``δ = 2β − αβ/δ'``, and the degree–bandwidth scaling ``k ∝ b^μ``,
``μ = β/δ'`` (F9).

Scale note: the original simulations used ``ω₀ = 5000`` (then W ≈ 5·10⁷
users at the 2001-map size).  User arrivals are simulated individually in
aggregate batches, so the default here is ``ω₀ = 50``, which preserves every
ratio the analysis depends on (ω₀ only sets the resource granularity) while
keeping harness runtimes in seconds.  Pass ``omega0=5000`` to reproduce the
original scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..environment.growth import GrowthSeries
from ..geometry.fractal import FractalBoxSet
from ..geometry.plane import Plane, Point
from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import FenwickSampler
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["SerranoGenerator", "SerranoRun"]


@dataclass
class SerranoRun:
    """Full output of one simulation: topology plus model state.

    ``graph`` — the weighted AS topology (edge weight = bandwidth units);
    ``users`` — final ω_i per AS;
    ``positions`` — node → Point when geography was on, else empty;
    ``history`` — GrowthSeries for W, N, E and B over simulated months;
    ``snapshots`` — size → frozen topology copy, captured the first time
    the node count reached each requested threshold (temporal snapshots of
    *one* growth history, for scaling and kernel measurements).
    """

    graph: Graph
    users: Dict[int, int]
    positions: Dict[int, Point] = field(default_factory=dict)
    history: Dict[str, GrowthSeries] = field(default_factory=dict)
    snapshots: Dict[int, Graph] = field(default_factory=dict)

    @property
    def total_users(self) -> int:
        """Total users W at the end of the run."""
        return int(sum(self.users.values()))


class SerranoGenerator(TopologyGenerator):
    """Weighted supply/demand growth with optional distance constraints."""

    name = "serrano"

    def __init__(
        self,
        omega0: int = 50,
        n0: int = 2,
        b0: float = 1.0,
        alpha: float = 0.035,
        beta: float = 0.03,
        delta_prime: float = 0.04,
        r: float = 0.8,
        churn: float = 0.0,
        distance: bool = False,
        fractal_dimension: float = 1.5,
        kappa: Optional[float] = None,
        nn_cutoff_factor: float = 4.0,
    ):
        if omega0 < 2:
            raise ValueError("omega0 must be >= 2")
        if n0 < 2:
            raise ValueError("n0 must be >= 2")
        if b0 <= 0:
            raise ValueError("b0 must be positive")
        if alpha <= 0 or beta <= 0 or delta_prime <= 0:
            raise ValueError("growth rates must be positive")
        if beta >= alpha:
            raise ValueError("the model requires alpha > beta (demand outgrows supply)")
        if delta_prime <= alpha:
            raise ValueError("delta' must exceed alpha (traffic outgrows demand)")
        if not 0 <= r < 1:
            raise ValueError("r must be in [0, 1)")
        if not 0 <= churn < 1:
            raise ValueError("churn must be in [0, 1)")
        self.omega0 = omega0
        self.n0 = n0
        self.b0 = b0
        self.alpha = alpha
        self.beta = beta
        self.delta_prime = delta_prime
        self.r = r
        self.churn = churn
        self.distance = distance
        self.fractal_dimension = fractal_dimension
        self.kappa = kappa
        self.nn_cutoff_factor = nn_cutoff_factor

    # ----------------------------------------------------------- predictions

    @property
    def tau(self) -> float:
        """β/α — size-distribution exponent is 1 + 1/τ · τ = 1 + τ⁻¹·…;
        p(ω) ~ ω^-(1+τ) with this τ… i.e. size exponent = 1 + α/β."""
        return self.beta / self.alpha

    @property
    def predicted_mu(self) -> float:
        """Degree–bandwidth exponent μ = β/δ′."""
        return self.beta / self.delta_prime

    @property
    def predicted_delta(self) -> float:
        """Edge growth rate δ = 2β − αβ/δ′ (from E ∝ N^(2−α/δ′))."""
        return 2.0 * self.beta - self.alpha * self.beta / self.delta_prime

    @property
    def predicted_gamma(self) -> float:
        """Degree exponent γ = 1 + 1/(2 − δ/β)."""
        return 1.0 + 1.0 / (2.0 - self.predicted_delta / self.beta)

    # ------------------------------------------------------------ simulation

    def _auto_kappa(self, n: int) -> float:
        """κ such that, at final W, two minimum-size ASes see a distance
        cutoff of ``nn_cutoff_factor`` nearest-neighbor spacings.

        Nearest-neighbor spacing on a D_f-dimensional set of n points in the
        unit square scales as n^(-1/D_f)."""
        w_final = self.omega0 * self.n0 * (n / self.n0) ** (self.alpha / self.beta)
        d_target = self.nn_cutoff_factor * n ** (-1.0 / self.fractal_dimension)
        return self.omega0**2 / (d_target * w_final)

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow the weighted topology to exactly *n* ASes."""
        return self.generate_detailed(n, seed=seed).graph

    def generate_detailed(
        self,
        n: int,
        seed: SeedLike = None,
        snapshot_sizes: Optional[List[int]] = None,
    ) -> SerranoRun:
        """Run the full simulation, returning topology plus model state.

        *snapshot_sizes* (ascending node counts below *n*) captures frozen
        copies of the topology the first time the network reaches each
        size — true temporal snapshots of a single growth history.
        """
        _validate_size(n, minimum=self.n0 + 1)
        pending_snapshots = sorted(set(snapshot_sizes or []))
        if pending_snapshots and (
            pending_snapshots[0] <= self.n0 or pending_snapshots[-1] > n
        ):
            raise ValueError("snapshot sizes must lie in (n0, n]")
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        kappa = self.kappa if self.kappa is not None else (
            self._auto_kappa(n) if self.distance else 0.0
        )

        fractal = (
            FractalBoxSet(dimension=self.fractal_dimension, seed=rng)
            if self.distance
            else None
        )
        positions: List[Point] = []

        graph = Graph(name=self.name + ("-distance" if self.distance else ""))
        omega = np.zeros(n, dtype=np.float64)
        num_nodes = self.n0
        for i in range(self.n0):
            graph.add_node(i)
            omega[i] = self.omega0
            if fractal is not None:
                positions.append(fractal.sample_point())
        # Seed topology: a chain over the n0 initial ASes.
        for i in range(self.n0 - 1):
            graph.add_edge(i, i + 1)
        strength = np.zeros(n, dtype=np.float64)
        for i in range(self.n0):
            strength[i] = graph.strength(i)

        history = {
            key: GrowthSeries(name=key) for key in ("users", "nodes", "edges", "bandwidth")
        }
        w0_total = float(self.omega0 * self.n0)
        total_steps = max(1, math.ceil(math.log(n / self.n0) / self.beta))

        snapshots: Dict[int, Graph] = {}
        self._record(history, 0.0, omega, num_nodes, graph)
        t = 0
        while num_nodes < n:
            t += 1
            if t > 4 * total_steps + 100:
                raise GenerationError("growth failed to reach target size")
            # -- 1. demand growth ------------------------------------------
            w_target = w0_total * math.exp(self.alpha * t)
            arrivals = int(round(w_target - float(omega[:num_nodes].sum())))
            if arrivals > 0:
                self._assign_users(omega, num_nodes, arrivals, np_rng)
            # -- 2. supply growth ------------------------------------------
            n_target = min(n, round(self.n0 * math.exp(self.beta * t)))
            while num_nodes < n_target:
                self._spawn_node(graph, omega, num_nodes, np_rng)
                if fractal is not None:
                    positions.append(fractal.sample_point())
                num_nodes += 1
            # -- 3. churn ---------------------------------------------------
            if self.churn > 0:
                self._relocate_users(omega, num_nodes, np_rng)
            # -- 4. adaptation ---------------------------------------------
            bandwidth_target = self.b0 * math.exp(self.delta_prime * t)
            self._adapt(
                graph, omega, strength, num_nodes, bandwidth_target,
                positions, kappa, rng,
            )
            self._record(history, float(t), omega, num_nodes, graph)
            while pending_snapshots and num_nodes >= pending_snapshots[0]:
                size = pending_snapshots.pop(0)
                frozen = graph.copy()
                frozen.name = f"{graph.name}@{num_nodes}"
                snapshots[size] = frozen

        users = {i: int(round(omega[i])) for i in range(num_nodes)}
        position_map = {i: positions[i] for i in range(num_nodes)} if positions else {}
        return SerranoRun(
            graph=graph, users=users, positions=position_map, history=history,
            snapshots=snapshots,
        )

    # ------------------------------------------------------------- internals

    @staticmethod
    def _record(history, t: float, omega, num_nodes: int, graph: Graph) -> None:
        history["users"].record(t, float(omega[:num_nodes].sum()))
        history["nodes"].record(t, float(num_nodes))
        history["edges"].record(t, float(max(graph.num_edges, 1)))
        history["bandwidth"].record(t, float(max(graph.total_weight, 1.0)))

    @staticmethod
    def _assign_users(omega, num_nodes: int, count: int, np_rng) -> None:
        """Batch linear-preference arrival: multinomial over Π_i = ω_i/W."""
        weights = omega[:num_nodes]
        total = weights.sum()
        probs = weights / total
        omega[:num_nodes] += np_rng.multinomial(count, probs)

    def _spawn_node(self, graph: Graph, omega, new_id: int, np_rng) -> None:
        """Create one AS with ω₀ users withdrawn from existing ASes.

        Donor ASes are drawn *uniformly over nodes* (not over users): the
        model's drift has a constant loss term −βω₀ per node, which is the
        uniform-over-donors convention.  An AS is never drained below one
        user (the reflecting-boundary analogue)."""
        needed = self.omega0
        for _ in range(50):  # clamped redraw rounds
            eligible = np.nonzero(omega[:new_id] > 1.0)[0]
            if eligible.size == 0:
                raise GenerationError("user pool exhausted while seeding a new AS")
            capacity = omega[eligible] - 1.0
            if capacity.sum() < needed:
                raise GenerationError("user pool exhausted while seeding a new AS")
            draws = np.bincount(
                np_rng.integers(0, eligible.size, size=needed),
                minlength=eligible.size,
            ).astype(np.float64)
            taken = np.minimum(draws, capacity)
            omega[eligible] -= taken
            shortfall = needed - int(taken.sum())
            if shortfall <= 0:
                break
            needed = shortfall
        graph.add_node(new_id)
        omega[new_id] = self.omega0

    def _relocate_users(self, omega, num_nodes: int, np_rng) -> None:
        """Move churn·W users: uniform departure, preferential arrival."""
        count = int(self.churn * omega[:num_nodes].sum())
        if count <= 0:
            return
        weights = np.maximum(omega[:num_nodes] - 1.0, 0.0)
        total = weights.sum()
        if total <= 0:
            return
        count = min(count, int(total))
        out = np.minimum(np_rng.multinomial(count, weights / total), weights)
        omega[:num_nodes] -= out
        moved = int(out.sum())
        stay = omega[:num_nodes]
        omega[:num_nodes] += np_rng.multinomial(moved, stay / stay.sum())

    @staticmethod
    def _acceptance(
        omega_i: float,
        omega_j: float,
        point_i: Point,
        point_j: Point,
        kappa: float,
        w_total: float,
    ) -> float:
        """Distance acceptance exp(-d/d_c) with d_c = ω_i ω_j / (κ W)."""
        if kappa <= 0 or w_total <= 0:
            return 0.0
        d = math.hypot(point_i.x - point_j.x, point_i.y - point_j.y)
        d_c = omega_i * omega_j / (kappa * w_total)
        if d_c <= 0:
            return 0.0
        exponent = -d / d_c
        return math.exp(exponent) if exponent > -700.0 else 0.0

    def _adapt(
        self,
        graph: Graph,
        omega,
        strength,
        num_nodes: int,
        bandwidth_target: float,
        positions: List[Point],
        kappa: float,
        rng,
    ) -> None:
        """One adaptation round: compute activities and match active pairs."""
        w_total = float(omega[:num_nodes].sum())
        a_t = 2.0 * bandwidth_target / w_total
        desired = np.maximum(1.0 + a_t * (omega[:num_nodes] - self.omega0), 1.0)
        need = np.floor(desired - strength[:num_nodes] + 0.5)
        need = np.maximum(need, 0.0)
        active = np.nonzero(need)[0]
        if active.size < 2:
            return
        sampler = FenwickSampler((float(need[i]) for i in active), seed=rng)
        index_of = {int(node): pos for pos, node in enumerate(active)}
        remaining = {int(node): int(need[node]) for node in active}
        budget = int(50 + 30 * need.sum())

        def consume(node: int, amount: int = 1) -> None:
            remaining[node] -= amount
            strength[node] += amount
            sampler.update(index_of[node], float(max(remaining[node], 0)))

        while budget > 0 and sampler.total > 0:
            budget -= 1
            pos_i = sampler.sample()
            i = int(active[pos_i])
            # Mask i out while drawing the partner.
            saved = sampler.weight(pos_i)
            sampler.update(pos_i, 0.0)
            if sampler.total <= 0:
                sampler.update(pos_i, saved)
                break
            pos_j = sampler.sample()
            sampler.update(pos_i, saved)
            j = int(active[pos_j])
            if positions:
                accept = self._acceptance(
                    float(omega[i]), float(omega[j]),
                    positions[i], positions[j], kappa, w_total,
                )
                if rng.random() >= accept:
                    continue
            graph.add_edge(i, j)
            consume(i)
            consume(j)
            # Bandwidth reinforcement: parallel units with probability r.
            while (
                remaining[i] > 0 and remaining[j] > 0 and rng.random() < self.r
            ):
                graph.add_edge(i, j)
                consume(i)
                consume(j)
