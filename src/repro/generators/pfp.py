"""Positive-Feedback Preference model (Zhou & Mondragón 2004).

PFP was fitted directly to the AS map and reproduces its rich-club core and
disassortativity, the two features linear-preference models miss.  Its two
mechanisms:

* **nonlinear preference** — a node is chosen with probability
  ``Π(i) ∝ k_i^(1 + delta * log10 k_i)``: feedback makes large hubs *more*
  than linearly attractive, densifying the top of the hierarchy;
* **interactive growth** — when a new node attaches, its host(s)
  simultaneously develop new internal links to peers, so the core thickens
  as the edge grows.

Step mix (defaults are the published fit ``p = 0.3, q = 0.1,
delta = 0.048``):

* prob *p* — new node with 1 link to a host; the host adds 2 peer links;
* prob *q* — new node with 1 link to a host; the host adds 1 peer link;
* prob 1-p-q — new node with 2 links to two hosts; one host adds 1 peer link.
"""

from __future__ import annotations

import math
from typing import List

from ..graph.graph import Graph
from ..stats.rng import BufferedUniforms, SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import FenwickSampler
from .base import TopologyGenerator, _validate_size

__all__ = ["PfpGenerator"]


class PfpGenerator(TopologyGenerator):
    """PFP growth with interactive host-link development.

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path proposes nodes degree-proportionally from a numpy
    endpoint pool and thins with probability ``k^(δ·log10 k) / M`` (*M*
    evaluated at the current maximum degree), which accepts exactly the
    nonlinear PFP kernel — sampled from a different seeded stream than the
    Fenwick walk, so this generator is ``engine_sensitive``.
    """

    name = "pfp"
    engine_sensitive = True

    def __init__(
        self,
        p: float = 0.3,
        q: float = 0.1,
        delta: float = 0.048,
        engine: str = "auto",
    ):
        if p < 0 or q < 0 or p + q > 1:
            raise ValueError("need p, q >= 0 with p + q <= 1")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.p = p
        self.q = q
        self.delta = delta
        self.engine = engine

    def _preference(self, degree: int) -> float:
        """The PFP kernel k^(1 + delta·log10 k); 0 for isolated nodes."""
        if degree <= 0:
            return 0.0
        return degree ** (1.0 + self.delta * math.log10(degree))

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a PFP network to exactly *n* nodes."""
        seed_size = 3
        _validate_size(n, minimum=seed_size + 1)
        engine = self.resolve_engine(n)
        if engine == "vector":
            return self._generate_vector(n, seed, seed_size)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        sampler = FenwickSampler(seed=rng)
        with self.trace_phase("seed", size=seed_size, engine=engine):
            for i in range(seed_size):
                graph.add_node(i)
                sampler.append(0.0)
            for i, j in ((0, 1), (1, 2), (2, 0)):
                graph.add_edge(i, j)
            for i in range(seed_size):
                sampler.update(i, self._preference(graph.degree(i)))

        with self.trace_phase("growth", n=n, engine=engine):
            for new in range(seed_size, n):
                roll = rng.random()
                if roll < self.p:
                    hosts = self._attach_new(graph, sampler, new, num_hosts=1)
                    self._develop_links(graph, sampler, hosts[0], count=2, rng=rng)
                elif roll < self.p + self.q:
                    hosts = self._attach_new(graph, sampler, new, num_hosts=1)
                    self._develop_links(graph, sampler, hosts[0], count=1, rng=rng)
                else:
                    hosts = self._attach_new(graph, sampler, new, num_hosts=2)
                    chosen = hosts[rng.randrange(len(hosts))]
                    self._develop_links(graph, sampler, chosen, count=1, rng=rng)
            self.count_steps(n - seed_size)
        return graph

    def _refresh(self, graph: Graph, sampler: FenwickSampler, node: int) -> None:
        """Recompute a node's nonlinear preference after a degree change."""
        sampler.update(node, self._preference(graph.degree(node)))

    def _attach_new(
        self, graph: Graph, sampler: FenwickSampler, new: int, num_hosts: int
    ) -> List[int]:
        """Create node *new* linked to *num_hosts* distinct hosts."""
        hosts = sampler.sample_distinct(min(num_hosts, len(sampler)))
        graph.add_node(new)
        sampler.append(0.0)
        for host in hosts:
            graph.add_edge(new, host)
            self._refresh(graph, sampler, host)
        self._refresh(graph, sampler, new)
        return hosts

    def _develop_links(
        self, graph: Graph, sampler: FenwickSampler, host: int, count: int, rng
    ) -> None:
        """The host adds *count* internal links to preferential peers."""
        for _ in range(count):
            for _ in range(30):  # bounded retries on duplicates
                peer = sampler.sample()
                if peer != host and not graph.has_edge(host, peer):
                    graph.add_edge(host, peer)
                    self._refresh(graph, sampler, host)
                    self._refresh(graph, sampler, peer)
                    break

    # ------------------------------------------------------------ vector path

    def _generate_vector(self, n: int, seed: SeedLike, seed_size: int) -> Graph:
        """Pool growth thinned to the nonlinear kernel by rejection.

        Host/peer candidates are proposed ∝ k from an endpoint pool and
        accepted with probability ``k^(δ·log10 k) / M`` (*M* evaluated at
        the current maximum degree) — acceptances follow the full PFP
        kernel.  Draws are served from block-buffered numpy uniforms; edges
        land on the live graph (duplicate/self checks need it) and the pool
        and degree list are updated in place.
        """
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        uniform = BufferedUniforms(np_rng).next
        delta = self.delta
        graph = Graph(name=self.name)
        degrees = [0] * n
        pool: List[int] = []
        state = {"kmax": 1}

        def push_edge(u: int, v: int) -> None:
            graph.add_edge(u, v)
            degrees[u] += 1
            degrees[v] += 1
            pool.extend((u, v))
            top = degrees[u] if degrees[u] > degrees[v] else degrees[v]
            if top > state["kmax"]:
                state["kmax"] = top

        def draw_targets(count: int, forbid, adjacency) -> List[int]:
            """First *count* accepted, distinct, admissible targets."""
            chosen: List[int] = []
            kmax = state["kmax"]
            ceiling = kmax ** (delta * math.log10(kmax)) if kmax > 1 else 1.0
            tries = 0
            limit = 1200 * count  # bounded like the scalar retry loops
            while len(chosen) < count and tries < limit:
                tries += 1
                cand = pool[int(uniform() * len(pool))]
                k = degrees[cand]
                # k == 1 gives ratio 1/ceiling: the kernel exponent is 0.
                if uniform() * ceiling > k ** (delta * math.log10(k)):
                    continue
                if cand in forbid or cand in chosen:
                    continue
                if adjacency is not None and cand in adjacency:
                    continue
                chosen.append(cand)
            return chosen  # may fall short, matching scalar give-up semantics

        with self.trace_phase("seed", size=seed_size, engine="vector"):
            graph.add_nodes(range(seed_size))
            for i, j in ((0, 1), (1, 2), (2, 0)):
                push_edge(i, j)

        with self.trace_phase("growth", n=n, engine="vector"):
            for new in range(seed_size, n):
                roll = uniform()
                if roll < self.p:
                    num_hosts, develop = 1, 2
                elif roll < self.p + self.q:
                    num_hosts, develop = 1, 1
                else:
                    num_hosts, develop = 2, 1
                hosts = draw_targets(num_hosts, frozenset(), None)
                graph.add_node(new)
                for host in hosts:
                    push_edge(new, host)
                if not hosts:
                    continue  # degenerate; scalar path cannot hit this either
                if num_hosts == 1:
                    chosen_host = hosts[0]
                else:
                    chosen_host = hosts[int(uniform() * len(hosts))]
                adjacency = graph.neighbor_weights(chosen_host)
                peers = draw_targets(develop, frozenset((chosen_host,)), adjacency)
                for peer in peers:
                    push_edge(chosen_host, peer)
            self.count_steps(n - seed_size)
        return graph
