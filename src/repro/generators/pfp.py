"""Positive-Feedback Preference model (Zhou & Mondragón 2004).

PFP was fitted directly to the AS map and reproduces its rich-club core and
disassortativity, the two features linear-preference models miss.  Its two
mechanisms:

* **nonlinear preference** — a node is chosen with probability
  ``Π(i) ∝ k_i^(1 + delta * log10 k_i)``: feedback makes large hubs *more*
  than linearly attractive, densifying the top of the hierarchy;
* **interactive growth** — when a new node attaches, its host(s)
  simultaneously develop new internal links to peers, so the core thickens
  as the edge grows.

Step mix (defaults are the published fit ``p = 0.3, q = 0.1,
delta = 0.048``):

* prob *p* — new node with 1 link to a host; the host adds 2 peer links;
* prob *q* — new node with 1 link to a host; the host adds 1 peer link;
* prob 1-p-q — new node with 2 links to two hosts; one host adds 1 peer link.
"""

from __future__ import annotations

import math
from typing import List, Optional

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import FenwickSampler
from .base import TopologyGenerator, _validate_size

__all__ = ["PfpGenerator"]


class PfpGenerator(TopologyGenerator):
    """PFP growth with interactive host-link development."""

    name = "pfp"

    def __init__(self, p: float = 0.3, q: float = 0.1, delta: float = 0.048):
        if p < 0 or q < 0 or p + q > 1:
            raise ValueError("need p, q >= 0 with p + q <= 1")
        if delta < 0:
            raise ValueError("delta must be non-negative")
        self.p = p
        self.q = q
        self.delta = delta

    def _preference(self, degree: int) -> float:
        """The PFP kernel k^(1 + delta·log10 k); 0 for isolated nodes."""
        if degree <= 0:
            return 0.0
        return degree ** (1.0 + self.delta * math.log10(degree))

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a PFP network to exactly *n* nodes."""
        seed_size = 3
        _validate_size(n, minimum=seed_size + 1)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        sampler = FenwickSampler(seed=rng)
        with self.trace_phase("seed", size=seed_size):
            for i in range(seed_size):
                graph.add_node(i)
                sampler.append(0.0)
            for i, j in ((0, 1), (1, 2), (2, 0)):
                graph.add_edge(i, j)
            for i in range(seed_size):
                sampler.update(i, self._preference(graph.degree(i)))

        with self.trace_phase("growth", n=n):
            for new in range(seed_size, n):
                roll = rng.random()
                if roll < self.p:
                    hosts = self._attach_new(graph, sampler, new, num_hosts=1)
                    self._develop_links(graph, sampler, hosts[0], count=2, rng=rng)
                elif roll < self.p + self.q:
                    hosts = self._attach_new(graph, sampler, new, num_hosts=1)
                    self._develop_links(graph, sampler, hosts[0], count=1, rng=rng)
                else:
                    hosts = self._attach_new(graph, sampler, new, num_hosts=2)
                    chosen = hosts[rng.randrange(len(hosts))]
                    self._develop_links(graph, sampler, chosen, count=1, rng=rng)
            self.count_steps(n - seed_size)
        return graph

    def _refresh(self, graph: Graph, sampler: FenwickSampler, node: int) -> None:
        """Recompute a node's nonlinear preference after a degree change."""
        sampler.update(node, self._preference(graph.degree(node)))

    def _attach_new(
        self, graph: Graph, sampler: FenwickSampler, new: int, num_hosts: int
    ) -> List[int]:
        """Create node *new* linked to *num_hosts* distinct hosts."""
        hosts = sampler.sample_distinct(min(num_hosts, len(sampler)))
        graph.add_node(new)
        sampler.append(0.0)
        for host in hosts:
            graph.add_edge(new, host)
            self._refresh(graph, sampler, host)
        self._refresh(graph, sampler, new)
        return hosts

    def _develop_links(
        self, graph: Graph, sampler: FenwickSampler, host: int, count: int, rng
    ) -> None:
        """The host adds *count* internal links to preferential peers."""
        for _ in range(count):
            for _ in range(30):  # bounded retries on duplicates
                peer = sampler.sample()
                if peer != host and not graph.has_edge(host, peer):
                    graph.add_edge(host, peer)
                    self._refresh(graph, sampler, host)
                    self._refresh(graph, sampler, peer)
                    break
