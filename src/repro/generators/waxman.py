"""Waxman (1988) — the first-generation internet topology generator.

Nodes scatter on a plane; each pair links with probability
``beta * exp(-d / (alpha * L))``.  It captures that long links are rare but
produces Poisson-like degrees, which is precisely why post-1999 measurement
papers displaced it — the comparison table keeps it as the historical
baseline the heavy-tail results are contrasted against.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry.kernels import WaxmanKernel
from ..geometry.plane import Plane
from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_numpy_rng, make_rng
from .base import TopologyGenerator, _validate_size

__all__ = ["WaxmanGenerator"]


class WaxmanGenerator(TopologyGenerator):
    """Flat Waxman random graph on a unit square.

    *alpha* stretches the distance decay, *beta* scales density.  With
    ``connect=True`` (default) isolated fragments are stitched to the giant
    component through their spatially nearest member, the convention BRITE
    adopted so benchmark graphs are usable for routing studies.

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path sweeps pair blocks against one batched uniform stream
    and commits hits through a bulk insert, reproducing the python engine's
    graph bit-for-bit (numpy draws are chunk-invariant).
    """

    name = "waxman"

    def __init__(
        self,
        alpha: float = 0.15,
        beta: float = 0.4,
        connect: bool = True,
        engine: str = "auto",
    ):
        self.alpha = alpha
        self.beta = beta
        self.connect = connect
        self.engine = engine
        # Validates ranges eagerly so a bad config fails at construction.
        self._kernel = WaxmanKernel(alpha=alpha, beta=beta)

    @staticmethod
    def beta_for_average_degree(
        n: int, target_degree: float, alpha: float = 0.15, samples: int = 20_000, seed: int = 7
    ) -> float:
        """Beta that yields ⟨k⟩ ≈ *target_degree* at size *n*.

        The expected degree is ``(n-1) * beta * E[exp(-d/(alpha L))]`` with d
        the distance between two uniform points; the expectation is estimated
        by Monte Carlo once and inverted.  Result is clamped to (0, 1].
        """
        if n < 2 or target_degree <= 0:
            raise ValueError("need n >= 2 and a positive target degree")
        rng = make_numpy_rng(seed)
        a = rng.random((samples, 2))
        b = rng.random((samples, 2))
        d = np.hypot(a[:, 0] - b[:, 0], a[:, 1] - b[:, 1])
        scale = alpha * math.sqrt(2.0)
        mean_kernel = float(np.mean(np.exp(-d / scale)))
        beta = target_degree / ((n - 1) * mean_kernel)
        return min(max(beta, 1e-9), 1.0)

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Sample one Waxman instance with *n* nodes."""
        _validate_size(n)
        engine = self.resolve_engine(n)
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        xs = np_rng.random(n)
        ys = np_rng.random(n)
        plane = Plane(side=1.0)
        graph = Graph(name=self.name)
        for node in range(n):
            plane.place(node, float(xs[node]), float(ys[node]))
            graph.add_node(node)
        scale = self.alpha * plane.max_distance
        with self.trace_phase("pairs", n=n, engine=engine):
            if engine == "vector":
                self._pair_sweep_vector(graph, xs, ys, scale, np_rng)
            else:
                # Row-vectorized pair sweep: for each u, test all v > u at once.
                for u in range(n - 1):
                    dx = xs[u + 1 :] - xs[u]
                    dy = ys[u + 1 :] - ys[u]
                    prob = self.beta * np.exp(-np.hypot(dx, dy) / scale)
                    hits = np.nonzero(np_rng.random(n - u - 1) < prob)[0]
                    for offset in hits:
                        graph.add_edge(u, int(u + 1 + offset))
        if self.connect:
            self._stitch_components(graph, plane)
        return graph

    def _pair_sweep_vector(self, graph: Graph, xs, ys, scale: float, np_rng) -> None:
        """Blockwise upper-triangle sweep, bit-identical to the row loop.

        Rows are grouped into blocks of ~2M pairs; within a block the pair
        order is row-major (exactly the python engine's order), and one
        ``np_rng.random(pairs)`` per block consumes the uniform stream
        exactly as the per-row calls do, so the edge set is identical.
        Hits are committed through :meth:`Graph.add_edges`.
        """
        n = xs.shape[0]
        block_pairs = 1 << 21
        u = 0
        while u < n - 1:
            u_end = u
            pairs = 0
            while u_end < n - 1 and pairs < block_pairs:
                pairs += n - u_end - 1
                u_end += 1
            rows = np.arange(u, u_end)
            iu = np.repeat(rows, n - 1 - rows)
            iv = np.concatenate([np.arange(r + 1, n) for r in rows])
            prob = self.beta * np.exp(
                -np.hypot(xs[iv] - xs[iu], ys[iv] - ys[iu]) / scale
            )
            hits = np_rng.random(iu.shape[0]) < prob
            graph.add_edges(zip(iu[hits].tolist(), iv[hits].tolist()))
            u = u_end

    @staticmethod
    def _stitch_components(graph: Graph, plane: Plane) -> None:
        """Attach every non-giant component to the giant one via the
        spatially closest cross pair (deterministic given the layout)."""
        from ..graph.traversal import connected_components

        components = connected_components(graph)
        if len(components) <= 1:
            return
        giant = set(components[0])
        for component in components[1:]:
            best_pair = None
            best_distance = float("inf")
            for u in component:
                for v in giant:
                    d = plane.distance(u, v)
                    if d < best_distance:
                        best_distance = d
                        best_pair = (u, v)
            if best_pair is not None:
                graph.add_edge(*best_pair)
                giant |= set(component)
