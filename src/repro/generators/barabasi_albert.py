"""Barabási–Albert preferential attachment.

The model that launched degree-driven internet modeling: each arriving node
attaches *m* edges to existing nodes with probability proportional to their
degree, producing ``P(k) ~ k^-3``.  Its known failure modes against the AS
map — exponent too steep, clustering too low and flat in k, neutral degree
correlations, shallow k-cores (coreness = m) — are exactly what the
comparison experiments must surface.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["BarabasiAlbertGenerator", "preferential_targets"]


def _batch_targets(
    repeated_nodes: List[int], count: int, rng: np.random.Generator, exclude: int
) -> List[int]:
    """Vectorized rejection sampling for numpy Generators.

    Draws index batches with one ``rng.integers`` call each, drops the
    excluded node, and keeps first occurrences (``np.unique`` with
    ``return_index`` re-sorted by draw position), so the accepted sequence
    is exactly what scalar rejection sampling would have accepted.
    """
    pool = np.asarray(repeated_nodes, dtype=np.int64)
    targets: List[int] = []
    seen: set = set()
    batch_size = max(4 * count, 16)
    while len(targets) < count:
        draws = pool[rng.integers(0, pool.size, size=batch_size)]
        draws = draws[draws != exclude]
        _, first = np.unique(draws, return_index=True)
        for position in np.sort(first):
            candidate = int(draws[position])
            if candidate not in seen:
                seen.add(candidate)
                targets.append(candidate)
                if len(targets) == count:
                    break
    return targets


def preferential_targets(
    repeated_nodes: List[int], count: int, rng, exclude: int
) -> List[int]:
    """Draw *count* distinct targets ∝ degree from the endpoint list.

    ``repeated_nodes`` holds each node once per incident edge endpoint, so a
    uniform draw from it is exactly a degree-proportional draw — the classic
    O(1) trick.  *exclude* (the arriving node) is never returned.

    Rejection sampling degenerates when *count* equals the number of
    distinct candidates (the last missing node may be drawn with vanishing
    probability), so after a generous retry budget the remaining targets
    are filled by a shuffle of the not-yet-picked candidates.  The budget
    is far beyond anything non-degenerate draws hit, keeping the draw
    sequence — and therefore every seeded topology — unchanged.

    A ``numpy.random.Generator`` *rng* takes a vectorized batch path;
    ``random.Random`` keeps the scalar loop (its draw sequence is part of
    the seed contract).
    """
    if not repeated_nodes:
        raise GenerationError("no existing endpoints to attach to")
    distinct = {x for x in repeated_nodes if x != exclude}
    if count > len(distinct):
        raise GenerationError(
            f"cannot pick {count} distinct targets from {len(distinct)} candidates"
        )
    if isinstance(rng, np.random.Generator):
        return _batch_targets(repeated_nodes, count, rng, exclude)
    targets: set = set()
    tries = 0
    max_tries = 64 * count + 1024
    while len(targets) < count and tries < max_tries:
        tries += 1
        candidate = repeated_nodes[rng.randrange(len(repeated_nodes))]
        if candidate != exclude:
            targets.add(candidate)
    if len(targets) < count:
        remaining = sorted(distinct - targets)
        rng.shuffle(remaining)
        targets.update(remaining[: count - len(targets)])
    return list(targets)


class BarabasiAlbertGenerator(TopologyGenerator):
    """Plain BA growth: one node and *m* preferential edges per step.

    Starts from a ring of ``max(m, 3)`` seed nodes so the first arrival has
    enough distinct targets.
    """

    name = "barabasi-albert"

    def __init__(self, m: int = 2):
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a BA network to exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        repeated: List[int] = []
        with self.trace_phase("seed", size=seed_size):
            for i in range(seed_size):
                j = (i + 1) % seed_size
                graph.add_edge(i, j)
                repeated.extend((i, j))
        with self.trace_phase("growth", n=n):
            for new in range(seed_size, n):
                targets = preferential_targets(repeated, self.m, rng, exclude=new)
                for target in targets:
                    graph.add_edge(new, target)
                    repeated.extend((new, target))
            self.count_steps(n - seed_size)
        return graph
