"""Barabási–Albert preferential attachment.

The model that launched degree-driven internet modeling: each arriving node
attaches *m* edges to existing nodes with probability proportional to their
degree, producing ``P(k) ~ k^-3``.  Its known failure modes against the AS
map — exponent too steep, clustering too low and flat in k, neutral degree
correlations, shallow k-cores (coreness = m) — are exactly what the
comparison experiments must surface.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import distinct_in_order
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["BarabasiAlbertGenerator", "preferential_targets"]


def _batch_targets(
    repeated_nodes: List[int], count: int, rng: np.random.Generator, exclude: int
) -> List[int]:
    """Vectorized rejection sampling for numpy Generators.

    Draws index batches with one ``rng.integers`` call each, drops the
    excluded node, and keeps first occurrences (``np.unique`` with
    ``return_index`` re-sorted by draw position), so the accepted sequence
    is exactly what scalar rejection sampling would have accepted.
    """
    pool = np.asarray(repeated_nodes, dtype=np.int64)
    targets: List[int] = []
    seen: set = set()
    batch_size = max(4 * count, 16)
    while len(targets) < count:
        draws = pool[rng.integers(0, pool.size, size=batch_size)]
        draws = draws[draws != exclude]
        _, first = np.unique(draws, return_index=True)
        for position in np.sort(first):
            candidate = int(draws[position])
            if candidate not in seen:
                seen.add(candidate)
                targets.append(candidate)
                if len(targets) == count:
                    break
    return targets


def preferential_targets(
    repeated_nodes: List[int], count: int, rng, exclude: int
) -> List[int]:
    """Draw *count* distinct targets ∝ degree from the endpoint list.

    ``repeated_nodes`` holds each node once per incident edge endpoint, so a
    uniform draw from it is exactly a degree-proportional draw — the classic
    O(1) trick.  *exclude* (the arriving node) is never returned.

    Rejection sampling degenerates when *count* equals the number of
    distinct candidates (the last missing node may be drawn with vanishing
    probability), so after a generous retry budget the remaining targets
    are filled by a shuffle of the not-yet-picked candidates.  The budget
    is far beyond anything non-degenerate draws hit, keeping the draw
    sequence — and therefore every seeded topology — unchanged.

    A ``numpy.random.Generator`` *rng* takes a vectorized batch path;
    ``random.Random`` keeps the scalar loop (its draw sequence is part of
    the seed contract).
    """
    if not repeated_nodes:
        raise GenerationError("no existing endpoints to attach to")
    distinct = {x for x in repeated_nodes if x != exclude}
    if count > len(distinct):
        raise GenerationError(
            f"cannot pick {count} distinct targets from {len(distinct)} candidates"
        )
    if isinstance(rng, np.random.Generator):
        return _batch_targets(repeated_nodes, count, rng, exclude)
    targets: set = set()
    tries = 0
    max_tries = 64 * count + 1024
    while len(targets) < count and tries < max_tries:
        tries += 1
        candidate = repeated_nodes[rng.randrange(len(repeated_nodes))]
        if candidate != exclude:
            targets.add(candidate)
    if len(targets) < count:
        remaining = sorted(distinct - targets)
        rng.shuffle(remaining)
        targets.update(remaining[: count - len(targets)])
    return list(targets)


class BarabasiAlbertGenerator(TopologyGenerator):
    """Plain BA growth: one node and *m* preferential edges per step.

    Starts from a ring of ``max(m, 3)`` seed nodes so the first arrival has
    enough distinct targets.

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path batch-draws each arrival's targets from a preallocated
    numpy endpoint pool and commits edges through one bulk insert.  The two
    engines sample the same attachment kernel from different seeded streams
    (distributionally equivalent, not bit-identical), so this generator is
    ``engine_sensitive``.
    """

    name = "barabasi-albert"
    engine_sensitive = True

    def __init__(self, m: int = 2, engine: str = "auto"):
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m
        self.engine = engine

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a BA network to exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        engine = self.resolve_engine(n)
        if engine == "vector":
            return self._generate_vector(n, seed, seed_size)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        repeated: List[int] = []
        with self.trace_phase("seed", size=seed_size, engine=engine):
            for i in range(seed_size):
                j = (i + 1) % seed_size
                graph.add_edge(i, j)
                repeated.extend((i, j))
        with self.trace_phase("growth", n=n, engine=engine):
            for new in range(seed_size, n):
                targets = preferential_targets(repeated, self.m, rng, exclude=new)
                for target in targets:
                    graph.add_edge(new, target)
                    repeated.extend((new, target))
            self.count_steps(n - seed_size)
        return graph

    def _generate_vector(self, n: int, seed: SeedLike, seed_size: int) -> Graph:
        """Batch growth: numpy endpoint pool + bulk edge insert.

        The endpoint pool is the same degree-proportional structure the
        python engine uses, preallocated as an int64 array; each arrival
        draws one oversized ``integers`` batch and keeps the first ``m``
        distinct values (the arriving node is never in the pool, so no
        exclusion is needed).
        """
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        m = self.m
        graph = Graph(name=self.name)
        pool = np.empty(2 * (seed_size + m * (n - seed_size)), dtype=np.int64)
        fill = 0
        edges: List[tuple] = []
        with self.trace_phase("seed", size=seed_size, engine="vector"):
            for i in range(seed_size):
                j = (i + 1) % seed_size
                edges.append((i, j))
                pool[fill] = i
                pool[fill + 1] = j
                fill += 2
        with self.trace_phase("growth", n=n, engine="vector"):
            batch = max(4 * m, 16)
            for new in range(seed_size, n):
                targets = distinct_in_order(
                    pool[np_rng.integers(0, fill, size=batch)], m
                )
                while len(targets) < m:  # rare shortfall: top up
                    targets = distinct_in_order(
                        np.concatenate(
                            (
                                np.asarray(targets, dtype=np.int64),
                                pool[np_rng.integers(0, fill, size=batch)],
                            )
                        ),
                        m,
                    )
                for target in targets:
                    edges.append((new, target))
                    pool[fill] = new
                    pool[fill + 1] = target
                    fill += 2
            self.count_steps(n - seed_size)
        graph.add_edges(edges)
        return graph
