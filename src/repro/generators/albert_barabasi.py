"""Extended Barabási–Albert model (Albert & Barabási 2000).

Adds two internal evolution moves to plain BA growth.  At each step, with
probability *p* add ``m`` new edges between existing nodes (one endpoint
uniform, the other preferential); with probability *q* rewire ``m`` existing
edges toward preferential targets; otherwise add a new node with ``m``
preferential edges.  Internal edge addition flattens the degree exponent
below 3, which is how the AB model reaches the AS map's γ ≈ 2.2 — its main
claim in the generator-comparison literature.
"""

from __future__ import annotations

from typing import Dict, List

from ..graph.graph import Graph
from ..stats.rng import BufferedUniforms, SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import distinct_in_order
from .base import GenerationError, TopologyGenerator, _validate_size
from .barabasi_albert import preferential_targets

__all__ = ["AlbertBarabasiGenerator"]


class AlbertBarabasiGenerator(TopologyGenerator):
    """AB extended model with moves (add-edges p, rewire q, grow 1-p-q).

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path keeps the endpoint pool, the node range, and the edge
    list in O(1)-update structures (slot maps instead of linear scans), so
    every move — grow, internal edge, rewire — runs in constant time.
    Different seeded stream than the scalar loop, so this generator is
    ``engine_sensitive``.
    """

    name = "albert-barabasi"
    engine_sensitive = True

    def __init__(self, m: int = 2, p: float = 0.35, q: float = 0.1, engine: str = "auto"):
        if m < 1:
            raise ValueError("m must be >= 1")
        if p < 0 or q < 0 or p + q >= 1:
            raise ValueError("need p, q >= 0 and p + q < 1")
        self.m = m
        self.p = p
        self.q = q
        self.engine = engine

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow the network until it holds exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        if self.resolve_engine(n) == "vector":
            return self._generate_vector(n, seed, seed_size)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        repeated: List[int] = []
        for i in range(seed_size):
            j = (i + 1) % seed_size
            graph.add_edge(i, j)
            repeated.extend((i, j))
        next_node = seed_size
        # Guard against pathological no-progress loops when moves keep
        # failing on tiny graphs.
        stall_budget = 50 * n
        while next_node < n and stall_budget > 0:
            stall_budget -= 1
            roll = rng.random()
            if roll < self.p:
                self._add_internal_edges(graph, repeated, rng)
            elif roll < self.p + self.q:
                self._rewire_edges(graph, repeated, rng)
            else:
                targets = preferential_targets(repeated, self.m, rng, exclude=next_node)
                for target in targets:
                    graph.add_edge(next_node, target)
                    repeated.extend((next_node, target))
                next_node += 1
        if next_node < n:
            raise GenerationError("AB growth stalled before reaching target size")
        return graph

    def _add_internal_edges(self, graph: Graph, repeated: List[int], rng) -> None:
        """Move 1: m new internal edges, uniform source → preferential target."""
        nodes = list(graph.nodes())
        for _ in range(self.m):
            source = nodes[rng.randrange(len(nodes))]
            for _ in range(20):  # bounded retries when the draw is invalid
                target = repeated[rng.randrange(len(repeated))]
                if target != source and not graph.has_edge(source, target):
                    graph.add_edge(source, target)
                    repeated.extend((source, target))
                    break

    def _rewire_edges(self, graph: Graph, repeated: List[int], rng) -> None:
        """Move 2: m rewires — detach a random endpoint pair, reattach the
        kept endpoint preferentially."""
        edges = list(graph.edges())
        if not edges:
            return
        for _ in range(self.m):
            u, v = edges[rng.randrange(len(edges))]
            if not graph.has_edge(u, v):
                continue  # already rewired away this round
            keep, drop = (u, v) if rng.random() < 0.5 else (v, u)
            if graph.degree(drop) <= 1:
                continue  # avoid disconnecting leaves
            for _ in range(20):
                target = repeated[rng.randrange(len(repeated))]
                if target not in (keep, drop) and not graph.has_edge(keep, target):
                    graph.remove_edge(keep, drop)
                    graph.add_edge(keep, target)
                    self._swap_endpoint(repeated, drop, target)
                    break

    @staticmethod
    def _swap_endpoint(repeated: List[int], old: int, new: int) -> None:
        """Replace one occurrence of *old* with *new* in the endpoint list."""
        idx = repeated.index(old)
        repeated[idx] = new

    # ------------------------------------------------------------ vector path

    def _generate_vector(self, n: int, seed: SeedLike, seed_size: int) -> Graph:
        """O(1)-move growth on slot-mapped pools.

        The scalar loop's per-move linear scans — ``list(graph.nodes())``,
        ``list(graph.edges())``, ``repeated.index(old)`` — are replaced by a
        contiguous node range, an edge list with a position map
        (swap-with-last removal), and an endpoint pool with per-node slot
        lists.  Draws come from block-buffered numpy uniforms.
        """
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        uniform = BufferedUniforms(np_rng).next
        m = self.m
        graph = Graph(name=self.name)

        pool: List[int] = []  # one slot per edge endpoint, ∝ degree
        slots: Dict[int, List[int]] = {}  # node → its pool slot indices
        edge_list: List[tuple] = []
        edge_pos: Dict[tuple, int] = {}

        def pool_add(node: int) -> None:
            slots.setdefault(node, []).append(len(pool))
            pool.append(node)

        def pool_swap(old: int, new: int) -> None:
            idx = slots[old].pop()
            pool[idx] = new
            slots.setdefault(new, []).append(idx)

        def edge_add(u: int, v: int) -> None:
            graph.add_edge(u, v)
            key = (u, v) if u < v else (v, u)
            edge_pos[key] = len(edge_list)
            edge_list.append(key)

        def edge_remove(u: int, v: int) -> None:
            graph.remove_edge(u, v)
            key = (u, v) if u < v else (v, u)
            pos = edge_pos.pop(key)
            last = edge_list.pop()
            if last != key:
                edge_list[pos] = last
                edge_pos[last] = pos

        for i in range(seed_size):
            j = (i + 1) % seed_size
            edge_add(i, j)
            pool_add(i)
            pool_add(j)
        next_node = seed_size
        stall_budget = 50 * n
        steps = 0
        with self.trace_phase("growth", n=n, engine="vector"):
            while next_node < n and stall_budget > 0:
                stall_budget -= 1
                steps += 1
                roll = uniform()
                if roll < self.p:
                    # Move 1: m internal edges, uniform source → preferential.
                    for _ in range(m):
                        source = int(uniform() * next_node)
                        for _ in range(20):
                            target = pool[int(uniform() * len(pool))]
                            if target != source and not graph.has_edge(source, target):
                                edge_add(source, target)
                                pool_add(source)
                                pool_add(target)
                                break
                elif roll < self.p + self.q:
                    # Move 2: m rewires toward preferential targets.
                    if not edge_list:
                        continue
                    for _ in range(m):
                        u, v = edge_list[int(uniform() * len(edge_list))]
                        if not graph.has_edge(u, v):
                            continue  # already rewired away this round
                        keep, drop = (u, v) if uniform() < 0.5 else (v, u)
                        if graph.degree(drop) <= 1:
                            continue  # avoid disconnecting leaves
                        for _ in range(20):
                            target = pool[int(uniform() * len(pool))]
                            if target not in (keep, drop) and not graph.has_edge(
                                keep, target
                            ):
                                edge_remove(keep, drop)
                                edge_add(keep, target)
                                pool_swap(drop, target)
                                break
                else:
                    # Move 3: grow — new node with m preferential targets.
                    new = next_node
                    batch = max(4 * m, 16)
                    targets = distinct_in_order(
                        (pool[int(uniform() * len(pool))] for _ in range(batch)), m
                    )
                    tries = 0
                    while len(targets) < m and tries < 200:
                        tries += 1
                        cand = pool[int(uniform() * len(pool))]
                        if cand not in targets:
                            targets.append(cand)
                    for target in targets:
                        edge_add(new, target)
                        pool_add(new)
                        pool_add(target)
                    next_node += 1
            self.count_steps(steps)
        if next_node < n:
            raise GenerationError("AB growth stalled before reaching target size")
        return graph
