"""Extended Barabási–Albert model (Albert & Barabási 2000).

Adds two internal evolution moves to plain BA growth.  At each step, with
probability *p* add ``m`` new edges between existing nodes (one endpoint
uniform, the other preferential); with probability *q* rewire ``m`` existing
edges toward preferential targets; otherwise add a new node with ``m``
preferential edges.  Internal edge addition flattens the degree exponent
below 3, which is how the AB model reaches the AS map's γ ≈ 2.2 — its main
claim in the generator-comparison literature.
"""

from __future__ import annotations

from typing import List

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import GenerationError, TopologyGenerator, _validate_size
from .barabasi_albert import preferential_targets

__all__ = ["AlbertBarabasiGenerator"]


class AlbertBarabasiGenerator(TopologyGenerator):
    """AB extended model with moves (add-edges p, rewire q, grow 1-p-q)."""

    name = "albert-barabasi"

    def __init__(self, m: int = 2, p: float = 0.35, q: float = 0.1):
        if m < 1:
            raise ValueError("m must be >= 1")
        if p < 0 or q < 0 or p + q >= 1:
            raise ValueError("need p, q >= 0 and p + q < 1")
        self.m = m
        self.p = p
        self.q = q

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow the network until it holds exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        repeated: List[int] = []
        for i in range(seed_size):
            j = (i + 1) % seed_size
            graph.add_edge(i, j)
            repeated.extend((i, j))
        next_node = seed_size
        # Guard against pathological no-progress loops when moves keep
        # failing on tiny graphs.
        stall_budget = 50 * n
        while next_node < n and stall_budget > 0:
            stall_budget -= 1
            roll = rng.random()
            if roll < self.p:
                self._add_internal_edges(graph, repeated, rng)
            elif roll < self.p + self.q:
                self._rewire_edges(graph, repeated, rng)
            else:
                targets = preferential_targets(repeated, self.m, rng, exclude=next_node)
                for target in targets:
                    graph.add_edge(next_node, target)
                    repeated.extend((next_node, target))
                next_node += 1
        if next_node < n:
            raise GenerationError("AB growth stalled before reaching target size")
        return graph

    def _add_internal_edges(self, graph: Graph, repeated: List[int], rng) -> None:
        """Move 1: m new internal edges, uniform source → preferential target."""
        nodes = list(graph.nodes())
        for _ in range(self.m):
            source = nodes[rng.randrange(len(nodes))]
            for _ in range(20):  # bounded retries when the draw is invalid
                target = repeated[rng.randrange(len(repeated))]
                if target != source and not graph.has_edge(source, target):
                    graph.add_edge(source, target)
                    repeated.extend((source, target))
                    break

    def _rewire_edges(self, graph: Graph, repeated: List[int], rng) -> None:
        """Move 2: m rewires — detach a random endpoint pair, reattach the
        kept endpoint preferentially."""
        edges = list(graph.edges())
        if not edges:
            return
        for _ in range(self.m):
            u, v = edges[rng.randrange(len(edges))]
            if not graph.has_edge(u, v):
                continue  # already rewired away this round
            keep, drop = (u, v) if rng.random() < 0.5 else (v, u)
            if graph.degree(drop) <= 1:
                continue  # avoid disconnecting leaves
            for _ in range(20):
                target = repeated[rng.randrange(len(repeated))]
                if target not in (keep, drop) and not graph.has_edge(keep, target):
                    graph.remove_edge(keep, drop)
                    graph.add_edge(keep, target)
                    self._swap_endpoint(repeated, drop, target)
                    break

    @staticmethod
    def _swap_endpoint(repeated: List[int], old: int, new: int) -> None:
        """Replace one occurrence of *old* with *new* in the endpoint list."""
        idx = repeated.index(old)
        repeated[idx] = new
