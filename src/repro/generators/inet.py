"""Inet-3.0-style structural generator (Jin, Chen & Jamin 2000).

Inet observed that the AS map is roughly 30% degree-1 nodes while the rest
follow a power law, and that naive stub matching leaves the graph shattered.
Its recipe, reproduced here:

1. assign degrees — a fixed fraction gets degree 1, the remainder is drawn
   from a power law with minimum degree 2;
2. build a spanning tree over the degree ≥ 2 nodes, attaching each node to
   an already-connected one with probability proportional to its target
   degree (so hubs sit near the center);
3. attach every degree-1 node to a connected node with free stubs,
   preferentially by remaining capacity;
4. resolve remaining free stubs pairwise, always starting from the node
   with the most unfilled stubs, matching it to the highest-capacity
   non-neighbor.

The output is connected by construction and keeps a heavy tail, but — like
PLRG — carries no growth-induced correlations, which is its documented
signature in the comparison table.
"""

from __future__ import annotations

import heapq
from bisect import insort
from typing import List

from ..graph.graph import Graph
from ..stats.powerlaw import sample_discrete_powerlaw
from ..stats.rng import SeedLike, make_rng, spawn_seed
from ..stats.sampling import FenwickSampler
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["InetGenerator"]


class InetGenerator(TopologyGenerator):
    """Inet-style generator with degree-1 fraction and power-law core.

    *engine* selects the stub-resolution kernel (see
    :mod:`repro.generators.engine`): the greedy matching of step 4 is
    deterministic, and the vector path replays its exact selection order
    (largest remaining capacity first, smallest id on ties) from free-count
    buckets instead of a lazily-invalidated heap — same seed, same graph,
    without the heap churn that dominates large runs.
    """

    name = "inet"

    def __init__(
        self,
        gamma: float = 2.2,
        degree_one_fraction: float = 0.3,
        k_max_fraction: float = 0.3,
        engine: str = "auto",
    ):
        if gamma <= 1:
            raise ValueError("gamma must exceed 1")
        if not 0 <= degree_one_fraction < 1:
            raise ValueError("degree_one_fraction must be in [0, 1)")
        if not 0 < k_max_fraction <= 1:
            raise ValueError("k_max_fraction must be in (0, 1]")
        self.gamma = gamma
        self.degree_one_fraction = degree_one_fraction
        self.k_max_fraction = k_max_fraction
        self.engine = engine

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Build an Inet-style topology with exactly *n* nodes."""
        _validate_size(n, minimum=4)
        rng = make_rng(seed)
        n_leaf = int(n * self.degree_one_fraction)
        n_core = n - n_leaf
        if n_core < 2:
            raise GenerationError("too few core nodes; lower degree_one_fraction")
        k_max = max(3, int(n * self.k_max_fraction))
        core_degrees = sample_discrete_powerlaw(
            self.gamma, n_core, x_min=2, x_max=k_max, seed=spawn_seed(rng)
        )
        targets: List[int] = core_degrees + [1] * n_leaf

        graph = Graph(name=self.name)
        graph.add_nodes(range(n))
        free = list(targets)

        # Step 2 — spanning tree over core nodes, weighted by target degree.
        order = list(range(n_core))
        rng.shuffle(order)
        in_tree = FenwickSampler(seed=rng)
        tree_members: List[int] = []
        for position, node in enumerate(order):
            if position == 0:
                in_tree.append(float(targets[node]))
                tree_members.append(node)
                continue
            # Resample while the chosen anchor has no free stubs.
            anchor_idx = in_tree.sample()
            for _ in range(50):
                if free[tree_members[anchor_idx]] > 0:
                    break
                anchor_idx = in_tree.sample()
            anchor = tree_members[anchor_idx]
            graph.add_edge(node, anchor)
            free[node] -= 1
            free[anchor] -= 1
            # Weight by *remaining* attractiveness; floor at 1 so the tree
            # can always extend even if a hub fills up early.
            in_tree.update(anchor_idx, float(max(free[anchor], 1)))
            in_tree.append(float(max(free[node], 1)))
            tree_members.append(node)

        # Step 3 — hang the degree-1 leaves off capacity-weighted cores.
        capacity = FenwickSampler(
            (float(max(free[c], 0)) for c in range(n_core)), seed=rng
        )
        for leaf in range(n_core, n):
            if capacity.total <= 0:
                # Every core stub is spent: attach uniformly so the graph
                # stays connected (degrees exceed targets slightly).
                anchor = rng.randrange(n_core)
            else:
                anchor = capacity.sample()
                capacity.add(anchor, -1.0)
                free[anchor] -= 1
            graph.add_edge(leaf, anchor)
            free[leaf] -= 1

        # Step 4 — greedy stub resolution, biggest remaining first.
        engine = self.resolve_engine(n)
        with self.trace_phase("resolve", n=n, engine=engine):
            if engine == "vector":
                self._resolve_stubs_buckets(graph, free, n_core)
            else:
                self._resolve_stubs_heap(graph, free, n_core)
        return graph

    @staticmethod
    def _resolve_stubs_heap(graph: Graph, free: List[int], n_core: int) -> None:
        """Reference resolution: lazily-invalidated max-heap."""
        heap = [(-free[v], v) for v in range(n_core) if free[v] > 0]
        heapq.heapify(heap)
        while len(heap) > 1:
            neg, u = heapq.heappop(heap)
            if free[u] != -neg:
                continue  # stale entry
            # Find the highest-capacity partner u is not already linked to.
            partner = None
            rest = []
            while heap:
                cand_neg, cand = heapq.heappop(heap)
                if free[cand] != -cand_neg:
                    continue
                if not graph.has_edge(u, cand):
                    partner = cand
                    break
                rest.append((cand_neg, cand))
            for item in rest:
                heapq.heappush(heap, item)
            if partner is None:
                break  # u is linked to every remaining candidate
            graph.add_edge(u, partner)
            free[u] -= 1
            free[partner] -= 1
            if free[u] > 0:
                heapq.heappush(heap, (-free[u], u))
            if free[partner] > 0:
                heapq.heappush(heap, (-free[partner], partner))

    @staticmethod
    def _resolve_stubs_buckets(graph: Graph, free: List[int], n_core: int) -> None:
        """Exact replay of the heap greedy from free-count buckets.

        ``buckets[f]`` holds (sorted) the nodes whose remaining capacity is
        exactly *f*, so "largest free first, smallest id on ties" is a
        descending bucket walk with no stale entries to churn through.
        Capacities only decrease, hence the max-bucket pointer only
        descends.  Produces the identical edge set to the heap version.
        """
        max_free = 0
        buckets: dict = {}
        live = 0
        for v in range(n_core):
            if free[v] > 0:
                buckets.setdefault(free[v], []).append(v)
                live += 1
                if free[v] > max_free:
                    max_free = free[v]
        for bucket in buckets.values():
            bucket.sort()

        def take(node: int, f: int) -> None:
            bucket = buckets[f]
            bucket.remove(node)
            new_f = f - 1
            if new_f > 0:
                insort(buckets.setdefault(new_f, []), node)

        while live > 1:
            while max_free > 0 and not buckets.get(max_free):
                max_free -= 1
            if max_free <= 0:
                break
            u = buckets[max_free][0]
            adj_u = graph.neighbor_weights(u)
            partner = None
            partner_f = 0
            f = max_free
            while f > 0:
                for cand in buckets.get(f, ()):
                    if cand != u and cand not in adj_u:
                        partner = cand
                        partner_f = f
                        break
                if partner is not None:
                    break
                f -= 1
            if partner is None:
                break  # u is linked to every remaining candidate
            u_f = max_free
            take(u, u_f)
            take(partner, partner_f)
            graph.add_edge(u, partner)
            free[u] -= 1
            free[partner] -= 1
            live -= (free[u] == 0) + (free[partner] == 0)
