"""Generator framework.

Every topology model in the suite subclasses :class:`TopologyGenerator`:
parameters are fixed at construction, and :meth:`generate` produces a
:class:`repro.graph.Graph` of the requested size from a seed.  The split
matters for the harnesses — one configured generator is swept across sizes
and seeds without re-validating parameters each time.

Subclasses register themselves with a class-level ``name`` so the registry
(:mod:`repro.core.registry`) and CLI can instantiate them by string.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from ..graph.graph import Graph
from ..stats.rng import SeedLike

__all__ = ["TopologyGenerator", "GenerationError"]


class GenerationError(RuntimeError):
    """A generator could not produce a valid topology with its parameters
    (e.g. a degree sequence with an odd sum, or a size below the seed
    clique)."""


class TopologyGenerator(abc.ABC):
    """Abstract base for all topology generators.

    Subclasses must set the class attribute ``name`` (unique, kebab-case)
    and implement :meth:`generate`.  ``params()`` reports the configured
    parameters for experiment provenance.
    """

    #: Unique registry name, e.g. ``"barabasi-albert"``.
    name: str = ""

    @abc.abstractmethod
    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Build a topology with (approximately) *n* nodes.

        Growth models hit *n* exactly; structural models may deviate by a
        few nodes after cleanup (multi-edge collapse, component extraction)
        and say so in their docstring.
        """

    def params(self) -> Dict[str, Any]:
        """Configured parameters (public attributes), for provenance."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }

    def describe(self) -> str:
        """Human-readable one-liner: name plus parameters."""
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{self.name}({rendered})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


def _validate_size(n: int, minimum: int = 1) -> None:
    """Shared size check for generate() implementations."""
    if n < minimum:
        raise GenerationError(f"n must be >= {minimum}, got {n}")
