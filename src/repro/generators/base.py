"""Generator framework.

Every topology model in the suite subclasses :class:`TopologyGenerator`:
parameters are fixed at construction, and :meth:`generate` produces a
:class:`repro.graph.Graph` of the requested size from a seed.  The split
matters for the harnesses — one configured generator is swept across sizes
and seeds without re-validating parameters each time.

Subclasses register themselves with a class-level ``name`` so the registry
(:mod:`repro.core.registry`) and CLI can instantiate them by string.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Optional

from ..graph.graph import Graph
from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer
from ..stats.rng import SeedLike
from .engine import (
    AUTO_VECTOR_THRESHOLD,
    ENGINES,
    REPRO_ENGINE_ENV,
    resolve_engine,
)

__all__ = [
    "TopologyGenerator",
    "GenerationError",
    "ENGINES",
    "AUTO_VECTOR_THRESHOLD",
    "REPRO_ENGINE_ENV",
    "resolve_engine",
]


class GenerationError(RuntimeError):
    """A generator could not produce a valid topology with its parameters
    (e.g. a degree sequence with an odd sum, or a size below the seed
    clique)."""


class TopologyGenerator(abc.ABC):
    """Abstract base for all topology generators.

    Subclasses must set the class attribute ``name`` (unique, kebab-case)
    and implement :meth:`generate`.  ``params()`` reports the configured
    parameters for experiment provenance.
    """

    #: Unique registry name, e.g. ``"barabasi-albert"``.
    name: str = ""

    #: True when the vector engine cannot replay the python engine's draw
    #: order (it aggregates draws), so the two engines produce different —
    #: distributionally equivalent — graphs for the same seed.  The
    #: resolved engine then joins the generator's battery cache identity
    #: (see :meth:`cache_params`); draw-order-preserving generators keep
    #: engine out of the key because both engines build the same graph.
    engine_sensitive: bool = False

    @property
    def engine(self) -> str:
        """Growth-kernel engine: ``auto`` | ``python`` | ``vector``.

        Stored outside :meth:`params` (an underscore attribute behind this
        property), so selecting an engine never perturbs provenance or the
        cache/seed identity of draw-order-preserving generators.
        """
        return getattr(self, "_engine", "auto")

    @engine.setter
    def engine(self, value: str) -> None:
        if value not in ENGINES:
            choices = ", ".join(ENGINES)
            raise ValueError(f"unknown engine {value!r}; choose one of: {choices}")
        self._engine = value

    def resolve_engine(self, n: int) -> str:
        """The engine a generate(*n*) call will run on (``python``/``vector``)."""
        return resolve_engine(self.engine, n)

    def cache_params(self, n: int) -> Dict[str, Any]:
        """Parameters that identify a generate(*n*) output for caching.

        Equal to :meth:`params` for draw-order-preserving generators; for
        ``engine_sensitive`` ones the resolved engine is added, so battery
        cells computed by different engines occupy different cache cells.
        """
        params = self.params()
        if self.engine_sensitive:
            params["engine"] = self.resolve_engine(n)
        return params

    @abc.abstractmethod
    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Build a topology with (approximately) *n* nodes.

        Growth models hit *n* exactly; structural models may deviate by a
        few nodes after cleanup (multi-edge collapse, component extraction)
        and say so in their docstring.
        """

    def generate_to_store(
        self,
        n: int,
        path,
        seed: SeedLike = None,
        checkpoint_every: Optional[int] = None,
        snapshot: bool = True,
    ):
        """Grow into a disk-backed store with checkpointed ingestion.

        Delegates to :func:`repro.store.checkpoint.grow_to_store`: the
        store at *path* is flushed every ``checkpoint_every`` nodes (the
        store's default when None), an interrupted run resumes from the
        last committed chunk, and a complete store is reused without
        regenerating.  Returns the :class:`~repro.store.checkpoint.
        GrowthReport`.
        """
        from ..store.checkpoint import DEFAULT_CHECKPOINT_EVERY, grow_to_store

        if checkpoint_every is None:
            checkpoint_every = DEFAULT_CHECKPOINT_EVERY
        return grow_to_store(
            self,
            n,
            path,
            seed=seed,
            checkpoint_every=checkpoint_every,
            snapshot=snapshot,
        )

    def trace_phase(self, phase: str, **attrs: Any):
        """A span context for one generation phase (seed, growth, rewire …).

        Emits ``generator.<phase>`` into the ambient tracer with the model
        name attached; a shared no-op when tracing is disabled, so growth
        loops can bracket their phases unconditionally.  Use at *phase*
        granularity (a handful of spans per generate call), never once per
        growth step.
        """
        return get_tracer().span(
            f"generator.{phase}",
            model=self.name or type(self).__name__,
            **attrs,
        )

    def count_steps(self, steps: int) -> None:
        """Report *steps* growth-loop iterations to the ambient metrics
        registry (``generator.steps``).  Called once per generate with the
        batch total — one counter bump, not one per step."""
        if steps:
            get_registry().counter("generator.steps").inc(steps)

    def params(self) -> Dict[str, Any]:
        """Configured parameters (public attributes), for provenance."""
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_")
        }

    def describe(self) -> str:
        """Human-readable one-liner: name plus parameters."""
        rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{self.name}({rendered})"

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


def _validate_size(n: int, minimum: int = 1) -> None:
    """Shared size check for generate() implementations."""
    if n < minimum:
        raise GenerationError(f"n must be >= {minimum}, got {n}")
