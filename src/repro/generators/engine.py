"""Engine selection for the generator layer.

Mirrors the metric kernels' ``backend=`` contract (:mod:`repro.graph.csr`)
one layer up: every vectorizable generator takes an ``engine`` argument —

* ``"python"`` — the original scalar growth loop, the reference
  implementation whose draw sequence is the seed contract;
* ``"vector"`` — batch growth kernels: attachment targets drawn in blocks
  from precomputed kernel arrays (cumulative-weight ``searchsorted``,
  endpoint pools), edge probabilities evaluated over pairwise-distance
  blocks, and edges committed through :meth:`repro.graph.graph.Graph.
  add_edges` bulk inserts;
* ``"auto"`` — consult the ``REPRO_ENGINE`` environment variable, then
  pick ``vector`` at or above :data:`AUTO_VECTOR_THRESHOLD` nodes (batch
  setup costs more than it saves on small graphs).

Determinism contract: generators whose vector kernels replay the python
engine's draw order bit-identically (``engine_sensitive = False``) produce
the *same graph* for the same seed on either engine, asserted by
fingerprint tests.  Generators whose vector kernels aggregate draws
(``engine_sensitive = True`` — Serrano's batched pair matching, the
preference models' batch rejection sampling) produce *distributionally
equivalent* graphs, gated by KS/band tests, and the resolved engine joins
their battery cache key so cells computed by different engines never
collide.
"""

from __future__ import annotations

import os

__all__ = [
    "ENGINES",
    "AUTO_VECTOR_THRESHOLD",
    "REPRO_ENGINE_ENV",
    "resolve_engine",
]

#: Accepted values for every generator's ``engine`` parameter.
ENGINES = ("auto", "python", "vector")

#: ``engine="auto"`` picks the vector path at or above this many nodes.
#: Chosen above every size the tier-1 suite generates (≤ 5 000), so the
#: default test surface keeps exercising the reference loops, while
#: full-scale runs (the 11 000-node 2001 AS map) flip to the fast path.
AUTO_VECTOR_THRESHOLD = 6000

#: Environment variable consulted by ``engine="auto"`` (values: ``python``,
#: ``vector``, or ``auto``); explicit engine arguments always override it.
REPRO_ENGINE_ENV = "REPRO_ENGINE"


def resolve_engine(engine: str = "auto", size: int = 0) -> str:
    """Resolve an ``engine`` argument to ``"python"`` or ``"vector"``.

    Explicit choices pass through (after validation).  ``"auto"`` defers
    first to the ``REPRO_ENGINE`` environment variable — which lets CI
    force the fast path across an unmodified test suite — and then to the
    size threshold: vector at or above :data:`AUTO_VECTOR_THRESHOLD`.
    """
    if engine not in ENGINES:
        choices = ", ".join(ENGINES)
        raise ValueError(f"unknown engine {engine!r}; choose one of: {choices}")
    if engine != "auto":
        return engine
    env = os.environ.get(REPRO_ENGINE_ENV, "").strip().lower()
    if env in ("python", "vector"):
        return env
    if env not in ("", "auto"):
        choices = ", ".join(ENGINES)
        raise ValueError(
            f"invalid {REPRO_ENGINE_ENV}={env!r}; choose one of: {choices}"
        )
    return "vector" if size >= AUTO_VECTOR_THRESHOLD else "python"
