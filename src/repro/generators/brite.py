"""BRITE-style generator: incremental growth + geometry + preference.

BRITE's AS-level mode combines the three mechanisms its predecessors used
separately: nodes are *placed* on a plane (uniform or skewed like Waxman),
*arrive incrementally* (like BA), and pick targets by **preferential
attachment modulated by a Waxman distance kernel**:

    P(new → j) ∝ k_j * exp(-d(new, j) / (alpha * L))

With ``geometry=False`` the kernel drops out and the model reduces to BA;
with a heavy distance penalty it approaches a geometric nearest-neighbor
net.  This is the classic "knob between Waxman and Barabási" topology
generator.
"""

from __future__ import annotations

import math

from ..geometry.fractal import FractalBoxSet
from ..geometry.plane import Point
from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import weighted_choice
from .base import TopologyGenerator, _validate_size

__all__ = ["BriteGenerator"]


class BriteGenerator(TopologyGenerator):
    """Incremental preferential + distance-kernel growth on a plane.

    *m* links per arriving node; *alpha* the Waxman decay length (relative
    to the plane diagonal); *fractal_dimension* < 2 places nodes on a
    clustered fractal support (routers cluster geographically), 2.0 means
    uniform placement.
    """

    name = "brite"

    def __init__(
        self,
        m: int = 2,
        alpha: float = 0.25,
        geometry: bool = True,
        fractal_dimension: float = 2.0,
    ):
        if m < 1:
            raise ValueError("m must be >= 1")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < fractal_dimension <= 2.0:
            raise ValueError("fractal_dimension must be in (0, 2]")
        self.m = m
        self.alpha = alpha
        self.geometry = geometry
        self.fractal_dimension = fractal_dimension

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a BRITE-style network to exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        rng = make_rng(seed)
        support = FractalBoxSet(
            dimension=self.fractal_dimension, levels=8, seed=rng
        )
        positions = [support.sample_point() for _ in range(n)]
        scale = self.alpha * math.sqrt(2.0)

        graph = Graph(name=self.name)
        degrees = [0] * n
        for i in range(seed_size):
            j = (i + 1) % seed_size
            graph.add_edge(i, j)
        for i in range(seed_size):
            degrees[i] = graph.degree(i)

        for new in range(seed_size, n):
            weights = []
            for candidate in range(new):
                w = float(degrees[candidate])
                if self.geometry:
                    d = self._distance(positions[new], positions[candidate])
                    w *= math.exp(-d / scale)
                weights.append(w)
            count = min(self.m, new)
            chosen: set = set()
            guard = 0
            while len(chosen) < count and guard < 50 * count:
                guard += 1
                chosen.add(weighted_choice(weights, rng))
            for target in chosen:
                graph.add_edge(new, target)
                degrees[target] += 1
            degrees[new] = graph.degree(new)
        return graph

    @staticmethod
    def _distance(a: Point, b: Point) -> float:
        return math.hypot(a.x - b.x, a.y - b.y)
