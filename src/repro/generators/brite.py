"""BRITE-style generator: incremental growth + geometry + preference.

BRITE's AS-level mode combines the three mechanisms its predecessors used
separately: nodes are *placed* on a plane (uniform or skewed like Waxman),
*arrive incrementally* (like BA), and pick targets by **preferential
attachment modulated by a Waxman distance kernel**:

    P(new → j) ∝ k_j * exp(-d(new, j) / (alpha * L))

With ``geometry=False`` the kernel drops out and the model reduces to BA;
with a heavy distance penalty it approaches a geometric nearest-neighbor
net.  This is the classic "knob between Waxman and Barabási" topology
generator.
"""

from __future__ import annotations

import math

import numpy as np

from ..geometry.fractal import FractalBoxSet
from ..geometry.plane import Point
from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import weighted_choice
from .base import TopologyGenerator, _validate_size

__all__ = ["BriteGenerator"]


class BriteGenerator(TopologyGenerator):
    """Incremental preferential + distance-kernel growth on a plane.

    *m* links per arriving node; *alpha* the Waxman decay length (relative
    to the plane diagonal); *fractal_dimension* < 2 places nodes on a
    clustered fractal support (routers cluster geographically), 2.0 means
    uniform placement.

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path evaluates each arrival's degree x distance-kernel
    weights as one array expression and replays :func:`weighted_choice` as
    a ``searchsorted`` over the cumulative weights, consuming the same
    seeded uniforms — same seed, same graph.
    """

    name = "brite"

    def __init__(
        self,
        m: int = 2,
        alpha: float = 0.25,
        geometry: bool = True,
        fractal_dimension: float = 2.0,
        engine: str = "auto",
    ):
        if m < 1:
            raise ValueError("m must be >= 1")
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if not 0 < fractal_dimension <= 2.0:
            raise ValueError("fractal_dimension must be in (0, 2]")
        self.m = m
        self.alpha = alpha
        self.geometry = geometry
        self.fractal_dimension = fractal_dimension
        self.engine = engine

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a BRITE-style network to exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        engine = self.resolve_engine(n)
        rng = make_rng(seed)
        support = FractalBoxSet(
            dimension=self.fractal_dimension, levels=8, seed=rng
        )
        positions = [support.sample_point() for _ in range(n)]
        scale = self.alpha * math.sqrt(2.0)

        graph = Graph(name=self.name)
        degrees = [0] * n
        for i in range(seed_size):
            j = (i + 1) % seed_size
            graph.add_edge(i, j)
        for i in range(seed_size):
            degrees[i] = graph.degree(i)

        with self.trace_phase("growth", n=n, engine=engine):
            if engine == "vector":
                self._grow_vector(graph, degrees, positions, scale, seed_size, n, rng)
            else:
                self._grow_python(graph, degrees, positions, scale, seed_size, n, rng)
            self.count_steps(n - seed_size)
        return graph

    def _grow_python(
        self, graph, degrees, positions, scale, seed_size, n, rng
    ) -> None:
        """Reference loop: per-candidate weights, linear-scan draws."""
        for new in range(seed_size, n):
            weights = []
            for candidate in range(new):
                w = float(degrees[candidate])
                if self.geometry:
                    d = self._distance(positions[new], positions[candidate])
                    w *= math.exp(-d / scale)
                weights.append(w)
            count = min(self.m, new)
            chosen: set = set()
            guard = 0
            while len(chosen) < count and guard < 50 * count:
                guard += 1
                chosen.add(weighted_choice(weights, rng))
            for target in chosen:
                graph.add_edge(new, target)
                degrees[target] += 1
            degrees[new] = graph.degree(new)

    def _grow_vector(
        self, graph, degrees, positions, scale, seed_size, n, rng
    ) -> None:
        """Array path: one weight vector + cumsum per arrival.

        Each draw spends one ``rng.random()`` exactly like the linear scan
        (``np.cumsum`` accumulates left-to-right like the running sum, and
        ``searchsorted(..., side="right")`` finds the same first crossing),
        so the draw sequence — and the resulting graph — is identical.
        """
        deg = np.zeros(n, dtype=np.float64)
        deg[:seed_size] = degrees[:seed_size]
        xs = np.fromiter((p.x for p in positions), dtype=np.float64, count=n)
        ys = np.fromiter((p.y for p in positions), dtype=np.float64, count=n)
        edges = []
        for new in range(seed_size, n):
            weights = deg[:new]
            if self.geometry:
                d = np.hypot(xs[:new] - xs[new], ys[:new] - ys[new])
                weights = weights * np.exp(-d / scale)
            cum = np.cumsum(weights)
            total = float(cum[-1])
            if total <= 0:
                raise ValueError("total weight must be positive")
            last_positive = int(np.nonzero(weights > 0)[0][-1])
            count = min(self.m, new)
            chosen: set = set()
            guard = 0
            while len(chosen) < count and guard < 50 * count:
                guard += 1
                target = rng.random() * total
                index = int(np.searchsorted(cum, target, side="right"))
                chosen.add(last_positive if index >= new else index)
            for target in chosen:
                edges.append((new, target))
                deg[target] += 1
            deg[new] = len(chosen)
        graph.add_edges(edges)
        for node, value in enumerate(deg[:n].astype(np.int64).tolist()):
            degrees[node] = value

    @staticmethod
    def _distance(a: Point, b: Point) -> float:
        return math.hypot(a.x - b.x, a.y - b.y)
