"""Two-level (AS → router) topology expansion.

The AS-level and router-level internet are different graphs; top-down
generators (BRITE's hierarchical mode, GT-ITM's intent) build the router
level by expanding each AS of an AS-level topology into a small router
pocket and stitching pockets along AS adjacencies through border routers.

:class:`TwoLevelGenerator` wraps any AS-level generator from the suite:

* each AS becomes a connected router pocket (ring + chords) whose size
  scales with the AS's degree — big transit ASes run big backbones;
* every AS adjacency becomes a physical link between randomly chosen
  border routers of the two pockets (one link per unit of edge weight,
  so provisioned bandwidth turns into parallel physical links).

Router ids are ``(as_id, index)`` tuples, so the AS ownership of every
router stays readable in results.
"""

from __future__ import annotations

from typing import Tuple

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng, spawn_seed
from .base import TopologyGenerator, _validate_size

__all__ = ["TwoLevelGenerator"]


class TwoLevelGenerator(TopologyGenerator):
    """Expand an AS-level generator into a router-level topology.

    *as_generator* — any :class:`TopologyGenerator` for the AS level;
    *routers_per_degree* — pocket size is ``base_routers + round(k *
    routers_per_degree)`` for an AS of degree k, capped by *max_routers*;
    *chord_fraction* — extra intra-pocket chords per router beyond the ring.

    ``generate(n)`` interprets *n* as the **AS count**; the router count is
    reported by the returned graph.
    """

    name = "two-level"

    def __init__(
        self,
        as_generator: TopologyGenerator,
        base_routers: int = 3,
        routers_per_degree: float = 0.5,
        max_routers: int = 64,
        chord_fraction: float = 0.3,
    ):
        if base_routers < 1:
            raise ValueError("base_routers must be >= 1")
        if routers_per_degree < 0:
            raise ValueError("routers_per_degree must be non-negative")
        if max_routers < base_routers:
            raise ValueError("max_routers must be >= base_routers")
        if chord_fraction < 0:
            raise ValueError("chord_fraction must be non-negative")
        self.base_routers = base_routers
        self.routers_per_degree = routers_per_degree
        self.max_routers = max_routers
        self.chord_fraction = chord_fraction
        self._as_generator = as_generator

    def _pocket_size(self, as_degree: int) -> int:
        size = self.base_routers + round(as_degree * self.routers_per_degree)
        return min(max(size, 1), self.max_routers)

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Build the router-level expansion of an n-AS topology."""
        _validate_size(n, minimum=2)
        rng = make_rng(seed)
        as_graph = self._as_generator.generate(n, seed=spawn_seed(rng))
        router_graph = Graph(name=f"{self.name}({self._as_generator.name})")

        pockets = {}
        for as_id in as_graph.nodes():
            size = self._pocket_size(as_graph.degree(as_id))
            routers = [(as_id, i) for i in range(size)]
            pockets[as_id] = routers
            for router in routers:
                router_graph.add_node(router)
            # Ring backbone keeps the pocket connected...
            if size > 1:
                for i in range(size):
                    router_graph.add_edge(routers[i], routers[(i + 1) % size])
            # ...plus random chords for intra-AS redundancy.
            chords = int(self.chord_fraction * size)
            for _ in range(chords):
                a = routers[rng.randrange(size)]
                b = routers[rng.randrange(size)]
                if a != b and not router_graph.has_edge(a, b):
                    router_graph.add_edge(a, b)

        for u, v, weight in as_graph.weighted_edges():
            # One physical link per provisioned bandwidth unit, each
            # between (possibly different) border routers.
            for _ in range(max(int(round(weight)), 1)):
                border_u = pockets[u][rng.randrange(len(pockets[u]))]
                border_v = pockets[v][rng.randrange(len(pockets[v]))]
                router_graph.add_edge(border_u, border_v)
        return router_graph
