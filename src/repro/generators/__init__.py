"""The topology generator suite — every model family the internet-modeling
literature compares, behind one :class:`TopologyGenerator` interface."""

from .albert_barabasi import AlbertBarabasiGenerator
from .barabasi_albert import BarabasiAlbertGenerator, preferential_targets
from .base import GenerationError, TopologyGenerator
from .bianconi_barabasi import BianconiBarabasiGenerator
from .brite import BriteGenerator
from .dk import Dk2Generator, dk2_rewired, joint_degree_matrix
from .erdos_renyi import ErdosRenyiGnm, ErdosRenyiGnp
from .glp import GlpGenerator
from .gtitm import TransitStubGenerator
from .hierarchical import TwoLevelGenerator
from .hot import HotGenerator
from .inet import InetGenerator
from .pfp import PfpGenerator
from .plrg import PlrgGenerator, configuration_model
from .random_reference import RandomReferenceGenerator, rewired_reference
from .serrano import SerranoGenerator, SerranoRun
from .watts_strogatz import WattsStrogatzGenerator
from .waxman import WaxmanGenerator

__all__ = [
    "TopologyGenerator",
    "GenerationError",
    "ErdosRenyiGnp",
    "ErdosRenyiGnm",
    "WaxmanGenerator",
    "BarabasiAlbertGenerator",
    "preferential_targets",
    "AlbertBarabasiGenerator",
    "GlpGenerator",
    "PlrgGenerator",
    "configuration_model",
    "InetGenerator",
    "PfpGenerator",
    "HotGenerator",
    "TransitStubGenerator",
    "SerranoGenerator",
    "SerranoRun",
    "RandomReferenceGenerator",
    "rewired_reference",
    "WattsStrogatzGenerator",
    "BianconiBarabasiGenerator",
    "BriteGenerator",
    "Dk2Generator",
    "dk2_rewired",
    "joint_degree_matrix",
    "TwoLevelGenerator",
]
