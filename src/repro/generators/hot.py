"""Heuristically Optimized Trade-offs (Fabrikant–Koutsoupias–Papadimitriou).

The optimization-driven answer to preferential attachment: nodes arrive at
random positions and connect to the existing node minimizing

    alpha * d(i, j) + h(j)

— a trade-off between last-mile cost (Euclidean distance) and operational
centrality (h, the hop count to the root).  FKP proved the resulting tree's
degree distribution is heavy-tailed for intermediate ``alpha`` (between
O(sqrt(n)) and a constant), giving power laws *without* any rich-get-richer
rule.  ``extra_links`` optionally adds redundant next-best links per node,
since a pure tree breaks most topology metrics (clustering is identically
zero).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..geometry.plane import Plane
from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_numpy_rng, make_rng
from .base import TopologyGenerator, _validate_size

__all__ = ["HotGenerator"]


class HotGenerator(TopologyGenerator):
    """FKP tree growth with optional redundancy links.

    *alpha* is the distance weight: FKP showed heavy tails for alpha between
    ~4 and O(sqrt(n)).  Pass ``alpha=None`` (default) to use
    ``sqrt(n) / 4`` at generation time, which sits inside the heavy-tail
    window across practical sizes.  *extra_links* adds that many additional
    next-best candidates per arriving node, turning the tree into a mesh.
    """

    name = "hot"

    def __init__(self, alpha: Optional[float] = None, extra_links: int = 0):
        if alpha is not None and alpha < 0:
            raise ValueError("alpha must be non-negative")
        if extra_links < 0:
            raise ValueError("extra_links must be non-negative")
        self.alpha = alpha
        self.extra_links = extra_links

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow an FKP network to exactly *n* nodes."""
        _validate_size(n, minimum=2)
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        alpha = self.alpha if self.alpha is not None else float(np.sqrt(n)) / 4.0

        xs = np_rng.random(n)
        ys = np_rng.random(n)
        hops = np.zeros(n)  # h(j): hop distance to the root, node 0
        graph = Graph(name=self.name)
        graph.add_node(0)
        for new in range(1, n):
            dx = xs[:new] - xs[new]
            dy = ys[:new] - ys[new]
            cost = alpha * np.hypot(dx, dy) + hops[:new]
            order = np.argsort(cost)
            parent = int(order[0])
            graph.add_edge(new, parent)
            hops[new] = hops[parent] + 1
            # Redundancy: next-best distinct candidates, if requested.
            for extra in order[1 : 1 + self.extra_links]:
                graph.add_edge(new, int(extra))
        return graph
