"""Erdős–Rényi random graphs — the null baseline.

G(n, p) and G(n, m) have Poisson degree tails, vanishing clustering and no
correlations; every structural claim about an internet model is implicitly a
claim of distance from this baseline, so the comparison table includes it.
"""

from __future__ import annotations

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["ErdosRenyiGnp", "ErdosRenyiGnm"]


class ErdosRenyiGnp(TopologyGenerator):
    """G(n, p): every pair is an edge independently with probability *p*.

    Uses geometric edge skipping (Batagelj–Brandes), O(n + m) expected, so
    sparse graphs cost far less than the naive O(n²) double loop.
    """

    name = "erdos-renyi-gnp"

    def __init__(self, p: float = 0.001):
        if not 0 <= p <= 1:
            raise ValueError("p must be in [0, 1]")
        self.p = p

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Sample one G(n, p) instance."""
        _validate_size(n)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        graph.add_nodes(range(n))
        if self.p <= 0:
            return graph
        if self.p >= 1:
            for u in range(n):
                for v in range(u + 1, n):
                    graph.add_edge(u, v)
            return graph
        import math

        log_q = math.log(1.0 - self.p)
        v = 1
        w = -1
        while v < n:
            # Skip ahead by a geometric gap instead of testing every pair.
            w += 1 + int(math.log(1.0 - rng.random()) / log_q)
            while w >= v and v < n:
                w -= v
                v += 1
            if v < n:
                graph.add_edge(v, w)
        return graph


class ErdosRenyiGnm(TopologyGenerator):
    """G(n, m): exactly *m* distinct edges uniform over all pairs.

    Sampling is by rejection, which stays efficient as long as the graph is
    sparse (m well below n²/2, always true for internet-like densities).
    """

    name = "erdos-renyi-gnm"

    def __init__(self, m: int = 3000):
        if m < 0:
            raise ValueError("m must be non-negative")
        self.m = m

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Sample one G(n, m) instance."""
        _validate_size(n)
        max_edges = n * (n - 1) // 2
        if self.m > max_edges:
            raise GenerationError(f"m={self.m} exceeds the {max_edges} possible edges")
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        graph.add_nodes(range(n))
        while graph.num_edges < self.m:
            u = rng.randrange(n)
            v = rng.randrange(n)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
        return graph
