"""Transit–stub hierarchy (GT-ITM-style, Zegura–Calvert–Bhattacharjee).

Before measurement papers showed heavy tails, the structural orthodoxy was
explicit hierarchy: a core of *transit* domains, each transit node serving
several *stub* domains.  GT-ITM graphs have realistic routing hierarchy but
nearly homogeneous degrees — the comparison table keeps the model to show
what pure hierarchy does and does not buy.

Construction here:

1. ``transit_domains`` domains, each an Erdős–Rényi graph of
   ``transit_size`` nodes (stitched connected), their domains linked by a
   random tree plus ``extra_transit_links`` shortcuts;
2. every transit node hosts ``stubs_per_transit`` stub domains of
   ``stub_size`` ER nodes, each stub wired to its transit node;
3. ``extra_stub_links`` random stub-to-stub or stub-to-transit shortcuts.

:meth:`generate` takes the usual *n* and scales ``stub_size`` so the total
lands within rounding of *n*.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import GenerationError, TopologyGenerator, _validate_size

__all__ = ["TransitStubGenerator"]


class TransitStubGenerator(TopologyGenerator):
    """Three-level transit–stub topology.

    *engine* selects the cluster-wiring kernel (see
    :mod:`repro.generators.engine`); the vector path batches each ER
    cluster's coin flips against one uniform block and bulk-inserts the
    hits, consuming the seeded stream identically — same seed, same graph.
    """

    name = "transit-stub"

    def __init__(
        self,
        transit_domains: int = 4,
        transit_size: int = 8,
        stubs_per_transit: int = 3,
        intra_edge_prob: float = 0.5,
        stub_edge_prob: float = 0.4,
        extra_transit_links: int = 3,
        extra_stub_links_fraction: float = 0.02,
        engine: str = "auto",
    ):
        if transit_domains < 1 or transit_size < 1 or stubs_per_transit < 0:
            raise ValueError("domain counts must be positive")
        if not 0 <= intra_edge_prob <= 1 or not 0 <= stub_edge_prob <= 1:
            raise ValueError("edge probabilities must be in [0, 1]")
        self.transit_domains = transit_domains
        self.transit_size = transit_size
        self.stubs_per_transit = stubs_per_transit
        self.intra_edge_prob = intra_edge_prob
        self.stub_edge_prob = stub_edge_prob
        self.extra_transit_links = extra_transit_links
        self.extra_stub_links_fraction = extra_stub_links_fraction
        self.engine = engine

    def _stub_size_for(self, n: int) -> int:
        """Stub size that brings the node total closest to *n*."""
        transit_total = self.transit_domains * self.transit_size
        stub_domains = transit_total * self.stubs_per_transit
        if stub_domains == 0:
            if n != transit_total:
                raise GenerationError(
                    f"no stubs configured: n must equal {transit_total}"
                )
            return 0
        remaining = n - transit_total
        if remaining < stub_domains:
            raise GenerationError(
                f"n={n} too small: need >= {transit_total + stub_domains} nodes"
            )
        return max(1, round(remaining / stub_domains))

    @staticmethod
    def _er_cluster(
        graph: Graph, members: List[int], prob: float, rng, vector: bool = False
    ) -> None:
        """Wire *members* as an ER graph, then stitch to guarantee
        connectivity via a random spanning chain.

        The vector path draws the whole cluster's coin flips first (same
        calls on the same *rng*, so the stream — and therefore the graph —
        is unchanged), masks them in one numpy comparison, and commits the
        hits through :meth:`Graph.add_edges`.
        """
        if vector and len(members) > 2:
            count = len(members)
            iu, iv = np.triu_indices(count, k=1)
            uniforms = np.fromiter(
                (rng.random() for _ in range(iu.shape[0])),
                dtype=np.float64,
                count=iu.shape[0],
            )
            arr = np.asarray(members)
            hits = uniforms < prob
            graph.add_edges(
                zip(arr[iu[hits]].tolist(), arr[iv[hits]].tolist())
            )
        else:
            for i, u in enumerate(members):
                for v in members[i + 1 :]:
                    if rng.random() < prob:
                        graph.add_edge(u, v)
        shuffled = list(members)
        rng.shuffle(shuffled)
        for a, b in zip(shuffled, shuffled[1:]):
            if not graph.has_edge(a, b):
                graph.add_edge(a, b)

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Build a transit–stub topology of approximately *n* nodes
        (exact when (n - transit nodes) divides evenly across stubs)."""
        _validate_size(n, minimum=self.transit_domains * self.transit_size)
        engine = self.resolve_engine(n)
        vector = engine == "vector"
        rng = make_rng(seed)
        stub_size = self._stub_size_for(n)
        graph = Graph(name=self.name)
        next_id = 0

        transit_nodes: List[List[int]] = []
        for _ in range(self.transit_domains):
            members = list(range(next_id, next_id + self.transit_size))
            next_id += self.transit_size
            graph.add_nodes(members)
            self._er_cluster(graph, members, self.intra_edge_prob, rng, vector)
            transit_nodes.append(members)

        # Inter-domain backbone: random tree over domains + shortcuts.
        for index in range(1, len(transit_nodes)):
            other = rng.randrange(index)
            u = rng.choice(transit_nodes[index])
            v = rng.choice(transit_nodes[other])
            graph.add_edge(u, v)
        all_transit = [node for domain in transit_nodes for node in domain]
        for _ in range(self.extra_transit_links):
            u = rng.choice(all_transit)
            v = rng.choice(all_transit)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)

        stub_members_all: List[int] = []
        if stub_size > 0:
            for transit in all_transit:
                for _ in range(self.stubs_per_transit):
                    members = list(range(next_id, next_id + stub_size))
                    next_id += stub_size
                    graph.add_nodes(members)
                    if stub_size > 1:
                        self._er_cluster(
                            graph, members, self.stub_edge_prob, rng, vector
                        )
                    graph.add_edge(rng.choice(members), transit)
                    stub_members_all.extend(members)

        extra = int(self.extra_stub_links_fraction * len(stub_members_all))
        candidates = stub_members_all + all_transit
        for _ in range(extra):
            u = rng.choice(stub_members_all)
            v = rng.choice(candidates)
            if u != v and not graph.has_edge(u, v):
                graph.add_edge(u, v)
        return graph
