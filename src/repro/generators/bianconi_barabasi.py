"""Bianconi–Barabási fitness model.

Degree-driven growth where attachment weighs degree by an intrinsic,
time-invariant *fitness* η drawn once per node: ``Π(i) ∝ η_i k_i``.
This is the "fit get richer" refinement proposed for the internet: young
but well-run ASes can overtake incumbents, which plain BA forbids
(first-mover advantage is absolute there).  With a uniform fitness
distribution the degree distribution stays scale-free with a logarithmic
correction; with a single-valued distribution the model reduces exactly to
BA — a reduction the test suite exploits.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import FenwickSampler
from .base import TopologyGenerator, _validate_size

__all__ = ["BianconiBarabasiGenerator"]


class BianconiBarabasiGenerator(TopologyGenerator):
    """Fitness-weighted preferential attachment.

    *fitness* is a callable drawing one fitness from an rng (default:
    uniform on (0, 1]); *m* is the number of links per arriving node.
    """

    name = "bianconi-barabasi"

    def __init__(self, m: int = 2, fitness: Optional[Callable] = None):
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m
        self.fitness = fitness

    def _draw_fitness(self, rng) -> float:
        if self.fitness is not None:
            value = float(self.fitness(rng))
        else:
            value = 1.0 - rng.random()  # uniform on (0, 1]
        if value <= 0:
            raise ValueError("fitness must be positive")
        return value

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a fitness network to exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        sampler = FenwickSampler(seed=rng)
        fitnesses = []
        for i in range(seed_size):
            graph.add_node(i)
            fitnesses.append(self._draw_fitness(rng))
            sampler.append(0.0)
        for i in range(seed_size):
            j = (i + 1) % seed_size
            graph.add_edge(i, j)
        for i in range(seed_size):
            sampler.update(i, fitnesses[i] * graph.degree(i))

        for new in range(seed_size, n):
            count = min(self.m, len(sampler))
            targets = sampler.sample_distinct(count)
            graph.add_node(new)
            fitnesses.append(self._draw_fitness(rng))
            sampler.append(0.0)
            for target in targets:
                graph.add_edge(new, target)
                sampler.update(target, fitnesses[target] * graph.degree(target))
            sampler.update(new, fitnesses[new] * graph.degree(new))
        return graph
