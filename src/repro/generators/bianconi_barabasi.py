"""Bianconi–Barabási fitness model.

Degree-driven growth where attachment weighs degree by an intrinsic,
time-invariant *fitness* η drawn once per node: ``Π(i) ∝ η_i k_i``.
This is the "fit get richer" refinement proposed for the internet: young
but well-run ASes can overtake incumbents, which plain BA forbids
(first-mover advantage is absolute there).  With a uniform fitness
distribution the degree distribution stays scale-free with a logarithmic
correction; with a single-valued distribution the model reduces exactly to
BA — a reduction the test suite exploits.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..graph.graph import Graph
from ..stats.rng import BufferedUniforms, SeedLike, make_numpy_rng, make_rng
from ..stats.sampling import FenwickSampler
from .base import TopologyGenerator, _validate_size

__all__ = ["BianconiBarabasiGenerator"]


class BianconiBarabasiGenerator(TopologyGenerator):
    """Fitness-weighted preferential attachment.

    *fitness* is a callable drawing one fitness from an rng (default:
    uniform on (0, 1]); *m* is the number of links per arriving node.

    *engine* selects the growth kernel (see :mod:`repro.generators.engine`);
    the vector path proposes targets degree-proportionally from an endpoint
    pool and thins them to ``П ∝ η k`` by accepting with probability
    ``η/η_max`` — the same kernel sampled from a different seeded stream,
    so this generator is ``engine_sensitive``.
    """

    name = "bianconi-barabasi"
    engine_sensitive = True

    def __init__(
        self, m: int = 2, fitness: Optional[Callable] = None, engine: str = "auto"
    ):
        if m < 1:
            raise ValueError("m must be >= 1")
        self.m = m
        self.fitness = fitness
        self.engine = engine

    def _draw_fitness(self, rng) -> float:
        if self.fitness is not None:
            value = float(self.fitness(rng))
        else:
            value = 1.0 - rng.random()  # uniform on (0, 1]
        if value <= 0:
            raise ValueError("fitness must be positive")
        return value

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Grow a fitness network to exactly *n* nodes."""
        seed_size = max(self.m, 3)
        _validate_size(n, minimum=seed_size + 1)
        engine = self.resolve_engine(n)
        if engine == "vector":
            return self._generate_vector(n, seed, seed_size)
        rng = make_rng(seed)
        graph = Graph(name=self.name)
        sampler = FenwickSampler(seed=rng)
        fitnesses = []
        for i in range(seed_size):
            graph.add_node(i)
            fitnesses.append(self._draw_fitness(rng))
            sampler.append(0.0)
        for i in range(seed_size):
            j = (i + 1) % seed_size
            graph.add_edge(i, j)
        for i in range(seed_size):
            sampler.update(i, fitnesses[i] * graph.degree(i))

        with self.trace_phase("growth", n=n, engine=engine):
            for new in range(seed_size, n):
                count = min(self.m, len(sampler))
                targets = sampler.sample_distinct(count)
                graph.add_node(new)
                fitnesses.append(self._draw_fitness(rng))
                sampler.append(0.0)
                for target in targets:
                    graph.add_edge(new, target)
                    sampler.update(target, fitnesses[target] * graph.degree(target))
                sampler.update(new, fitnesses[new] * graph.degree(new))
            self.count_steps(n - seed_size)
        return graph

    def _generate_vector(self, n: int, seed: SeedLike, seed_size: int) -> Graph:
        """Pool growth: degree-proportional proposals thinned by fitness.

        Proposals come from the endpoint pool (∝ k); accepting proposal *i*
        with probability ``η_i / η_max`` leaves acceptances distributed
        ∝ η k, the BB kernel.  Draws are served from block-buffered numpy
        uniforms — per-proposal work is two list lookups — and edges commit
        through one bulk insert.  Fitness draws stay on the scalar rng so
        custom ``fitness`` callables keep working unchanged.
        """
        rng = make_rng(seed)
        np_rng = make_numpy_rng(rng.getrandbits(63))
        uniform = BufferedUniforms(np_rng).next
        m = self.m
        graph = Graph(name=self.name)
        fitness: List[float] = [self._draw_fitness(rng) for _ in range(seed_size)]
        eta_max = max(fitness)
        pool: List[int] = []
        edges: List[tuple] = []
        graph.add_nodes(range(seed_size))
        for i in range(seed_size):
            j = (i + 1) % seed_size
            edges.append((i, j))
            pool.extend((i, j))
        with self.trace_phase("growth", n=n, engine="vector"):
            for new in range(seed_size, n):
                targets: List[int] = []
                proposals = 0
                while len(targets) < m:
                    proposals += 1
                    if proposals > 200_000:
                        raise ValueError(
                            "rejection sampling failed to find distinct items"
                        )
                    cand = pool[int(uniform() * len(pool))]
                    if uniform() * eta_max > fitness[cand]:
                        continue
                    if cand not in targets:  # m is small; list scan is cheap
                        targets.append(cand)
                eta = self._draw_fitness(rng)
                fitness.append(eta)
                if eta > eta_max:
                    eta_max = eta
                for target in targets:
                    edges.append((new, target))
                    pool.extend((new, target))
            self.count_steps(n - seed_size)
        graph.add_edges(edges)
        return graph
