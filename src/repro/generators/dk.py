"""dK-series generation (Mahadevan–Krioukov–Fall–Vahdat, SIGCOMM 2006).

The dK framework generates graphs matching a template's degree
*correlations* of increasing order: 1K preserves the degree distribution
(the configuration model / Maslov–Sneppen null), 2K additionally preserves
the **joint degree matrix** — how many edges connect degree-j nodes to
degree-k nodes.  2K-graphs reproduce most scalar metrics of the AS map,
which made the dK-series the standard way to ask "which correlation order
explains this property?".

Implementation: 2K-preserving double-edge swaps.  A swap
``(a—b, c—d) → (a—d, c—b)`` leaves the JDM invariant whenever
``deg(b) = deg(d)`` (the endpoints traded between the edges have equal
degree), so rewiring within those constraints randomizes everything *above*
2K while pinning the JDM exactly.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng
from .base import TopologyGenerator

__all__ = ["joint_degree_matrix", "dk2_rewired", "Dk2Generator"]

Node = Hashable
DegreePair = Tuple[int, int]


def joint_degree_matrix(graph: Graph) -> Dict[DegreePair, int]:
    """Edge counts per unordered degree pair (j <= k).

    ``jdm[(j, k)]`` is the number of edges whose endpoint degrees are j and
    k.  This is the 2K statistic the rewiring preserves.
    """
    jdm: Dict[DegreePair, int] = {}
    for u, v in graph.edges():
        ku, kv = graph.degree(u), graph.degree(v)
        key = (min(ku, kv), max(ku, kv))
        jdm[key] = jdm.get(key, 0) + 1
    return jdm


def dk2_rewired(
    graph: Graph, swaps_per_edge: float = 10.0, seed: SeedLike = None
) -> Graph:
    """2K-preserving randomization of *graph*.

    Performs degree-matched double-edge swaps: both the degree sequence and
    the joint degree matrix of the result equal the template's exactly.
    Edge weights are reset to 1 (the null model is topological).
    """
    if swaps_per_edge < 0:
        raise ValueError("swaps_per_edge must be non-negative")
    rng = make_rng(seed)
    result = Graph(name=f"{graph.name}-2k" if graph.name else "2k")
    for node in graph.nodes():
        result.add_node(node)
    edges: List[Tuple[Node, Node]] = []
    for u, v in graph.edges():
        result.add_edge(u, v)
        edges.append((u, v))
    num_edges = len(edges)
    if num_edges < 2:
        return result
    degree = dict(result.degrees())  # degrees never change below

    target = int(swaps_per_edge * num_edges)
    budget = max(40 * target, 200)
    done = 0
    while done < target and budget > 0:
        budget -= 1
        i = rng.randrange(num_edges)
        j = rng.randrange(num_edges)
        if i == j:
            continue
        a, b = edges[i]
        c, d = edges[j]
        # Orient the second edge so b and d are the swap-traded endpoints;
        # try both orientations for a degree match.
        if degree[b] != degree[d]:
            c, d = d, c
            if degree[b] != degree[d]:
                continue
        if len({a, b, c, d}) < 4:
            continue
        if result.has_edge(a, d) or result.has_edge(c, b):
            continue
        result.remove_edge(a, b)
        result.remove_edge(c, d)
        result.add_edge(a, d)
        result.add_edge(c, b)
        edges[i] = (a, d)
        edges[j] = (c, b)
        done += 1
    return result


class Dk2Generator(TopologyGenerator):
    """Generator-protocol wrapper producing 2K-random graphs of a template.

    Like :class:`repro.generators.RandomReferenceGenerator` but preserving
    degree correlations up to second order; *n* must match the template.
    """

    name = "dk2"

    def __init__(self, template: Graph, swaps_per_edge: float = 10.0):
        self.swaps_per_edge = swaps_per_edge
        self._template = template
        # Public (so params() reports it): without a content fingerprint,
        # two generators built on different templates would be identical to
        # the battery's cache keys and seed derivation.
        self.template_fingerprint = template.fingerprint()

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Produce a fresh 2K-randomization (n must equal template size)."""
        if n != self._template.num_nodes:
            raise ValueError(
                f"template has {self._template.num_nodes} nodes; got n={n}"
            )
        return dk2_rewired(self._template, self.swaps_per_edge, seed=seed)
