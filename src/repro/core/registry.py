"""Model registry: generators by name.

The harnesses, CLI and calibration loops refer to models as strings; this
module owns the mapping.  Third-party generators can join via
:func:`register` as long as they follow the :class:`TopologyGenerator`
protocol.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Type

from ..generators.albert_barabasi import AlbertBarabasiGenerator
from ..generators.barabasi_albert import BarabasiAlbertGenerator
from ..generators.base import TopologyGenerator
from ..generators.bianconi_barabasi import BianconiBarabasiGenerator
from ..generators.brite import BriteGenerator
from ..generators.erdos_renyi import ErdosRenyiGnm, ErdosRenyiGnp
from ..generators.glp import GlpGenerator
from ..generators.gtitm import TransitStubGenerator
from ..generators.hot import HotGenerator
from ..generators.inet import InetGenerator
from ..generators.pfp import PfpGenerator
from ..generators.plrg import PlrgGenerator
from ..generators.serrano import SerranoGenerator
from ..generators.watts_strogatz import WattsStrogatzGenerator
from ..generators.waxman import WaxmanGenerator

__all__ = [
    "register",
    "make_generator",
    "available_models",
    "generator_class",
    "resolve_generator",
]

_REGISTRY: Dict[str, Type[TopologyGenerator]] = {}


def register(cls: Type[TopologyGenerator]) -> Type[TopologyGenerator]:
    """Add a generator class to the registry (usable as a decorator).

    The class must define a non-empty unique ``name``.
    """
    if not getattr(cls, "name", ""):
        raise ValueError(f"{cls.__name__} has no registry name")
    if cls.name in _REGISTRY and _REGISTRY[cls.name] is not cls:
        raise ValueError(f"model name {cls.name!r} already registered")
    _REGISTRY[cls.name] = cls
    return cls


for _cls in (
    ErdosRenyiGnp,
    ErdosRenyiGnm,
    WaxmanGenerator,
    BarabasiAlbertGenerator,
    AlbertBarabasiGenerator,
    GlpGenerator,
    PlrgGenerator,
    InetGenerator,
    PfpGenerator,
    HotGenerator,
    TransitStubGenerator,
    SerranoGenerator,
    WattsStrogatzGenerator,
    BianconiBarabasiGenerator,
    BriteGenerator,
):
    register(_cls)

# Deliberately NOT registered: repro.store.StoredTopologyGenerator.  The
# registry contract is "synthesizable family" — no-arg constructible,
# seed-deterministic — and a stored world (wraps an existing file,
# ignores the seed) satisfies neither.  Stored worlds enter batteries as
# generator *instances* via resolve_generator.


def available_models() -> List[str]:
    """Sorted registry names."""
    return sorted(_REGISTRY)


def generator_class(name: str) -> Type[TopologyGenerator]:
    """Look up a generator class by registry name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_models())
        raise KeyError(f"unknown model {name!r}; available: {known}") from None


def make_generator(name: str, **params) -> TopologyGenerator:
    """Instantiate a registered generator with keyword parameters."""
    return generator_class(name)(**params)


def resolve_generator(spec, **params) -> TopologyGenerator:
    """Coerce *spec* (registry name or generator instance) to a generator.

    The battery runner and CLI accept models either way; passing parameters
    alongside an already-constructed instance is an error (the instance's
    own parameters win, silently overriding would hide bugs).
    """
    if isinstance(spec, TopologyGenerator):
        if params:
            raise ValueError(
                "cannot apply parameters to an already-constructed generator"
            )
        return spec
    return make_generator(spec, **params)
