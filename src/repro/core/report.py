"""Plain-text report rendering.

The harnesses print paper-style tables and figure series to stdout (and
into the benchmark logs).  One table formatter and one series formatter
keep every experiment's output uniform and diff-able.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["format_table", "format_series", "format_value", "shorten"]


def shorten(text: str, limit: int = 72) -> str:
    """First line of *text*, ellipsized to *limit* characters.

    Used for embedding multi-line diagnostics (tracebacks) in single table
    cells: the last traceback line is usually the exception message, so
    callers typically pass that.
    """
    line = text.strip().splitlines()[0] if text.strip() else ""
    if len(line) <= limit:
        return line
    return line[: max(0, limit - 1)] + "\N{HORIZONTAL ELLIPSIS}"


def format_value(value, precision: int = 4) -> str:
    """Render one cell: floats compactly, NaN as 'n/a', rest via str()."""
    if isinstance(value, float):
        if math.isnan(value):
            return "n/a"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 10_000 or magnitude < 10 ** (-precision):
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an aligned ASCII table.

    >>> print(format_table(["model", "gamma"], [["ba", 3.0]]))
    model  gamma
    -----  -----
    ba     3
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([format_value(cell, precision) for cell in row])
    widths = [
        max(len(rendered[r][c]) for r in range(len(rendered)))
        for c in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(rendered[0], widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered[1:]:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    points: Iterable[Tuple],
    x_label: str = "x",
    y_label: str = "y",
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render an (x, y) series as a two-column table — a text 'figure'."""
    return format_table(
        [x_label, y_label],
        ([x, y] for x, y in points),
        title=title,
        precision=precision,
    )
