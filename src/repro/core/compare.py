"""Model-vs-target comparison and scoring (experiment T1 engine).

Given a candidate summary and a target summary (usually the reference AS
map), :func:`compare_summaries` produces per-metric rows and an aggregate
*divergence score*: the mean absolute log-ratio over the scored metrics,

    score = mean_m | ln(model_m / target_m) |

so "half the target" and "twice the target" penalize equally, a metric on
target contributes 0, and the score is scale-free across metrics of very
different magnitudes.  Sign-carrying metrics (assortativity) are compared
by absolute difference on a fixed scale instead; NaN exponents (no heavy
tail) receive the maximum per-metric penalty because "no tail at all" is
the worst possible miss for an internet model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph.graph import Graph
from .metrics import PartialSummary, TopologySummary, summarize

__all__ = ["MetricRow", "ComparisonResult", "compare_summaries", "compare_graphs", "DEFAULT_SCORED_METRICS"]

#: Metrics entering the aggregate score, with their comparison mode.
#: "ratio" → |ln(model/target)|, "diff" → |model − target| / scale.
DEFAULT_SCORED_METRICS: Dict[str, Tuple[str, float]] = {
    "average_degree": ("ratio", 1.0),
    "degree_exponent": ("ratio", 1.0),
    "average_clustering": ("ratio", 1.0),
    "assortativity": ("diff", 0.2),
    "average_path_length": ("ratio", 1.0),
    "degeneracy": ("ratio", 1.0),
    "max_degree_fraction": ("ratio", 1.0),
}

#: Penalty assigned when a metric is NaN/zero on one side only.
_MAX_PENALTY = 3.0


@dataclass(frozen=True)
class MetricRow:
    """One metric's comparison."""

    metric: str
    model_value: float
    target_value: float
    penalty: float

    def __str__(self) -> str:
        return (
            f"{self.metric:22s} model={self.model_value:10.4f} "
            f"target={self.target_value:10.4f} penalty={self.penalty:6.3f}"
        )


@dataclass(frozen=True)
class ComparisonResult:
    """Full comparison: per-metric rows plus the aggregate score."""

    model_name: str
    target_name: str
    rows: List[MetricRow]
    score: float

    def row(self, metric: str) -> MetricRow:
        """Look up one metric's row by name."""
        for entry in self.rows:
            if entry.metric == metric:
                return entry
        raise KeyError(f"metric {metric!r} not in comparison")

    def __str__(self) -> str:
        lines = [f"{self.model_name} vs {self.target_name} (score={self.score:.3f})"]
        lines.extend(str(row) for row in self.rows)
        return "\n".join(lines)


def _penalty(mode: str, scale: float, model: float, target: float) -> float:
    model_bad = math.isnan(model)
    target_bad = math.isnan(target)
    if model_bad and target_bad:
        return 0.0  # both sides tail-free: agreement
    if model_bad or target_bad:
        return _MAX_PENALTY
    if mode == "diff":
        return abs(model - target) / scale
    # ratio mode
    if model <= 0 or target <= 0:
        if model == target:
            return 0.0
        return _MAX_PENALTY
    return min(abs(math.log(model / target)), _MAX_PENALTY)


def compare_summaries(
    model: TopologySummary,
    target: TopologySummary,
    metrics: Optional[Dict[str, Tuple[str, float]]] = None,
) -> ComparisonResult:
    """Compare two summaries over *metrics* (default battery).

    Partial summaries (subset-group batteries, failed units) cannot be
    scored; passing one raises a ``ValueError`` naming the missing metric
    groups instead of producing a meaningless score.
    """
    for role, side in (("model", model), ("target", target)):
        if isinstance(side, PartialSummary):
            absent = ", ".join(side.missing) or "unknown"
            raise ValueError(
                f"cannot score {role} summary {side.name!r}: metric "
                f"group(s) {absent} were not computed (partial battery"
                f"{' after unit failure' if side.failed else ''}); "
                f"re-run with the full group set to score it"
            )
    metrics = metrics if metrics is not None else DEFAULT_SCORED_METRICS
    model_values = model.as_dict()
    target_values = target.as_dict()
    rows: List[MetricRow] = []
    for metric, (mode, scale) in metrics.items():
        if metric not in model_values or metric not in target_values:
            raise KeyError(f"unknown metric {metric!r}")
        m = float(model_values[metric])
        t = float(target_values[metric])
        rows.append(
            MetricRow(metric=metric, model_value=m, target_value=t,
                      penalty=_penalty(mode, scale, m, t))
        )
    score = sum(r.penalty for r in rows) / len(rows) if rows else 0.0
    return ComparisonResult(
        model_name=model.name, target_name=target.name, rows=rows, score=score
    )


def compare_graphs(
    model_graph: Graph,
    target_graph: Graph,
    metrics: Optional[Dict[str, Tuple[str, float]]] = None,
    seed: int = 0,
) -> ComparisonResult:
    """Summarize both graphs, then compare (convenience wrapper)."""
    return compare_summaries(
        summarize(model_graph, seed=seed),
        summarize(target_graph, seed=seed),
        metrics=metrics,
    )
