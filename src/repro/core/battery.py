"""Parallel, content-addressed metric-battery runner.

The validation battery — every model × replicate × metric group scored
against a target map — is embarrassingly parallel and completely
deterministic, so this module runs it that way:

* **decomposition** — one work unit per (model, replicate); each unit
  generates its topology once and computes only the metric *groups* not
  already cached (see :data:`repro.core.metrics.METRIC_GROUPS`);
* **determinism** — each unit's seed is :func:`repro.stats.rng.derive_seed`
  of (model identity, params, n, base seed, replicate index), a pure
  function independent of scheduling, so results are bit-identical at any
  ``jobs`` value and on warm vs. cold cache;
* **caching** — every (model, params, n, seed, group, code-version) cell is
  stored in a :class:`repro.core.cache.ResultCache`; re-running an
  experiment, adding replicates, or re-scoring against a new target skips
  every already-computed cell (cache probes and writes happen only in the
  parent process, so workers never race on files).

:func:`run_battery` produces per-replicate summaries plus per-unit timing
and cache telemetry; :func:`compare_models` layers target scoring on top
(the engine behind experiment T1 and the ``repro battery`` CLI command).
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..generators.base import TopologyGenerator
from ..graph.graph import Graph
from ..stats.rng import derive_seed
from .cache import CacheStats, NullCache, ResultCache, canonical_key
from .compare import ComparisonResult, compare_summaries
from .metrics import (
    METRIC_GROUPS,
    METRICS_VERSION,
    TopologySummary,
    compute_metric_groups,
    summarize,
)
from .registry import resolve_generator
from .report import format_table

__all__ = [
    "UnitRecord",
    "BatteryEntry",
    "BatteryResult",
    "ModelScore",
    "ComparisonBattery",
    "run_battery",
    "compare_models",
]

CacheLike = Union[None, str, Path, ResultCache, NullCache]

#: Which summarize() parameters each metric group actually depends on;
#: cache keys embed only these, so e.g. changing ``path_samples`` does not
#: invalidate cached clustering cells.
_GROUP_PARAM_KEYS: Dict[str, Tuple[str, ...]] = {
    "paths": ("path_sample_threshold", "path_samples"),
    "tail": ("min_tail",),
}


@dataclass(frozen=True)
class UnitRecord:
    """Telemetry for one battery cell (or one topology generation)."""

    model: str
    replicate: int
    group: str  # metric group name, or "generate" for topology construction
    seed: int
    cached: bool
    seconds: float


@dataclass(frozen=True)
class BatteryEntry:
    """One model's battery output: a summary per replicate."""

    model: str
    params: Dict[str, Any]
    seeds: Tuple[int, ...]
    summaries: Tuple[TopologySummary, ...]


@dataclass
class BatteryResult:
    """Everything one :func:`run_battery` call produced."""

    entries: List[BatteryEntry]
    records: List[UnitRecord]
    stats: CacheStats
    jobs: int
    elapsed: float

    def entry(self, model: str) -> BatteryEntry:
        """Look up one model's entry by label."""
        for item in self.entries:
            if item.model == model:
                return item
        raise KeyError(f"model {model!r} not in battery result")

    def summaries(self, model: str) -> Tuple[TopologySummary, ...]:
        """One model's per-replicate summaries."""
        return self.entry(model).summaries

    @property
    def compute_seconds(self) -> float:
        """Total seconds spent computing (excludes cache hits; sums over
        workers, so it can exceed ``elapsed`` when ``jobs > 1``)."""
        return sum(r.seconds for r in self.records if not r.cached)

    def timing_table(self) -> Tuple[List[str], List[List[Any]]]:
        """Aggregate telemetry rows: per (model, group) computed/cached
        cell counts and compute seconds."""
        agg: Dict[Tuple[str, str], List[float]] = {}
        for rec in self.records:
            cell = agg.setdefault((rec.model, rec.group), [0, 0, 0.0])
            if rec.cached:
                cell[1] += 1
            else:
                cell[0] += 1
                cell[2] += rec.seconds
        headers = ["model", "group", "computed", "cached", "seconds"]
        rows = [
            [model, group, computed, cached, seconds]
            for (model, group), (computed, cached, seconds) in sorted(agg.items())
        ]
        return headers, rows

    def render_timing(self) -> str:
        """Telemetry as an aligned text table (for reports and logs)."""
        headers, rows = self.timing_table()
        table = format_table(headers, rows, title="battery telemetry")
        footer = (
            f"jobs={self.jobs} elapsed={self.elapsed:.3f}s "
            f"compute={self.compute_seconds:.3f}s cache[{self.stats}]"
        )
        return f"{table}\n{footer}"


@dataclass(frozen=True)
class ModelScore:
    """One model's divergence from the target, over all replicates."""

    model: str
    scores: Tuple[float, ...]
    comparisons: Tuple[ComparisonResult, ...]
    summaries: Tuple[TopologySummary, ...]

    @property
    def mean(self) -> float:
        """Seed-averaged divergence score (the ranking statistic)."""
        return sum(self.scores) / len(self.scores)

    @property
    def spread(self) -> float:
        """Max − min score across replicates (0 for a single replicate)."""
        return (max(self.scores) - min(self.scores)) if len(self.scores) > 1 else 0.0

    @property
    def last_summary(self) -> TopologySummary:
        """The final replicate's summary (what the T1 table prints)."""
        return self.summaries[-1]


@dataclass
class ComparisonBattery:
    """Output of :func:`compare_models`: scored battery vs one target."""

    target: TopologySummary
    scores: List[ModelScore]
    battery: BatteryResult

    def score(self, model: str) -> ModelScore:
        """Look up one model's score block by label."""
        for item in self.scores:
            if item.model == model:
                return item
        raise KeyError(f"model {model!r} not in comparison")

    def ranking(self) -> List[Tuple[str, float]]:
        """(model, mean score) pairs, best (lowest) first."""
        return sorted(
            ((s.model, s.mean) for s in self.scores), key=lambda pair: pair[1]
        )


def _resolve_cache(cache: CacheLike) -> Union[ResultCache, NullCache]:
    if cache is None:
        return NullCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    return cache


def _normalize_models(models) -> List[Tuple[str, TopologyGenerator]]:
    """Coerce the accepted model specs to an ordered (label, generator) list.

    Accepts a mapping label → name-or-generator, a sequence of names or
    generators, or a single name/generator.  Labels are mapping keys where
    given, else the generator's registry name.
    """
    if isinstance(models, (str, TopologyGenerator)):
        models = [models]
    out: List[Tuple[str, TopologyGenerator]] = []
    if isinstance(models, Mapping):
        items = [(label, resolve_generator(spec)) for label, spec in models.items()]
    else:
        items = []
        for spec in models:
            generator = resolve_generator(spec)
            items.append((generator.name or type(generator).__name__, generator))
    seen = set()
    for label, generator in items:
        if label in seen:
            raise ValueError(f"duplicate model label {label!r}")
        seen.add(label)
        out.append((label, generator))
    if not out:
        raise ValueError("no models given")
    return out


def _identity(generator: TopologyGenerator) -> Tuple[str, Dict[str, Any]]:
    """Cache/seed identity of a configured generator: registry name + params.

    Distinct roster labels with identical configuration (and vice versa)
    hash by *what they compute*, not what they're called, so renaming a
    table row never invalidates cached cells.
    """
    name = generator.name or type(generator).__name__
    return name, generator.params()


def _cell_payload(
    identity: str,
    params: Mapping[str, Any],
    n: int,
    seed: int,
    group: str,
    sum_params: Mapping[str, Any],
) -> Dict[str, Any]:
    relevant = {key: sum_params[key] for key in _GROUP_PARAM_KEYS.get(group, ())}
    return {
        "kind": "battery-cell",
        "model": identity,
        "params": dict(params),
        "n": n,
        "seed": seed,
        "group": group,
        "group_params": relevant,
        "version": METRICS_VERSION,
    }


def _battery_task(task):
    """Worker kernel: generate one topology, compute its missing groups.

    Module-level and argument-pure so it pickles under any multiprocessing
    start method.  Returns (task index, group → values, group → seconds,
    generation seconds).
    """
    index, generator, n, seed, groups, sum_params = task
    start = time.perf_counter()
    graph = generator.generate(n, seed=seed)
    gen_seconds = time.perf_counter() - start
    values: Dict[str, Dict[str, float]] = {}
    timings: Dict[str, float] = {}
    previous = gen_seconds + start
    computed = compute_metric_groups(graph, groups, seed=seed, **sum_params)
    # compute_metric_groups shares one giant-component pass; re-time each
    # group individually only when fine-grained telemetry is worth a second
    # pass — it is not, so attribute elapsed time proportionally by order.
    total = time.perf_counter() - previous
    per_group = total / len(groups) if groups else 0.0
    for group in groups:
        values[group] = computed[group]
        timings[group] = per_group
    return index, values, timings, gen_seconds


def run_battery(
    models,
    n: int,
    seeds: int = 3,
    base_seed: int = 17,
    jobs: int = 1,
    cache: CacheLike = None,
    groups: Optional[Sequence[str]] = None,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
) -> BatteryResult:
    """Run the metric battery over *models* × *seeds* replicates.

    *models* may be a mapping label → generator/name, a sequence of
    generators or registry names, or a single one of either.  *jobs* > 1
    fans the work units out over a process pool; *cache* (a directory path
    or :class:`ResultCache`) makes every cell content-addressed and
    reusable across runs.  Results are bit-identical for any *jobs* value
    and for warm vs. cold cache — the per-unit seed depends only on the
    model identity, its parameters, *n*, *base_seed*, and the replicate
    index.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    started = time.perf_counter()
    spec = _normalize_models(models)
    group_names = tuple(groups) if groups is not None else tuple(METRIC_GROUPS)
    store = _resolve_cache(cache)
    sum_params = {
        "path_sample_threshold": path_sample_threshold,
        "path_samples": path_samples,
        "min_tail": min_tail,
    }

    records: List[UnitRecord] = []
    tasks: List[Tuple] = []
    # One slot per (model, replicate): cached values plus pending cell keys.
    units: List[Dict[str, Any]] = []
    for label, generator in spec:
        identity, params = _identity(generator)
        for rep in range(seeds):
            unit_seed = derive_seed(
                "battery-unit", identity, params, n, base_seed, rep
            )
            unit = {
                "label": label,
                "params": params,
                "replicate": rep,
                "seed": unit_seed,
                "values": {},
                "pending": {},
                "task": None,
            }
            for group in group_names:
                payload = _cell_payload(identity, params, n, unit_seed, group, sum_params)
                key = canonical_key(payload)
                hit = store.get(key, payload)
                if hit is not None:
                    unit["values"][group] = hit
                    records.append(
                        UnitRecord(label, rep, group, unit_seed, True, 0.0)
                    )
                else:
                    unit["pending"][group] = (key, payload)
            if unit["pending"]:
                unit["task"] = len(tasks)
                tasks.append(
                    (
                        len(tasks),
                        generator,
                        n,
                        unit_seed,
                        tuple(unit["pending"]),
                        sum_params,
                    )
                )
            units.append(unit)

    if tasks:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                results = list(pool.map(_battery_task, tasks))
        else:
            results = [_battery_task(task) for task in tasks]
        by_index = {index: (values, timings, gen_s) for index, values, timings, gen_s in results}
        for unit in units:
            if unit["task"] is None:
                continue
            values, timings, gen_seconds = by_index[unit["task"]]
            records.append(
                UnitRecord(
                    unit["label"], unit["replicate"], "generate",
                    unit["seed"], False, gen_seconds,
                )
            )
            for group, (key, payload) in unit["pending"].items():
                unit["values"][group] = values[group]
                store.put(key, values[group], payload)
                records.append(
                    UnitRecord(
                        unit["label"], unit["replicate"], group,
                        unit["seed"], False, timings[group],
                    )
                )

    entries: List[BatteryEntry] = []
    for label, generator in spec:
        _, params = _identity(generator)
        model_units = [u for u in units if u["label"] == label]
        summaries = []
        for unit in model_units:
            merged: Dict[str, float] = {}
            for group in group_names:
                merged.update(unit["values"][group])
            if set(merged) == {
                f for fields in METRIC_GROUPS.values() for f in fields
            }:
                summaries.append(TopologySummary.from_dict(label, merged))
            else:
                # Partial-group batteries cannot build a full summary; the
                # raw values are still in unit["values"].
                summaries.append(None)
        entries.append(
            BatteryEntry(
                model=label,
                params=params,
                seeds=tuple(u["seed"] for u in model_units),
                summaries=tuple(summaries),
            )
        )
    return BatteryResult(
        entries=entries,
        records=records,
        stats=store.stats,
        jobs=jobs,
        elapsed=time.perf_counter() - started,
    )


def _summarize_target(
    target,
    n: int,
    store: Union[ResultCache, NullCache],
    sum_params: Mapping[str, Any],
) -> TopologySummary:
    """Resolve *target* (None → reference map; Graph; TopologySummary) to a
    summary, caching the reference map's cells like any other unit."""
    if isinstance(target, TopologySummary):
        return target
    if isinstance(target, Graph):
        return summarize(target, seed=0, **sum_params)
    if target is not None:
        raise TypeError(
            f"target must be None, a Graph or a TopologySummary, "
            f"not {type(target).__name__}"
        )
    from ..datasets.asmap import reference_as_map

    values: Dict[str, float] = {}
    pending: Dict[str, Tuple[str, Dict[str, Any]]] = {}
    for group in METRIC_GROUPS:
        payload = _cell_payload("__reference_as_map__", {}, n, 0, group, sum_params)
        key = canonical_key(payload)
        hit = store.get(key, payload)
        if hit is not None:
            values.update(hit)
        else:
            pending[group] = (key, payload)
    if pending:
        graph = reference_as_map(n)
        computed = compute_metric_groups(graph, tuple(pending), seed=0, **sum_params)
        for group, (key, payload) in pending.items():
            store.put(key, computed[group], payload)
            values.update(computed[group])
    return TopologySummary.from_dict("reference", values)


def compare_models(
    models,
    n: int,
    seeds: int = 3,
    base_seed: int = 21,
    target=None,
    metrics: Optional[Dict[str, Tuple[str, float]]] = None,
    jobs: int = 1,
    cache: CacheLike = None,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
) -> ComparisonBattery:
    """Score *models* against *target* over the full battery.

    *target* defaults to the frozen reference AS map at size *n* (cached
    through the same store as the model cells).  Scoring itself is cheap
    arithmetic and stays in the parent; all topology generation and metric
    computation parallelizes/caches via :func:`run_battery`.
    """
    store = _resolve_cache(cache)
    sum_params = {
        "path_sample_threshold": path_sample_threshold,
        "path_samples": path_samples,
        "min_tail": min_tail,
    }
    target_summary = _summarize_target(target, n, store, sum_params)
    battery = run_battery(
        models,
        n=n,
        seeds=seeds,
        base_seed=base_seed,
        jobs=jobs,
        cache=store,
        **sum_params,
    )
    scores: List[ModelScore] = []
    for entry in battery.entries:
        comparisons = tuple(
            compare_summaries(summary, target_summary, metrics=metrics)
            for summary in entry.summaries
        )
        scores.append(
            ModelScore(
                model=entry.model,
                scores=tuple(c.score for c in comparisons),
                comparisons=comparisons,
                summaries=entry.summaries,
            )
        )
    return ComparisonBattery(target=target_summary, scores=scores, battery=battery)
