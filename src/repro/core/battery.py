"""Parallel, content-addressed, fault-tolerant metric-battery runner.

The validation battery — every model × replicate × metric group scored
against a target map — is embarrassingly parallel and completely
deterministic, so this module runs it that way:

* **decomposition** — under the default ``regenerate`` transport, one
  work unit per (model, replicate): each unit generates its topology
  once and computes only the metric *groups* not already cached (see
  :data:`repro.core.metrics.METRIC_GROUPS`).  Under the ``shared``
  transport (see :mod:`repro.core.transport`), generation becomes its
  own journaled/cached unit per (model, seed) — published once as a
  zero-copy snapshot that workers attach read-only — and each pending
  metric group becomes an independent unit, so exact-paths-heavy
  replicates parallelize group-by-group and retries/resumes never pay
  generation twice;
* **determinism** — each unit's seed is :func:`repro.stats.rng.derive_seed`
  of (model identity, params, n, base seed, replicate index), a pure
  function independent of scheduling, so results are bit-identical at any
  ``jobs`` value and on warm vs. cold cache;
* **caching** — every (model, params, n, seed, group, code-version) cell is
  stored in a :class:`repro.core.cache.ResultCache`; re-running an
  experiment, adding replicates, or re-scoring against a new target skips
  every already-computed cell (cache probes and writes happen only in the
  parent process, so workers never race on files);
* **fault containment** — units are submitted individually, never via
  ``pool.map``: one crashing generator, one metric exception, one unit
  blowing its ``timeout``, even one worker process dying outright, costs
  exactly that unit (after up to ``retries`` re-attempts).  The failed
  replicate becomes a :class:`UnitRecord` with ``status="failed"`` (or
  ``"timeout"``) carrying the traceback, its entry keeps a
  :class:`~repro.core.metrics.PartialSummary` for the gap, every other
  unit's results survive, and — with a cache — re-running the same command
  recomputes only the failed cells;
* **observability** — the run threads through :mod:`repro.obs`: a
  hierarchical span tree (``battery`` → ``unit`` → ``generate`` /
  ``metric.<group>``, exportable as a Chrome trace), ambient metrics
  counters reconciling with the returned telemetry, per-unit peak RSS and
  CPU time sampled in the workers, an optional per-unit ``cProfile`` dump
  (*profile_dir*), and an optional
  :class:`repro.core.journal.RunJournal` recording one run-stamped JSONL
  event per unit start/finish/retry/failure and per cache hit.

:func:`run_battery` produces per-replicate summaries plus per-unit timing
and cache telemetry; :func:`compare_models` layers target scoring on top
(the engine behind experiment T1 and the ``repro battery`` CLI command).
"""

from __future__ import annotations

import math
import os
import signal
import threading
import time
import traceback
import warnings
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..generators.base import TopologyGenerator
from ..graph.graph import Graph
from ..obs.metrics import MetricsRegistry, diff_snapshots, get_registry, set_registry
from ..obs.profiler import profile_unit
from ..obs.sampler import ResourceSampler
from ..obs.tracer import Tracer, get_tracer, set_tracer
from ..stats.rng import derive_seed
from .cache import CacheStats, NullCache, ResultCache, canonical_key
from .compare import ComparisonResult, compare_summaries
from .journal import JournalLike, NullJournal, RunJournal, resolve_journal
from .metrics import (
    ALL_METRIC_GROUPS,
    METRIC_GROUPS,
    METRICS_VERSION,
    PartialSummary,
    TopologySummary,
    compute_metric_groups,
    summarize,
)
from .registry import resolve_generator
from .report import format_table, shorten
from .transport import (
    SnapshotSpool,
    attach_graph,
    publish_graph,
    resolve_mp_context,
    resolve_transport,
)

__all__ = [
    "UnitRecord",
    "BatteryEntry",
    "BatteryResult",
    "ModelScore",
    "ComparisonBattery",
    "run_battery",
    "compare_models",
]

CacheLike = Union[None, str, Path, ResultCache, NullCache]

#: Which summarize() parameters each metric group actually depends on;
#: cache keys embed only these, so e.g. changing ``path_samples`` does not
#: invalidate cached clustering cells.
_GROUP_PARAM_KEYS: Dict[str, Tuple[str, ...]] = {
    "paths": ("path_sample_threshold", "path_samples"),
    "tail": ("min_tail",),
}


@dataclass(frozen=True)
class UnitRecord:
    """Telemetry for one battery cell, shared pass, or unit failure.

    ``group`` is a metric group name for computed/cached cells,
    ``"generate"`` for topology construction, ``"giant"`` for the shared
    giant-component extraction, or ``"unit"`` for a whole-unit failure
    record.  ``status`` is ``"ok"`` for successful records and
    ``"failed"``/``"timeout"`` for failures, whose ``error`` carries the
    worker traceback (or timeout diagnostic).  The per-unit resource
    sample — worker peak RSS and the unit's CPU seconds — rides on the
    ``"generate"`` record (one per computed unit).
    """

    model: str
    replicate: int
    group: str
    seed: int
    cached: bool
    seconds: float
    status: str = "ok"
    error: Optional[str] = None
    max_rss_kb: Optional[float] = None
    cpu_seconds: Optional[float] = None


@dataclass(frozen=True)
class BatteryEntry:
    """One model's battery output: a summary per replicate.

    Replicates that completed the full group set hold a
    :class:`TopologySummary`; deliberately-partial batteries and failed
    units hold a :class:`~repro.core.metrics.PartialSummary` (never
    ``None``) whose ``missing``/``error`` fields say exactly what is
    absent and why.
    """

    model: str
    params: Dict[str, Any]
    seeds: Tuple[int, ...]
    summaries: Tuple[Union[TopologySummary, PartialSummary], ...]


@dataclass
class BatteryResult:
    """Everything one :func:`run_battery` call produced."""

    entries: List[BatteryEntry]
    records: List[UnitRecord]
    stats: CacheStats
    jobs: int
    elapsed: float
    #: This run's ambient-metrics delta (counters/gauges/histograms, see
    #: :func:`repro.obs.metrics.diff_snapshots`); counters here reconcile
    #: with the record lists above at any ``jobs`` value.
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: The journal run id this battery's events were stamped with.
    run_id: Optional[str] = None
    #: The resolved graph transport this run used (``"regenerate"`` or
    #: ``"shared"``); a scheduling detail — results and cache cells are
    #: bit-identical either way.
    transport: str = "regenerate"

    def entry(self, model: str) -> BatteryEntry:
        """Look up one model's entry by label."""
        for item in self.entries:
            if item.model == model:
                return item
        raise KeyError(f"model {model!r} not in battery result")

    def summaries(self, model: str) -> Tuple[Union[TopologySummary, PartialSummary], ...]:
        """One model's per-replicate summaries."""
        return self.entry(model).summaries

    @property
    def failures(self) -> List[UnitRecord]:
        """Records of units that failed or timed out (empty when clean)."""
        return [rec for rec in self.records if rec.status != "ok"]

    @property
    def compute_seconds(self) -> float:
        """Total seconds spent computing (excludes cache hits; sums over
        workers, so it can exceed ``elapsed`` when ``jobs > 1``)."""
        return sum(
            r.seconds for r in self.records if not r.cached and r.status == "ok"
        )

    def timing_table(self) -> Tuple[List[str], List[List[Any]]]:
        """Aggregate telemetry rows: per (model, group) computed/cached
        cell counts and compute seconds (failures are excluded here and
        reported by :meth:`failure_table`)."""
        agg: Dict[Tuple[str, str], List[float]] = {}
        for rec in self.records:
            if rec.status != "ok":
                continue
            cell = agg.setdefault((rec.model, rec.group), [0, 0, 0.0])
            if rec.cached:
                cell[1] += 1
            else:
                cell[0] += 1
                cell[2] += rec.seconds
        headers = ["model", "group", "computed", "cached", "seconds"]
        rows = [
            [model, group, computed, cached, seconds]
            for (model, group), (computed, cached, seconds) in sorted(agg.items())
        ]
        return headers, rows

    def failure_table(self) -> Tuple[List[str], List[List[Any]]]:
        """One row per failed unit: replicate identity, status, and the
        exception message (last traceback line, ellipsized)."""
        headers = ["model", "replicate", "seed", "status", "error"]
        rows = []
        for rec in self.failures:
            message = ""
            if rec.error:
                lines = [ln for ln in rec.error.strip().splitlines() if ln.strip()]
                message = shorten(lines[-1]) if lines else ""
            rows.append([rec.model, rec.replicate, rec.seed, rec.status, message])
        return headers, rows

    def resource_table(self) -> Tuple[List[str], List[List[Any]]]:
        """Per-model resource aggregate from the workers' rusage samples:
        computed units, peak RSS (KB, max over units), CPU seconds (sum).
        Empty when every unit was cached (nothing ran, nothing sampled)."""
        agg: Dict[str, List[float]] = {}
        for rec in self.records:
            if rec.group != "generate" or rec.max_rss_kb is None:
                continue
            cell = agg.setdefault(rec.model, [0, 0.0, 0.0])
            cell[0] += 1
            cell[1] = max(cell[1], rec.max_rss_kb)
            cell[2] += rec.cpu_seconds or 0.0
        headers = ["model", "units", "peak_rss_kb", "cpu_seconds"]
        rows = [
            [model, int(units), peak, round(cpu, 4)]
            for model, (units, peak, cpu) in sorted(agg.items())
        ]
        return headers, rows

    def render_timing(self) -> str:
        """Telemetry as an aligned text table (for reports and logs),
        followed by a failed-units table when any unit failed."""
        headers, rows = self.timing_table()
        table = format_table(headers, rows, title="battery telemetry")
        footer = (
            f"jobs={self.jobs} elapsed={self.elapsed:.3f}s "
            f"compute={self.compute_seconds:.3f}s cache[{self.stats}]"
        )
        parts = [table, footer]
        if self.failures:
            parts.append("")
            parts.append(
                format_table(*self.failure_table(), title="failed units")
            )
        return "\n".join(parts)


@dataclass(frozen=True)
class ModelScore:
    """One model's divergence from the target, over surviving replicates.

    Failed replicates are excluded (with a warning at scoring time), so
    ``scores``/``summaries`` may be shorter than the requested replicate
    count; a model whose every replicate failed has no scores and a NaN
    mean.
    """

    model: str
    scores: Tuple[float, ...]
    comparisons: Tuple[ComparisonResult, ...]
    summaries: Tuple[TopologySummary, ...]

    @property
    def mean(self) -> float:
        """Seed-averaged divergence score (the ranking statistic); NaN
        when no replicate survived."""
        if not self.scores:
            return float("nan")
        return sum(self.scores) / len(self.scores)

    @property
    def spread(self) -> float:
        """Max − min score across replicates (0 for a single replicate)."""
        return (max(self.scores) - min(self.scores)) if len(self.scores) > 1 else 0.0

    @property
    def last_summary(self) -> TopologySummary:
        """The final surviving replicate's summary (what the T1 table
        prints); raises ``IndexError`` when no replicate survived."""
        return self.summaries[-1]


@dataclass
class ComparisonBattery:
    """Output of :func:`compare_models`: scored battery vs one target."""

    target: TopologySummary
    scores: List[ModelScore]
    battery: BatteryResult

    def score(self, model: str) -> ModelScore:
        """Look up one model's score block by label."""
        for item in self.scores:
            if item.model == model:
                return item
        raise KeyError(f"model {model!r} not in comparison")

    def ranking(self) -> List[Tuple[str, float]]:
        """(model, mean score) pairs, best (lowest) first; models with no
        surviving replicate rank last."""
        scored = [(s.model, s.mean) for s in self.scores]
        return sorted(
            scored,
            key=lambda pair: (math.isnan(pair[1]), pair[1]),
        )


def _resolve_cache(cache: CacheLike) -> Union[ResultCache, NullCache]:
    if cache is None:
        return NullCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    return cache


def _normalize_models(models) -> List[Tuple[str, TopologyGenerator]]:
    """Coerce the accepted model specs to an ordered (label, generator) list.

    Accepts a mapping label → name-or-generator, a sequence of names or
    generators, or a single name/generator.  Labels are mapping keys where
    given, else the generator's registry name.
    """
    if isinstance(models, (str, TopologyGenerator)):
        models = [models]
    out: List[Tuple[str, TopologyGenerator]] = []
    if isinstance(models, Mapping):
        items = [(label, resolve_generator(spec)) for label, spec in models.items()]
    else:
        items = []
        for spec in models:
            generator = resolve_generator(spec)
            items.append((generator.name or type(generator).__name__, generator))
    seen = set()
    for label, generator in items:
        if label in seen:
            raise ValueError(f"duplicate model label {label!r}")
        seen.add(label)
        out.append((label, generator))
    if not out:
        raise ValueError("no models given")
    return out


def _identity(generator: TopologyGenerator) -> Tuple[str, Dict[str, Any]]:
    """Cache/seed identity of a configured generator: registry name + params.

    Distinct roster labels with identical configuration (and vice versa)
    hash by *what they compute*, not what they're called, so renaming a
    table row never invalidates cached cells.
    """
    name = generator.name or type(generator).__name__
    return name, generator.params()


def cell_payload(
    identity: str,
    params: Mapping[str, Any],
    n: int,
    seed: int,
    group: str,
    sum_params: Mapping[str, Any],
) -> Dict[str, Any]:
    """Content-addressed identity of one battery cache cell.

    This is the canonical-key contract shared by every consumer of the
    :class:`~repro.core.cache.ResultCache` — the battery runner, and the
    serving layer's request coalescer (:mod:`repro.serve`), which keys
    in-flight requests on the same payloads so a served repeat is a cache
    hit and a concurrent identical request collapses onto one computation.
    """
    relevant = {key: sum_params[key] for key in _GROUP_PARAM_KEYS.get(group, ())}
    return {
        "kind": "battery-cell",
        "model": identity,
        "params": dict(params),
        "n": n,
        "seed": seed,
        "group": group,
        "group_params": relevant,
        "version": METRICS_VERSION,
    }


# Historical private name, still imported by older call sites.
_cell_payload = cell_payload


def generation_payload(
    identity: str,
    params: Mapping[str, Any],
    n: int,
    seed: int,
) -> Dict[str, Any]:
    """Content-addressed identity of one published topology snapshot.

    Shared between the battery's shared-transport generation wave and the
    serving layer's snapshot probe: the same (model identity, params, n,
    seed) always maps to the same :class:`SnapshotSpool` key, so a served
    request attaches a topology the battery generated (or vice versa)
    instead of regenerating it.
    """
    return {
        "kind": "battery-generation",
        "model": identity,
        "params": dict(params),
        "n": n,
        "seed": seed,
    }


@contextmanager
def _ambient_obs(tracer: Tracer):
    """Install *tracer* as the ambient one for a block (restored after),
    so instrumentation points anywhere in the call tree emit into it."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def _battery_task(task):
    """Worker kernel: one battery work unit, dispatched on ``task["kind"]``.

    * ``"full"`` — generate one topology and compute its missing groups
      (the ``regenerate`` transport's unit, and the historical shape);
    * ``"generate"`` — generate one topology and publish it as a shared
      snapshot at ``task["spool_path"]``; the resulting
      :class:`~repro.core.transport.SharedGraphHandle` rides back in the
      obs payload under ``"handle"``;
    * ``"measure"`` — attach ``task["handle"]`` (served from this
      process's transport attach cache after the first touch) and compute
      ``task["groups"]`` on the shared topology.

    Module-level and argument-pure so it pickles under any multiprocessing
    start method.  Installs a fresh ambient tracer and metrics registry
    for the unit's duration (identical behavior inline and in a pooled
    worker — no cross-unit bleed, no double counting) and samples rusage
    around the work.  Returns (task index, group → values, group → real
    wall seconds, generation seconds, worker pid, obs payload) where the
    payload carries the unit's span dicts, metrics snapshot, and resource
    sample.
    """
    index = task["index"]
    kind = task["kind"]
    obs_conf = task["obs"]
    seed = task["seed"]
    model = obs_conf.get("model")
    tracer = Tracer(enabled=bool(obs_conf.get("trace")))
    registry = MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_registry = set_registry(registry)
    sampler = ResourceSampler().start()
    values: Dict[str, Dict[str, float]] = {}
    timings: Dict[str, float] = {}
    gen_seconds = 0.0
    handle = None
    try:
        with profile_unit(obs_conf.get("profile_dir"), obs_conf.get("label", f"unit-{index}")):
            with tracer.span(
                "unit", model=model, replicate=obs_conf.get("replicate"),
                seed=seed, kind=kind,
            ):
                if kind in ("full", "generate"):
                    n = task["n"]
                    start = time.perf_counter()
                    with tracer.span("generate", model=model, n=n):
                        graph = task["generator"].generate(n, seed=seed)
                    gen_seconds = time.perf_counter() - start
                else:
                    graph = attach_graph(task["handle"])
                if kind == "generate":
                    handle = publish_graph(
                        graph, task["spool_path"], name=model or ""
                    )
                else:
                    values, timings = compute_metric_groups(
                        graph, task["groups"], seed=seed, with_timings=True,
                        **task["sum_params"],
                    )
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)
    usage = sampler.stop()
    obs_payload = {
        "spans": [span.as_dict() for span in tracer.drain()],
        "metrics": registry.snapshot(),
        "rusage": usage.as_dict(),
    }
    if handle is not None:
        obs_payload["handle"] = handle
    return index, values, timings, gen_seconds, os.getpid(), obs_payload


@dataclass(frozen=True)
class _UnitOutcome:
    """Terminal result of one work unit after all attempts."""

    status: str  # "ok" | "failed" | "timeout"
    values: Optional[Dict[str, Dict[str, float]]] = None
    timings: Optional[Dict[str, float]] = None
    gen_seconds: float = 0.0
    seconds: float = 0.0
    worker: Optional[int] = None
    error: Optional[str] = None
    attempts: int = 1
    extras: Optional[Dict[str, Any]] = None


def _format_exception(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))


def _finish_fields(outcome: _UnitOutcome) -> Dict[str, Any]:
    """Enriched unit_finish journal fields from a successful outcome:
    generation seconds, per-group seconds, peak RSS, CPU seconds."""
    fields: Dict[str, Any] = {
        "seconds": round(outcome.seconds, 6),
        "worker": outcome.worker,
        "gen_seconds": round(outcome.gen_seconds, 6),
        "groups": {
            group: round(seconds, 6)
            for group, seconds in (outcome.timings or {}).items()
        },
    }
    rusage = (outcome.extras or {}).get("rusage") or {}
    if rusage:
        fields["max_rss_kb"] = rusage.get("max_rss_kb")
        fields["cpu_seconds"] = rusage.get("cpu_seconds")
    return fields


def _run_serial(
    tasks: Sequence[Tuple],
    timeout: Optional[float],
    retries: int,
    journal: Union[RunJournal, NullJournal],
    meta: Mapping[int, Dict[str, Any]],
) -> Dict[int, _UnitOutcome]:
    """Inline (jobs=1) execution with the same containment semantics.

    A unit that overruns *timeout* inline cannot be preempted, so the
    limit is enforced retroactively: the overrun unit's values are
    discarded and it is recorded as a timeout, keeping jobs=1 and jobs>1
    outcomes identical for deterministic workloads.
    """
    registry = get_registry()
    outcomes: Dict[int, _UnitOutcome] = {}
    for task in tasks:
        index = task["index"]
        info = meta[index]
        outcome: Optional[_UnitOutcome] = None
        for attempt in range(retries + 1):
            journal.emit("unit_start", attempt=attempt, jobs=1, **info)
            started = time.perf_counter()
            try:
                _, values, timings, gen_seconds, worker, extras = _battery_task(task)
            except Exception as exc:
                elapsed = time.perf_counter() - started
                outcome = _UnitOutcome(
                    "failed", seconds=elapsed, worker=os.getpid(),
                    error=_format_exception(exc), attempts=attempt + 1,
                )
            else:
                elapsed = time.perf_counter() - started
                if timeout is not None and elapsed > timeout:
                    outcome = _UnitOutcome(
                        "timeout", seconds=elapsed, worker=os.getpid(),
                        error=(
                            f"TimeoutError: unit took {elapsed:.3f}s, "
                            f"exceeding the {timeout}s per-unit timeout"
                        ),
                        attempts=attempt + 1,
                    )
                else:
                    outcome = _UnitOutcome(
                        "ok", values=values, timings=timings,
                        gen_seconds=gen_seconds, seconds=elapsed,
                        worker=worker, attempts=attempt + 1, extras=extras,
                    )
            if outcome.status == "ok":
                journal.emit(
                    "unit_finish", attempt=attempt,
                    **_finish_fields(outcome), **info,
                )
                break
            if attempt < retries:
                registry.counter("battery.units.retried").inc()
                journal.emit(
                    "unit_retry", attempt=attempt, status=outcome.status, **info
                )
            else:
                journal.emit(
                    "unit_fail", status=outcome.status, attempts=outcome.attempts,
                    error=outcome.error, **info,
                )
        outcomes[index] = outcome
    return outcomes


def _worker_ignore_sigint() -> None:
    # Pool workers share the terminal's process group, so a Ctrl-C aimed
    # at the battery CLI or `serve run` would also interrupt every worker
    # mid-recv and spray KeyboardInterrupt tracebacks over the shutdown
    # message.  The parent owns the pool's lifecycle; workers stay deaf
    # to SIGINT and exit when the parent shuts the executor down.
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class WorkerPool:
    """A persistent handle on a battery worker pool.

    Wraps a lazily-built :class:`ProcessPoolExecutor` whose workers run
    :func:`_battery_task`, so the expensive part — spawning interpreter
    processes that then fill their per-process transport attach caches —
    is paid once and reused across battery waves, retry rounds, and (in
    the serving layer) across requests for the life of the service.

    * :meth:`submit` hands one task dict to a worker and returns its
      future — the reusable submit path shared by :func:`_run_parallel`
      and :class:`repro.serve.ServeDispatcher`.
    * :meth:`rebuild` abandons a broken or hung pool without waiting for
      it; the next submit builds a fresh one.
    * :meth:`shutdown` releases the workers (idempotent).

    The handle itself is thread-safe for submits; result collection is
    the caller's business (futures are independent).
    """

    def __init__(self, jobs: int, mp_context=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self.rebuilds = 0

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, built lazily on first use (thread-safe)."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    mp_context=self.mp_context,
                    initializer=_worker_ignore_sigint,
                )
            return self._executor

    def submit(self, task: Dict[str, Any]):
        """Submit one battery task dict; returns its future."""
        return self.executor.submit(_battery_task, task)

    def rebuild(self) -> None:
        """Abandon the current executor (broken or hung) without waiting.

        Queued-but-unstarted work is cancelled; in-flight workers finish
        (or die) in the background.  The next :meth:`submit` lazily builds
        a replacement pool.
        """
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
            self.rebuilds += 1

    def shutdown(self, wait: bool = True) -> None:
        """Release the worker processes (idempotent; safe if never built)."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)


def _run_parallel(
    tasks: Sequence[Dict[str, Any]],
    jobs: int,
    timeout: Optional[float],
    retries: int,
    journal: Union[RunJournal, NullJournal],
    meta: Mapping[int, Dict[str, Any]],
    mp_context=None,
    on_rebuild=None,
    pool: Optional[WorkerPool] = None,
) -> Dict[int, _UnitOutcome]:
    """Pooled execution with per-unit containment.

    Every unit is submitted individually; an exception raised in a worker
    costs only its own unit, a unit that overruns *timeout* is abandoned
    (its worker finishes in the background), and a worker process dying
    outright (:class:`BrokenExecutor`) charges the unit being waited on
    and rebuilds the pool for the rest.  Failed/timed-out attempts are
    re-submitted up to *retries* times before the unit is declared dead.

    *pool* — when given — is a caller-owned :class:`WorkerPool` reused
    across calls (run_battery shares one across its transport waves; the
    serving layer keeps one warm for the life of the service); otherwise a
    private pool is built here from the explicit *mp_context* (see
    :func:`repro.core.transport.resolve_mp_context`) and shut down on
    exit.  Healthy pools survive retry rounds — only a broken or hung
    pool is abandoned and rebuilt.  *on_rebuild* — when given — runs
    after each abandonment before the replacement is built; the shared
    transport reaps orphaned snapshot staging directories there.
    """
    registry = get_registry()
    by_index = {task["index"]: task for task in tasks}
    pending: Dict[int, int] = {
        task["index"]: 0 for task in tasks
    }  # index → attempts used
    outcomes: Dict[int, _UnitOutcome] = {}
    owned = pool is None
    if owned:
        pool = WorkerPool(jobs, mp_context)

    def charge(index: int, status: str, error: str, seconds: float) -> None:
        attempts = pending[index] + 1
        info = meta[index]
        if attempts > retries:
            outcomes[index] = _UnitOutcome(
                status, seconds=seconds, error=error, attempts=attempts
            )
            del pending[index]
            journal.emit(
                "unit_fail", status=status, attempts=attempts, error=error, **info
            )
        else:
            pending[index] = attempts
            registry.counter("battery.units.retried").inc()
            journal.emit("unit_retry", attempt=attempts - 1, status=status, **info)

    while pending:
        broken = False
        hung = False
        futures = {}
        for index in sorted(pending):
            futures[index] = pool.submit(by_index[index])
            journal.emit(
                "unit_start", attempt=pending[index], jobs=jobs, **meta[index]
            )
        for index, future in futures.items():
            waited = time.perf_counter()
            try:
                _, values, timings, gen_seconds, worker, extras = future.result(
                    timeout=timeout
                )
            except FuturesTimeout:
                future.cancel()
                hung = True
                charge(
                    index, "timeout",
                    f"TimeoutError: unit did not finish within the "
                    f"{timeout}s per-unit timeout",
                    timeout or 0.0,
                )
            except BrokenExecutor as exc:
                # A worker died without raising (segfault, OOM-kill,
                # os._exit): the whole pool is unusable.  Attribution is
                # heuristic — the unit being waited on is charged — and
                # every other in-flight unit is re-run free of charge in a
                # fresh pool.
                journal.emit("pool_broken", error=repr(exc), **meta[index])
                charge(
                    index, "failed",
                    f"BrokenExecutor: worker process died abruptly "
                    f"({exc!r}); unit charged heuristically",
                    time.perf_counter() - waited,
                )
                broken = True
                break
            except Exception as exc:
                charge(
                    index, "failed", _format_exception(exc),
                    time.perf_counter() - waited,
                )
            else:
                seconds = gen_seconds + sum(timings.values())
                outcome = _UnitOutcome(
                    "ok", values=values, timings=timings,
                    gen_seconds=gen_seconds, seconds=seconds,
                    worker=worker, attempts=pending[index] + 1, extras=extras,
                )
                outcomes[index] = outcome
                del pending[index]
                journal.emit(
                    "unit_finish", **_finish_fields(outcome), **meta[index]
                )
        # Only a hung or broken pool is abandoned (without blocking on
        # it); a healthy pool is kept warm for the next retry round — or,
        # for a caller-owned pool, for whatever the caller runs next.
        if broken or hung:
            pool.rebuild()
            if on_rebuild is not None:
                on_rebuild()
    if owned:
        pool.shutdown(wait=True)
    return outcomes


def run_battery(
    models,
    n: int,
    seeds: int = 3,
    base_seed: int = 17,
    jobs: int = 1,
    cache: CacheLike = None,
    groups: Optional[Sequence[str]] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    journal: JournalLike = None,
    tracer: Optional[Tracer] = None,
    profile_dir: Union[None, str, Path] = None,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
    backend: str = "auto",
    transport: str = "auto",
    mp_context=None,
) -> BatteryResult:
    """Run the metric battery over *models* × *seeds* replicates.

    *models* may be a mapping label → generator/name, a sequence of
    generators or registry names, or a single one of either.  *jobs* > 1
    fans the work units out over a process pool; *cache* (a directory path
    or :class:`ResultCache`) makes every cell content-addressed and
    reusable across runs.  Results are bit-identical for any *jobs* value
    and for warm vs. cold cache — the per-unit seed depends only on the
    model identity, its parameters, *n*, *base_seed*, and the replicate
    index.

    Failures are contained, not fatal: a unit that raises, exceeds
    *timeout* seconds, or loses its worker process is retried up to
    *retries* times and then recorded as a failed :class:`UnitRecord`
    (see :attr:`BatteryResult.failures`); its replicate's summary becomes
    a :class:`~repro.core.metrics.PartialSummary` carrying the traceback
    while every other unit's results are returned normally.  *journal*
    (a path or :class:`~repro.core.journal.RunJournal`) appends one JSONL
    event per unit start/finish/retry/failure and per cache hit, all
    stamped with a fresh ``run_id``.

    Observability: *tracer* (default: the ambient
    :func:`repro.obs.get_tracer`, disabled unless someone enabled it) is
    installed as ambient for the run and — when enabled — collects the
    full span tree, including the workers' unit/generate/metric spans;
    *profile_dir* turns on per-unit ``cProfile`` dumps there.  The run's
    counter deltas land in :attr:`BatteryResult.metrics` and reconcile
    with the returned records at any *jobs* value.

    *backend* picks the metric-kernel implementation
    (``auto``/``python``/``csr``, see :mod:`repro.graph.csr`).  Both
    backends produce identical values, so the choice is deliberately
    excluded from cache keys: cells computed on one backend satisfy runs
    on the other.

    *transport* picks how topologies reach their metric computations
    (``auto``/``regenerate``/``shared``, env ``REPRO_TRANSPORT``; see
    :mod:`repro.core.transport`).  Under ``shared``, each (model, seed)
    topology is generated in its own journaled unit, published once as a
    zero-copy snapshot — spooled under the cache directory when one is in
    play, so later runs attach instead of regenerating — and each pending
    metric group runs as an independent unit attaching read-only.  Like
    *backend*, the transport is a pure scheduling choice: summaries are
    bit-identical and cache cells carry no trace of it.  *mp_context*
    pins the worker pools' multiprocessing start method
    (``fork``/``spawn``/``forkserver`` or a context object, env
    ``REPRO_MP_START``; default: the platform default).
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    if retries < 0:
        raise ValueError("retries must be >= 0")
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive (or None)")
    started = time.perf_counter()
    spec = _normalize_models(models)
    group_names = tuple(groups) if groups is not None else tuple(METRIC_GROUPS)
    unknown_groups = [g for g in group_names if g not in ALL_METRIC_GROUPS]
    if unknown_groups:
        known = ", ".join(ALL_METRIC_GROUPS)
        raise KeyError(
            f"unknown metric group(s) {unknown_groups!r}; available: {known}"
        )
    store = _resolve_cache(cache)
    transport_used = resolve_transport(transport, n, len(group_names))
    mp_ctx = resolve_mp_context(mp_context)
    stats_before = store.stats.snapshot()
    registry = get_registry()
    registry_before = registry.snapshot()
    trc = tracer if tracer is not None else get_tracer()
    log = resolve_journal(journal)
    run_id = log.begin_run(
        {
            "models": [label for label, _ in spec],
            "n": n, "seeds": seeds, "base_seed": base_seed,
            "groups": list(group_names),
        }
    )
    log.emit(
        "battery_start",
        models=[label for label, _ in spec],
        n=n, seeds=seeds, jobs=jobs, groups=list(group_names),
        timeout=timeout, retries=retries, transport=transport_used,
    )
    registry.gauge("battery.jobs").set(jobs)
    sum_params = {
        "path_sample_threshold": path_sample_threshold,
        "path_samples": path_samples,
        "min_tail": min_tail,
        "backend": backend,
    }
    obs_base = {"trace": trc.enabled, "profile_dir": profile_dir}

    with _ambient_obs(trc), trc.span(
        "battery", models=[label for label, _ in spec], n=n,
        seeds=seeds, jobs=jobs, run_id=run_id, transport=transport_used,
    ) as battery_span:
        # Shared transport publishes each generated topology once into a
        # snapshot spool — persistent under the cache directory when one
        # is in play (so later runs attach instead of regenerating),
        # ephemeral tmpfs otherwise.
        spool: Optional[SnapshotSpool] = None
        if transport_used == "shared":
            spool_root = (
                store.root / "snapshots" if isinstance(store, ResultCache) else None
            )
            spool = SnapshotSpool(spool_root)

        # One warm pool for the whole run: the generate and measure waves
        # (and every retry round) reuse the same worker processes, so the
        # per-process transport attach caches stay hot across waves.
        pool = WorkerPool(jobs, mp_ctx) if jobs > 1 else None

        def run_units(task_list, task_meta):
            if not task_list:
                return {}
            if pool is not None:
                return _run_parallel(
                    task_list, jobs, timeout, retries, log, task_meta,
                    mp_context=mp_ctx,
                    on_rebuild=spool.reap_staging if spool is not None else None,
                    pool=pool,
                )
            return _run_serial(task_list, timeout, retries, log, task_meta)

        def absorb(outcome: _UnitOutcome) -> Dict[str, Any]:
            extras = outcome.extras or {}
            if extras.get("metrics"):
                registry.merge(extras["metrics"])
            if trc.enabled and extras.get("spans"):
                trc.adopt(extras["spans"], parent=battery_span)
            return extras

        records: List[UnitRecord] = []
        tasks: List[Dict[str, Any]] = []
        meta: Dict[int, Dict[str, Any]] = {}
        gen_tasks: List[Dict[str, Any]] = []
        gen_meta: Dict[int, Dict[str, Any]] = {}
        # One slot per (model, replicate): cached values plus pending cell keys.
        units: List[Dict[str, Any]] = []
        for label, generator in spec:
            identity, params = _identity(generator)
            # Engine-sensitive generators produce engine-dependent graphs, so
            # the resolved engine joins their cache cell (and only theirs —
            # draw-order-preserving generators stay engine-transparent).  The
            # seed derivation stays on the plain params either way: the same
            # roster must map to the same seeds under every engine.
            cache_params = generator.cache_params(n)
            for rep in range(seeds):
                unit_seed = derive_seed(
                    "battery-unit", identity, params, n, base_seed, rep
                )
                unit = {
                    "label": label,
                    "params": params,
                    "replicate": rep,
                    "seed": unit_seed,
                    "values": {},
                    "pending": {},
                    "task": None,
                    "gen_task": None,
                    "gen_key": None,
                    "handle": None,
                }
                for group in group_names:
                    payload = _cell_payload(
                        identity, cache_params, n, unit_seed, group, sum_params
                    )
                    key = canonical_key(payload)
                    hit = store.get(key, payload)
                    if hit is not None:
                        unit["values"][group] = hit
                        records.append(
                            UnitRecord(label, rep, group, unit_seed, True, 0.0)
                        )
                        registry.counter("battery.cells.cached").inc()
                        log.emit(
                            "cache_hit", model=label, replicate=rep,
                            seed=unit_seed, group=group, key=key,
                        )
                    else:
                        unit["pending"][group] = (key, payload)
                if unit["pending"] and transport_used == "regenerate":
                    index = len(tasks)
                    unit["task"] = index
                    meta[index] = {
                        "model": label, "replicate": rep,
                        "seed": unit_seed, "kind": "full",
                    }
                    tasks.append(
                        {
                            "index": index,
                            "kind": "full",
                            "generator": generator,
                            "n": n,
                            "seed": unit_seed,
                            "groups": tuple(unit["pending"]),
                            "sum_params": sum_params,
                            "obs": dict(
                                obs_base,
                                model=label,
                                replicate=rep,
                                label=f"{label}-rep{rep}",
                            ),
                        }
                    )
                elif unit["pending"]:
                    # Shared transport: the generation is its own cached
                    # unit keyed on (model identity, params, n, seed) —
                    # a spool hit (this run or a previous one sharing the
                    # cache directory) skips it entirely.
                    gen_payload = generation_payload(
                        identity, cache_params, n, unit_seed
                    )
                    gen_key = canonical_key(gen_payload)
                    unit["gen_key"] = gen_key
                    handle = spool.probe(gen_key)
                    if handle is not None:
                        unit["handle"] = handle
                        records.append(
                            UnitRecord(label, rep, "generate", unit_seed, True, 0.0)
                        )
                        registry.counter("battery.generations.cached").inc()
                        log.emit(
                            "snapshot_hit", model=label, replicate=rep,
                            seed=unit_seed, key=gen_key,
                        )
                    else:
                        index = len(gen_tasks)
                        unit["gen_task"] = index
                        gen_meta[index] = {
                            "model": label, "replicate": rep,
                            "seed": unit_seed, "kind": "generate",
                        }
                        gen_tasks.append(
                            {
                                "index": index,
                                "kind": "generate",
                                "generator": generator,
                                "n": n,
                                "seed": unit_seed,
                                "spool_path": str(spool.path_for(gen_key)),
                                "obs": dict(
                                    obs_base,
                                    model=label,
                                    replicate=rep,
                                    label=f"{label}-rep{rep}-gen",
                                ),
                            }
                        )
                units.append(unit)

        try:
            outcomes = run_units(tasks, meta)
            for unit in units:
                if unit["task"] is None:
                    continue
                outcome = outcomes[unit["task"]]
                extras = absorb(outcome)
                if outcome.status == "ok":
                    registry.counter("battery.units.completed").inc()
                    registry.counter("battery.cells.computed").inc(
                        len(unit["pending"])
                    )
                    registry.histogram("battery.unit.seconds").observe(
                        outcome.seconds
                    )
                    rusage = extras.get("rusage") or {}
                    records.append(
                        UnitRecord(
                            unit["label"], unit["replicate"], "generate",
                            unit["seed"], False, outcome.gen_seconds,
                            max_rss_kb=rusage.get("max_rss_kb"),
                            cpu_seconds=rusage.get("cpu_seconds"),
                        )
                    )
                    giant_seconds = (outcome.timings or {}).get("giant")
                    if giant_seconds is not None:
                        records.append(
                            UnitRecord(
                                unit["label"], unit["replicate"], "giant",
                                unit["seed"], False, giant_seconds,
                            )
                        )
                    for group, (key, payload) in unit["pending"].items():
                        unit["values"][group] = outcome.values[group]
                        store.put(key, outcome.values[group], payload)
                        records.append(
                            UnitRecord(
                                unit["label"], unit["replicate"], group,
                                unit["seed"], False, outcome.timings[group],
                            )
                        )
                else:
                    registry.counter("battery.units.failed").inc()
                    unit["error"] = outcome.error
                    records.append(
                        UnitRecord(
                            unit["label"], unit["replicate"], "unit",
                            unit["seed"], False, outcome.seconds,
                            status=outcome.status, error=outcome.error,
                        )
                    )

            # Shared transport, wave 1: run the missed generations; each
            # publishes its topology into the spool and hands back only a
            # handle.  A failed generation fails its whole replicate (no
            # graph, nothing to measure).
            gen_outcomes = run_units(gen_tasks, gen_meta)
            for unit in units:
                if unit["gen_task"] is None:
                    continue
                outcome = gen_outcomes[unit["gen_task"]]
                extras = absorb(outcome)
                handle = extras.get("handle")
                if outcome.status == "ok" and handle is not None:
                    spool.adopt(unit["gen_key"], handle)
                    unit["handle"] = handle
                    registry.counter("battery.generations.computed").inc()
                    registry.counter("battery.units.completed").inc()
                    registry.histogram("battery.unit.seconds").observe(
                        outcome.seconds
                    )
                    rusage = extras.get("rusage") or {}
                    records.append(
                        UnitRecord(
                            unit["label"], unit["replicate"], "generate",
                            unit["seed"], False, outcome.gen_seconds,
                            max_rss_kb=rusage.get("max_rss_kb"),
                            cpu_seconds=rusage.get("cpu_seconds"),
                        )
                    )
                else:
                    registry.counter("battery.units.failed").inc()
                    unit["error"] = outcome.error or "generation returned no handle"
                    records.append(
                        UnitRecord(
                            unit["label"], unit["replicate"], "unit",
                            unit["seed"], False, outcome.seconds,
                            status=outcome.status if outcome.status != "ok" else "failed",
                            error=unit["error"],
                        )
                    )

            # Shared transport, wave 2: every pending metric group of every
            # replicate with a published topology becomes its own unit —
            # retries re-attach (a dict lookup after the first touch),
            # never regenerate, and a failure costs one group, not the
            # replicate.
            measure_tasks: List[Dict[str, Any]] = []
            measure_meta: Dict[int, Dict[str, Any]] = {}
            owners: Dict[int, Tuple[Dict[str, Any], str]] = {}
            for unit in units:
                if unit["handle"] is None or not unit["pending"]:
                    continue
                for group in unit["pending"]:
                    index = len(measure_tasks)
                    owners[index] = (unit, group)
                    measure_meta[index] = {
                        "model": unit["label"], "replicate": unit["replicate"],
                        "seed": unit["seed"], "kind": "measure", "group": group,
                    }
                    measure_tasks.append(
                        {
                            "index": index,
                            "kind": "measure",
                            "handle": unit["handle"],
                            "seed": unit["seed"],
                            "groups": (group,),
                            "sum_params": sum_params,
                            "obs": dict(
                                obs_base,
                                model=unit["label"],
                                replicate=unit["replicate"],
                                label=(
                                    f"{unit['label']}-rep{unit['replicate']}-{group}"
                                ),
                            ),
                        }
                    )
            measure_outcomes = run_units(measure_tasks, measure_meta)
            for index, (unit, group) in owners.items():
                outcome = measure_outcomes[index]
                absorb(outcome)
                key, payload = unit["pending"][group]
                if outcome.status == "ok":
                    registry.counter("battery.units.completed").inc()
                    registry.counter("battery.cells.computed").inc()
                    registry.histogram("battery.unit.seconds").observe(
                        outcome.seconds
                    )
                    unit["values"][group] = outcome.values[group]
                    store.put(key, outcome.values[group], payload)
                    records.append(
                        UnitRecord(
                            unit["label"], unit["replicate"], group,
                            unit["seed"], False, outcome.timings[group],
                        )
                    )
                    giant_seconds = (outcome.timings or {}).get("giant")
                    if giant_seconds is not None:
                        records.append(
                            UnitRecord(
                                unit["label"], unit["replicate"], "giant",
                                unit["seed"], False, giant_seconds,
                            )
                        )
                else:
                    registry.counter("battery.units.failed").inc()
                    if not unit.get("error"):
                        unit["error"] = outcome.error
                    records.append(
                        UnitRecord(
                            unit["label"], unit["replicate"], group,
                            unit["seed"], False, outcome.seconds,
                            status=outcome.status, error=outcome.error,
                        )
                    )
            if spool is not None:
                # Refcounted cleanup: each replicate took one reference at
                # probe/publish time; dropping it lets an ephemeral spool
                # unlink the snapshot immediately (persistent spools keep
                # theirs for the next run to attach).
                for unit in units:
                    if unit["gen_key"] is not None:
                        spool.release(unit["gen_key"])
        finally:
            if pool is not None:
                pool.shutdown(wait=True)
            if spool is not None:
                spool.cleanup()

        all_fields = {f for group_fields in METRIC_GROUPS.values() for f in group_fields}
        entries: List[BatteryEntry] = []
        for label, generator in spec:
            _, params = _identity(generator)
            model_units = [u for u in units if u["label"] == label]
            summaries: List[Union[TopologySummary, PartialSummary]] = []
            for unit in model_units:
                merged: Dict[str, float] = {}
                for group_values in unit["values"].values():
                    merged.update(group_values)
                if set(merged) == all_fields:
                    summaries.append(TopologySummary.from_dict(label, merged))
                else:
                    # Deliberately-partial batteries (subset groups, or extra
                    # groups beyond the TopologySummary scalars) and failed
                    # units both get an explicit partial summary, never None.
                    # ``missing`` is always relative to the full
                    # TopologySummary group set, so a partial summary says
                    # what a full summary would still need — extra groups
                    # (e.g. robustness) appear in ``groups``, never here.
                    present = tuple(g for g in group_names if g in unit["values"])
                    missing = tuple(g for g in METRIC_GROUPS if g not in unit["values"])
                    summaries.append(
                        PartialSummary(
                            name=label, values=merged, groups=present,
                            missing=missing, error=unit.get("error"),
                        )
                    )
            entries.append(
                BatteryEntry(
                    model=label,
                    params=params,
                    seeds=tuple(u["seed"] for u in model_units),
                    summaries=tuple(summaries),
                )
            )
    result = BatteryResult(
        entries=entries,
        records=records,
        stats=store.stats.delta(stats_before),
        jobs=jobs,
        elapsed=time.perf_counter() - started,
        metrics=diff_snapshots(registry.snapshot(), registry_before),
        run_id=run_id,
        transport=transport_used,
    )
    log.emit(
        "battery_end",
        elapsed=round(result.elapsed, 6),
        failures=len(result.failures),
        cache=result.stats.as_dict(),
    )
    return result


def _summarize_target(
    target,
    n: int,
    store: Union[ResultCache, NullCache],
    sum_params: Mapping[str, Any],
) -> TopologySummary:
    """Resolve *target* (None → reference map; Graph; TopologySummary) to a
    summary, caching the reference map's cells like any other unit."""
    if isinstance(target, TopologySummary):
        return target
    if isinstance(target, Graph):
        return summarize(target, seed=0, **sum_params)
    if target is not None:
        raise TypeError(
            f"target must be None, a Graph or a TopologySummary, "
            f"not {type(target).__name__}"
        )
    from ..datasets.asmap import reference_as_map

    values: Dict[str, float] = {}
    pending: Dict[str, Tuple[str, Dict[str, Any]]] = {}
    for group in METRIC_GROUPS:
        payload = _cell_payload("__reference_as_map__", {}, n, 0, group, sum_params)
        key = canonical_key(payload)
        hit = store.get(key, payload)
        if hit is not None:
            values.update(hit)
        else:
            pending[group] = (key, payload)
    if pending:
        graph = reference_as_map(n)
        computed = compute_metric_groups(graph, tuple(pending), seed=0, **sum_params)
        for group, (key, payload) in pending.items():
            store.put(key, computed[group], payload)
            values.update(computed[group])
    return TopologySummary.from_dict("reference", values)


def compare_models(
    models,
    n: int,
    seeds: int = 3,
    base_seed: int = 21,
    target=None,
    metrics: Optional[Dict[str, Tuple[str, float]]] = None,
    jobs: int = 1,
    cache: CacheLike = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    journal: JournalLike = None,
    tracer: Optional[Tracer] = None,
    profile_dir: Union[None, str, Path] = None,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
    backend: str = "auto",
    transport: str = "auto",
    mp_context=None,
) -> ComparisonBattery:
    """Score *models* against *target* over the full battery.

    *target* defaults to the frozen reference AS map at size *n* (cached
    through the same store as the model cells).  Scoring itself is cheap
    arithmetic and stays in the parent; all topology generation and metric
    computation parallelizes/caches via :func:`run_battery`, including its
    fault containment: replicates whose unit failed (see *timeout* /
    *retries*) are skipped in scoring with a ``RuntimeWarning`` naming the
    model, never crashing the comparison, and the reported cache counters
    are per-run deltas even when a shared :class:`ResultCache` instance is
    reused across calls.  *tracer* / *profile_dir* / *transport* /
    *mp_context* thread through to :func:`run_battery`; the target-summary
    and scoring stages emit their own spans.
    """
    store = _resolve_cache(cache)
    log = resolve_journal(journal)
    stats_before = store.stats.snapshot()
    trc = tracer if tracer is not None else get_tracer()
    registry = get_registry()
    registry_before = registry.snapshot()
    sum_params = {
        "path_sample_threshold": path_sample_threshold,
        "path_samples": path_samples,
        "min_tail": min_tail,
        "backend": backend,
    }
    with _ambient_obs(trc), trc.span(
        "compare", models=len(_normalize_models(models)), n=n, seeds=seeds
    ):
        with trc.span("target.summarize", n=n):
            target_summary = _summarize_target(target, n, store, sum_params)
        battery = run_battery(
            models,
            n=n,
            seeds=seeds,
            base_seed=base_seed,
            jobs=jobs,
            cache=store,
            timeout=timeout,
            retries=retries,
            journal=log,
            tracer=trc,
            profile_dir=profile_dir,
            transport=transport,
            mp_context=mp_context,
            **sum_params,
        )
        # Report this run's counters spanning the target cells as well as
        # the battery's own (run_battery's deltas start after the target
        # probe), for both the cache stats and the metrics snapshot.
        battery.stats = store.stats.delta(stats_before)
        battery.metrics = diff_snapshots(registry.snapshot(), registry_before)
        scores: List[ModelScore] = []
        with trc.span("score", models=len(battery.entries)):
            for entry in battery.entries:
                survivors: List[TopologySummary] = []
                comparisons: List[ComparisonResult] = []
                skipped = 0
                for summary in entry.summaries:
                    if isinstance(summary, PartialSummary) and summary.failed:
                        skipped += 1
                        continue
                    # Non-failed partial summaries (subset-group batteries)
                    # raise a ValueError naming the missing groups inside
                    # compare_summaries.
                    comparisons.append(
                        compare_summaries(summary, target_summary, metrics=metrics)
                    )
                    survivors.append(summary)
                if skipped:
                    warnings.warn(
                        f"model {entry.model!r}: {skipped} of {len(entry.summaries)} "
                        f"replicate(s) failed; scoring the {len(survivors)} "
                        f"surviving replicate(s) only "
                        f"(see BatteryResult.failures for tracebacks)",
                        RuntimeWarning,
                        stacklevel=2,
                    )
                scores.append(
                    ModelScore(
                        model=entry.model,
                        scores=tuple(c.score for c in comparisons),
                        comparisons=tuple(comparisons),
                        summaries=tuple(survivors),
                    )
                )
    return ComparisonBattery(target=target_summary, scores=scores, battery=battery)
