"""Structured JSONL run journal for battery executions.

Long calibration sweeps need an audit trail that survives crashes: which
unit ran where, how long it took, whether it came from the cache, and —
when something dies — the full traceback and the seed needed to reproduce
it.  :class:`RunJournal` appends one JSON object per line to a plain text
file; each event carries a wall-clock timestamp, the event name, and
whatever structured fields the emitter attaches (seed, cache key, duration,
worker pid, attempt number, traceback).

The journal is append-only and crash-safe by construction: every event is
written and flushed in a single short-lived open, so a killed run leaves a
readable prefix, and successive runs with the same ``--journal`` path
accumulate into one history.  :meth:`RunJournal.read` parses a journal
back, skipping any torn final line.

Event vocabulary used by :mod:`repro.core.battery` (emitters may add more):

====================  =====================================================
event                 meaning
====================  =====================================================
``battery_start``     one :func:`run_battery` call began (models, n, seeds,
                      jobs, groups, timeout, retries)
``cache_hit``         a (unit, group) cell was served from the cache
``unit_start``        a work unit was submitted/started (attempt number)
``unit_finish``       a unit completed (duration, worker pid)
``unit_retry``        a failed/timed-out attempt will be retried
``unit_fail``         a unit exhausted its attempts (status, traceback)
``pool_broken``       a worker process died abruptly; the pool is rebuilt
``battery_end``       the run finished (elapsed, failures, cache counters)
====================  =====================================================
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

__all__ = ["RunJournal", "NullJournal", "resolve_journal"]

JournalLike = Union[None, str, Path, "RunJournal", "NullJournal"]


class RunJournal:
    """Append-only JSONL event log at *path*.

    Each :meth:`emit` call writes one line ``{"ts": ..., "event": ...,
    **fields}`` and flushes it, so the file is a faithful prefix of the run
    at any instant.  Values must be JSON-serializable; anything that is not
    is rendered through ``repr`` rather than failing the run — the journal
    must never be the thing that crashes a battery.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (timestamped, flushed)."""
        record: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=repr)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")

    @classmethod
    def read(cls, path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Parse a journal file back into a list of event dicts.

        A torn final line (the run was killed mid-write) is skipped rather
        than raising — the journal degrades to its valid prefix.
        """
        events: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return events

    def events(self) -> List[Dict[str, Any]]:
        """Events currently in this journal's file (empty if absent)."""
        if not self.path.exists():
            return []
        return self.read(self.path)

    def __repr__(self) -> str:
        return f"<RunJournal {self.path}>"


class NullJournal:
    """Journal-shaped no-op (journaling disabled)."""

    path: Optional[Path] = None

    def emit(self, event: str, **fields: Any) -> None:
        """Discard the event."""

    def events(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []


def resolve_journal(journal: JournalLike) -> Union[RunJournal, NullJournal]:
    """Coerce the accepted journal specs: None → no-op, path → file journal,
    instance → itself."""
    if journal is None:
        return NullJournal()
    if isinstance(journal, (str, Path)):
        return RunJournal(journal)
    return journal
