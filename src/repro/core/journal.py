"""Structured JSONL run journal for battery executions.

Long calibration sweeps need an audit trail that survives crashes: which
unit ran where, how long it took, whether it came from the cache, and —
when something dies — the full traceback and the seed needed to reproduce
it.  :class:`RunJournal` appends one JSON object per line to a plain text
file; each event carries a wall-clock timestamp, the event name, the
current ``run_id``, and whatever structured fields the emitter attaches
(seed, cache key, duration, worker pid, attempt number, traceback,
per-group timings, peak RSS).

The journal is append-only and crash-safe: events are written through one
held, **line-buffered** handle (opened lazily on first emit), so every
line is flushed to the OS as it is written — a killed run leaves a
readable prefix — without paying an ``open``/``close`` syscall pair per
event the way the original implementation did (see
``benchmarks/bench_journal_emit.py`` for the measured difference).

Successive runs appended to the same ``--journal`` path are told apart by
**run ids**: :meth:`RunJournal.begin_run` derives a short stable-ish hash
from the run's configuration plus a monotonic start stamp, and every
subsequent event carries it.  :meth:`RunJournal.read` still returns the
flat event list; :meth:`RunJournal.read_runs` groups it back into one
event list per run (``repro journal summarize`` reports per run).

Event vocabulary used by :mod:`repro.core.battery` (emitters may add more):

====================  =====================================================
event                 meaning
====================  =====================================================
``battery_start``     one :func:`run_battery` call began (models, n, seeds,
                      jobs, groups, timeout, retries)
``cache_hit``         a (unit, group) cell was served from the cache
``unit_start``        a work unit was submitted/started (attempt number)
``unit_finish``       a unit completed (duration, worker pid, per-group
                      seconds, peak RSS, CPU seconds)
``unit_retry``        a failed/timed-out attempt will be retried
``unit_fail``         a unit exhausted its attempts (status, traceback)
``pool_broken``       a worker process died abruptly; the pool is rebuilt
``battery_end``       the run finished (elapsed, failures, cache counters)
====================  =====================================================
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = ["RunJournal", "NullJournal", "resolve_journal", "derive_run_id"]

JournalLike = Union[None, str, Path, "RunJournal", "NullJournal"]


def derive_run_id(config: Optional[Mapping[str, Any]] = None) -> str:
    """A short id for one run: hash of its configuration + monotonic start.

    The config part makes ids meaningful (same command → same prefix
    material), the monotonic-clock part makes two back-to-back identical
    runs distinct; the pid guards against clock-resolution collisions
    across concurrent processes appending to one journal.
    """
    basis = json.dumps(config or {}, sort_keys=True, default=repr)
    stamp = f"{basis}|{time.monotonic_ns()}|{os.getpid()}"
    return hashlib.sha256(stamp.encode("utf-8")).hexdigest()[:12]


class RunJournal:
    """Append-only JSONL event log at *path*.

    Each :meth:`emit` call writes one line ``{"ts": ..., "event": ...,
    "run_id": ..., **fields}`` through a held line-buffered handle (every
    line reaches the OS immediately, so the file is a faithful prefix of
    the run at any instant).  Values must be JSON-serializable; anything
    that is not is rendered through ``repr`` rather than failing the run —
    the journal must never be the thing that crashes a battery.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id: Optional[str] = None
        self._handle = None

    def begin_run(self, config: Optional[Mapping[str, Any]] = None) -> str:
        """Start a new run: derive, store, and return its ``run_id``.

        Every event emitted after this call is stamped with the id, so
        runs accumulated in one file stay distinguishable.
        """
        self.run_id = derive_run_id(config)
        return self.run_id

    def _ensure_handle(self):
        if self._handle is None or self._handle.closed:
            # buffering=1: line-buffered, so each emitted line is flushed
            # on its trailing newline — crash-safe without reopening.
            self._handle = open(self.path, "a", encoding="utf-8", buffering=1)
        return self._handle

    def emit(self, event: str, **fields: Any) -> None:
        """Append one event line (timestamped, run-stamped, flushed)."""
        record: Dict[str, Any] = {"ts": round(time.time(), 6), "event": event}
        if self.run_id is not None:
            record["run_id"] = self.run_id
        record.update(fields)
        line = json.dumps(record, sort_keys=False, default=repr)
        self._ensure_handle().write(line + "\n")

    def close(self) -> None:
        """Release the held handle (emit reopens it if needed)."""
        if self._handle is not None and not self._handle.closed:
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - interpreter-shutdown ordering
        try:
            self.close()
        except Exception:
            pass

    @classmethod
    def read(cls, path: Union[str, Path]) -> List[Dict[str, Any]]:
        """Parse a journal file back into a flat list of event dicts.

        A torn final line (the run was killed mid-write) is skipped rather
        than raising — the journal degrades to its valid prefix.
        """
        events: List[Dict[str, Any]] = []
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
        return events

    @classmethod
    def read_runs(cls, path: Union[str, Path]) -> Dict[str, List[Dict[str, Any]]]:
        """Parse a journal and group its events by ``run_id``.

        Runs appear in first-seen order; events written before run
        stamping existed group under ``"-"``.
        """
        from ..obs.analysis import group_runs

        return group_runs(cls.read(path))

    def events(self) -> List[Dict[str, Any]]:
        """Events currently in this journal's file (empty if absent)."""
        if not self.path.exists():
            return []
        return self.read(self.path)

    def __repr__(self) -> str:
        return f"<RunJournal {self.path}>"


class NullJournal:
    """Journal-shaped no-op (journaling disabled)."""

    path: Optional[Path] = None
    run_id: Optional[str] = None

    def begin_run(self, config: Optional[Mapping[str, Any]] = None) -> str:
        """Derive an id (callers may report it) but record nothing."""
        self.run_id = derive_run_id(config)
        return self.run_id

    def emit(self, event: str, **fields: Any) -> None:
        """Discard the event."""

    def close(self) -> None:
        """Nothing to release."""

    def events(self) -> List[Dict[str, Any]]:
        """Always empty."""
        return []


def resolve_journal(journal: JournalLike) -> Union[RunJournal, NullJournal]:
    """Coerce the accepted journal specs: None → no-op, path → file journal,
    instance → itself."""
    if journal is None:
        return NullJournal()
    if isinstance(journal, (str, Path)):
        return RunJournal(journal)
    return journal
