"""Zero-copy shared-graph transport for the parallel battery.

The battery's work units used to be welded to private topologies: every
(model, replicate) unit regenerated its graph inside its worker, so a
retry regenerated it, a cache-resume regenerated it, and a replicate's
metric groups could never run concurrently because they all lived inside
the one worker holding the graph.  This module decouples *producing* a
topology from *measuring* it:

* :func:`publish_graph` writes a generated (or store-loaded) graph once —
  as a fingerprint-stamped mmap CSR snapshot (the PR 7 on-disk format,
  staged to a spool directory that defaults to ``/dev/shm`` tmpfs when
  available) or as ``multiprocessing.shared_memory`` segments — and
  returns a small, picklable :class:`SharedGraphHandle`;
* :func:`attach_graph` reopens a handle read-only in any process.  The
  arrays are memory-mapped (or shm-backed) — nothing is pickled, nothing
  is regenerated, and the OS shares the physical pages between every
  attached worker.  A per-process attach cache keyed by the handle's
  fingerprint makes repeated attaches (one worker measuring many metric
  groups of the same topology) cost a dict lookup;
* :class:`SnapshotSpool` manages the published snapshots: content-keyed
  paths, probe-before-publish reuse (a generation that already ran —
  even in a previous battery run sharing the same cache directory — is
  never repeated), parent-side refcounts with unlink-at-zero for
  ephemeral spools, and ``.tmp`` staging reaping so a worker crash
  mid-publish never leaks half-written snapshots past a pool rebuild.

:func:`resolve_transport` centralizes the battery's transport choice
(``auto`` | ``regenerate`` | ``shared``), mirroring the PR 4/PR 5
``backend``/``engine`` contract: an explicit argument always wins,
``auto`` consults the ``REPRO_TRANSPORT`` environment variable, and
otherwise shares at or above :data:`AUTO_SHARED_NODES` nodes when at
least :data:`AUTO_SHARED_GROUPS` metric groups ride on each replicate
(below that, publishing costs more than it saves).  Transport is a
*scheduling* choice, never a semantics choice: both transports produce
bit-identical battery results and identical cache cells.

:func:`resolve_mp_context` is the companion knob for the worker pools
themselves: every ``ProcessPoolExecutor`` in the battery, experiment,
and calibration layers receives an explicit multiprocessing context, so
pools (and the transport riding on them) behave identically under
``fork``, ``spawn``, and ``forkserver`` start methods.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

import numpy as np

from ..graph.csr import CSRView
from ..graph.graph import Graph
from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer
from ..store.snapshot import load_csr_snapshot, save_csr_snapshot, snapshot_info

__all__ = [
    "SharedGraphHandle",
    "SnapshotSpool",
    "publish_graph",
    "attach_graph",
    "attach_view",
    "materialize_view",
    "resolve_transport",
    "resolve_mp_context",
    "clear_attach_cache",
    "set_attach_cache_limit",
    "TRANSPORTS",
    "AUTO_SHARED_NODES",
    "AUTO_SHARED_GROUPS",
    "REPRO_TRANSPORT_ENV",
    "REPRO_TRANSPORT_DIR_ENV",
    "REPRO_MP_START_ENV",
]

PathLike = Union[str, Path]

#: Accepted values for the battery's ``transport`` parameter.
TRANSPORTS = ("auto", "regenerate", "shared")

#: ``transport="auto"`` shares topologies at or above this many nodes.
AUTO_SHARED_NODES = 2000

#: ...and only when a replicate carries at least this many metric groups
#: (publishing a snapshot for a single-group unit saves nothing).
AUTO_SHARED_GROUPS = 2

#: Environment variable consulted by ``transport="auto"`` (values:
#: ``regenerate``, ``shared``, or ``auto``); explicit arguments win.
REPRO_TRANSPORT_ENV = "REPRO_TRANSPORT"

#: Overrides where ephemeral spools stage their snapshots (default:
#: ``/dev/shm`` when present — tmpfs, so "disk" pages are shared memory —
#: else the system temp dir).
REPRO_TRANSPORT_DIR_ENV = "REPRO_TRANSPORT_DIR"

#: Multiprocessing start method for every battery/experiment/calibration
#: pool (values: ``fork``, ``spawn``, ``forkserver``); empty means the
#: platform default.  Explicit ``mp_context`` arguments win.
REPRO_MP_START_ENV = "REPRO_MP_START"


def resolve_transport(transport: str = "auto", n: int = 0, groups: int = 1) -> str:
    """Resolve a ``transport`` argument to ``"regenerate"`` or ``"shared"``.

    Explicit choices pass through (after validation).  ``"auto"`` defers
    first to the ``REPRO_TRANSPORT`` environment variable — which lets CI
    force shared transport across an unmodified suite — then shares when
    *n* ≥ :data:`AUTO_SHARED_NODES` and *groups* ≥
    :data:`AUTO_SHARED_GROUPS`.
    """
    if transport not in TRANSPORTS:
        choices = ", ".join(TRANSPORTS)
        raise ValueError(
            f"unknown transport {transport!r}; choose one of: {choices}"
        )
    if transport != "auto":
        return transport
    env = os.environ.get(REPRO_TRANSPORT_ENV, "").strip().lower()
    if env in ("regenerate", "shared"):
        return env
    if env not in ("", "auto"):
        choices = ", ".join(TRANSPORTS)
        raise ValueError(
            f"invalid {REPRO_TRANSPORT_ENV}={env!r}; choose one of: {choices}"
        )
    if n >= AUTO_SHARED_NODES and groups >= AUTO_SHARED_GROUPS:
        return "shared"
    return "regenerate"


def resolve_mp_context(context=None):
    """Resolve an ``mp_context`` argument to an explicit multiprocessing
    context object.

    *context* may be a context object (returned as-is), a start-method
    name (``"fork"`` / ``"spawn"`` / ``"forkserver"``), or ``None`` —
    which consults the ``REPRO_MP_START`` environment variable and falls
    back to the platform default.  Passing the result into every
    ``ProcessPoolExecutor`` pins the start method explicitly, so a host
    that changes its default (or a CI job forcing ``spawn``) runs the
    same pools the tests exercised.
    """
    if context is None:
        context = os.environ.get(REPRO_MP_START_ENV, "").strip().lower() or None
    if context is None:
        return multiprocessing.get_context()
    if isinstance(context, str):
        try:
            return multiprocessing.get_context(context)
        except ValueError:
            known = ", ".join(multiprocessing.get_all_start_methods())
            raise ValueError(
                f"unknown multiprocessing start method {context!r}; "
                f"choose one of: {known}"
            ) from None
    return context


# --------------------------------------------------------------------------
# Handles


@dataclass(frozen=True)
class SharedGraphHandle:
    """A picklable claim ticket for one published topology.

    The handle is what travels to workers instead of the graph: a method
    tag, a location (snapshot directory for ``spool``, segment-name
    prefix for ``shm``), and enough identity — content fingerprint,
    name, counts, shared byte size — to key per-process attach caches
    and battery telemetry without touching the arrays.
    """

    method: str  # "spool" | "shm"
    location: str
    fingerprint: int
    name: str = ""
    num_nodes: int = 0
    num_edges: int = 0
    nbytes: int = 0

    def attach(self) -> Graph:
        """Materialize (or fetch from this process's attach cache) the
        published graph; see :func:`attach_graph`."""
        return attach_graph(self)

    def attach_view(self) -> CSRView:
        """The raw shared :class:`CSRView`; see :func:`attach_view`."""
        return attach_view(self)


# Segment names inside one shm publication, in publish order.
_SHM_PARTS = ("meta", "indptr", "indices", "weights", "nodes")


def _shm_name(location: str, part: str) -> str:
    return f"{location}-{part}"


def _open_shm(name: str, create: bool = False, size: int = 0):
    from multiprocessing import shared_memory

    segment = shared_memory.SharedMemory(name=name, create=create, size=size)
    if not create:
        # Python < 3.13 registers *attached* segments with the process's
        # resource tracker, which then unlinks them when this process
        # exits — yanking the segment out from under every other attached
        # process.  Only the publisher may own the lifetime.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker API drift
            pass
    return segment


def _publish_shm(graph_or_view, location: str, name: str, fingerprint: int):
    """Write a view's arrays into shared-memory segments under *location*."""
    view = (
        graph_or_view if isinstance(graph_or_view, CSRView)
        else graph_or_view.csr()
    )
    nodes = view.nodes
    if isinstance(nodes, range) or all(
        isinstance(node, int) and node == i for i, node in enumerate(nodes)
    ):
        node_blob = b""
        node_mode = "range"
    else:
        node_blob = json.dumps(list(nodes)).encode("utf-8")
        node_mode = "json"
    arrays = {
        "indptr": np.ascontiguousarray(view.indptr, dtype=np.int64),
        "indices": np.ascontiguousarray(view.indices, dtype=np.int64),
        "weights": np.ascontiguousarray(view.weights, dtype=np.float64),
    }
    meta = {
        "num_nodes": view.num_nodes,
        "num_edges": view.num_edges,
        "name": name,
        "fingerprint": fingerprint,
        "nodes": node_mode,
        "lengths": {key: len(arr) for key, arr in arrays.items()},
        "node_bytes": len(node_blob),
    }
    meta_blob = json.dumps(meta).encode("utf-8")
    segments = []
    total = 0
    try:
        for part, blob in (("meta", meta_blob), ("nodes", node_blob)):
            if part == "nodes" and not node_blob:
                continue
            segment = _open_shm(
                _shm_name(location, part), create=True, size=max(1, len(blob))
            )
            segment.buf[: len(blob)] = blob
            segments.append(segment)
            total += len(blob)
        for part, arr in arrays.items():
            segment = _open_shm(
                _shm_name(location, part), create=True, size=max(1, arr.nbytes)
            )
            np.frombuffer(segment.buf, dtype=arr.dtype, count=len(arr))[:] = arr
            segments.append(segment)
            total += arr.nbytes
    except BaseException:
        for segment in segments:
            try:
                segment.close()
                segment.unlink()
            except OSError:  # pragma: no cover - cleanup best effort
                pass
        raise
    for segment in segments:
        segment.close()
    return total


def _quiet_close(segment) -> None:
    """Close an attach-side shm segment without tearing pages out from
    under live arrays.

    Arrays made with ``np.frombuffer(segment.buf, ...)`` export the
    mapped buffer, so ``close()`` raises ``BufferError`` while any
    caller still holds one.  In that case the segment object is detached
    instead: the memoryview/mmap chain stays alive exactly as long as
    the arrays do, and the last array's release unmaps the pages — no
    noisy destructor retries at interpreter shutdown.
    """
    try:
        segment.close()
    except BufferError:
        segment._buf = None
        segment._mmap = None


def _attach_shm_view(location: str) -> CSRView:
    """Reopen an shm publication as a read-only :class:`CSRView`.

    The opened segments are parked in the process-wide attach cache entry
    (closing them would invalidate the arrays), so repeated attaches of
    one publication reuse both the mapping and the view.
    """
    meta_seg = _open_shm(_shm_name(location, "meta"))
    meta = json.loads(bytes(meta_seg.buf).split(b"\x00", 1)[0].decode("utf-8"))
    segments = [meta_seg]
    arrays = {}
    for part, dtype in (
        ("indptr", np.int64), ("indices", np.int64), ("weights", np.float64)
    ):
        segment = _open_shm(_shm_name(location, part))
        segments.append(segment)
        count = meta["lengths"][part]
        array = np.frombuffer(segment.buf, dtype=dtype, count=count)
        array.setflags(write=False)
        arrays[part] = array
    n = int(meta["num_nodes"])
    if meta["nodes"] == "range":
        nodes = range(n)
    else:
        segment = _open_shm(_shm_name(location, "nodes"))
        segments.append(segment)
        blob = bytes(segment.buf[: meta["node_bytes"]])
        nodes = json.loads(blob.decode("utf-8"))
    view = CSRView(arrays["indptr"], arrays["indices"], arrays["weights"], nodes)
    return view, meta, segments


def unlink_shared(handle: SharedGraphHandle) -> None:
    """Release a publication's backing storage (publisher-side).

    For ``spool`` handles the snapshot directory is removed; for ``shm``
    handles every segment is unlinked.  Attached processes that already
    hold mappings keep them (POSIX unlink semantics); new attaches fail.
    """
    _evict_attached(handle)
    if handle.method == "spool":
        shutil.rmtree(handle.location, ignore_errors=True)
        return
    from multiprocessing import shared_memory

    for part in _SHM_PARTS:
        try:
            segment = shared_memory.SharedMemory(name=_shm_name(handle.location, part))
        except FileNotFoundError:
            continue
        segment.close()
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent unlink
            pass


# --------------------------------------------------------------------------
# Publish / attach


def publish_graph(
    graph: Graph,
    path: Optional[PathLike] = None,
    name: Optional[str] = None,
    method: str = "spool",
) -> SharedGraphHandle:
    """Publish *graph* once for any number of read-only attachers.

    ``method="spool"`` (the default, and the only method battery workers
    use) stages a fingerprint-stamped mmap CSR snapshot at *path* (a
    fresh temp directory when omitted); ``method="shm"`` writes
    ``multiprocessing.shared_memory`` segments named after *path* (a
    plain token, auto-derived when omitted).  Returns the picklable
    :class:`SharedGraphHandle` that :func:`attach_graph` accepts in any
    process.
    """
    if method not in ("spool", "shm"):
        raise ValueError(f"unknown transport method {method!r}")
    label = name if name is not None else graph.name
    fingerprint = graph.fingerprint()
    registry = get_registry()
    with get_tracer().span(
        "transport.publish", method=method, n=graph.num_nodes
    ) as span:
        if method == "spool":
            if path is None:
                path = Path(tempfile.mkdtemp(prefix="repro-transport-")) / "graph"
            path = Path(path)
            save_csr_snapshot(path, graph.csr(), name=label, fingerprint=fingerprint)
            nbytes = sum(f.stat().st_size for f in path.iterdir() if f.is_file())
            location = str(path)
        else:
            location = (
                str(path) if path is not None
                else f"repro-{os.getpid():x}-{fingerprint:x}"
            )
            nbytes = _publish_shm(graph, location, label, fingerprint)
        span.set(bytes=nbytes, fingerprint=fingerprint)
    registry.counter("transport.published").inc()
    registry.counter("transport.bytes_shared").inc(nbytes)
    return SharedGraphHandle(
        method=method,
        location=location,
        fingerprint=fingerprint,
        name=label,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        nbytes=nbytes,
    )


def handle_for_snapshot(path: PathLike) -> SharedGraphHandle:
    """Wrap an existing on-disk CSR snapshot (e.g. a
    :class:`~repro.store.store.GraphStore`'s) as an attachable handle."""
    meta = snapshot_info(path)
    return SharedGraphHandle(
        method="spool",
        location=str(Path(path)),
        fingerprint=meta.get("fingerprint") or 0,
        name=meta.get("name", ""),
        num_nodes=int(meta["num_nodes"]),
        num_edges=int(meta["num_edges"]),
        nbytes=sum(f.stat().st_size for f in Path(path).iterdir() if f.is_file()),
    )


def materialize_view(
    view: CSRView, name: str = "", fingerprint: Optional[int] = None
) -> Graph:
    """Rebuild a :class:`Graph` from a (possibly shared) CSR view.

    The reconstruction is exact *including node iteration order* — nodes
    enter in view position order and edges in row order — so seeded
    algorithms that walk or sample the node list (path sampling, victim
    orders) behave bit-identically on the rebuilt graph.  The view is
    pre-seeded as the graph's cached CSR view (its arrays are what a
    rebuild would produce, row-sorted), so CSR-backend kernels run on the
    shared pages directly; a known *fingerprint* is pre-seeded too,
    making cache probes on the attached graph a dict lookup.
    """
    graph = Graph(name=name)
    nodes = view.nodes
    graph.add_nodes(nodes)
    us, vs, ws = view.edge_arrays()
    if isinstance(nodes, range):
        graph.add_edges(zip(us.tolist(), vs.tolist(), ws.tolist()))
    else:
        graph.add_edges(
            (nodes[u], nodes[v], w)
            for u, v, w in zip(us.tolist(), vs.tolist(), ws.tolist())
        )
    graph._csr_cache = (graph._version, view)
    if fingerprint:
        graph._fingerprint_cache = (graph._version, fingerprint)
    return graph


#: Per-process attach cache: (method, location, fingerprint) → cached
#: attachment.  Bounded — a worker cycling through many topologies holds
#: at most this many materialized graphs.
_ATTACH_CACHE_SIZE = 4
_attach_cache: "OrderedDict[Tuple[str, str, int], Dict[str, Any]]" = OrderedDict()


def _attach_entry(handle: SharedGraphHandle) -> Dict[str, Any]:
    key = (handle.method, handle.location, handle.fingerprint)
    entry = _attach_cache.get(key)
    registry = get_registry()
    if entry is not None:
        _attach_cache.move_to_end(key)
        registry.counter("transport.attach.cached").inc()
        return entry
    with get_tracer().span(
        "transport.attach", method=handle.method, n=handle.num_nodes
    ) as span:
        if handle.method == "spool":
            view = load_csr_snapshot(handle.location)
            segments: list = []
        else:
            view, _, segments = _attach_shm_view(handle.location)
        span.set(bytes=handle.nbytes, fingerprint=handle.fingerprint)
    registry.counter("transport.attach.opened").inc()
    entry = {
        "view": view,
        "graph": None,
        "segments": segments,
        "name": handle.name,
        "fingerprint": handle.fingerprint,
    }
    _attach_cache[key] = entry
    while len(_attach_cache) > _ATTACH_CACHE_SIZE:
        _, evicted = _attach_cache.popitem(last=False)
        registry.counter("transport.attach.evicted").inc()
        for segment in evicted["segments"]:
            _quiet_close(segment)
    return entry


def set_attach_cache_limit(size: int) -> int:
    """Set the per-process attach-cache LRU bound; returns the old bound.

    A long-lived serving worker cycling through more hot topologies than
    the default bound (4) can raise it to keep its working set attached;
    tests shrink it to exercise eviction.  Shrinking evicts the excess
    oldest entries immediately (closing their shm segments — safe even
    with views still in flight, see :func:`_quiet_close`).
    """
    global _ATTACH_CACHE_SIZE
    if size < 1:
        raise ValueError("attach cache limit must be >= 1")
    previous, _ATTACH_CACHE_SIZE = _ATTACH_CACHE_SIZE, size
    while len(_attach_cache) > _ATTACH_CACHE_SIZE:
        _, evicted = _attach_cache.popitem(last=False)
        get_registry().counter("transport.attach.evicted").inc()
        for segment in evicted["segments"]:
            _quiet_close(segment)
    return previous


def attach_view(handle: SharedGraphHandle) -> CSRView:
    """Attach to a publication and return its shared, read-only
    :class:`CSRView` (memory-mapped or shm-backed; nothing is copied)."""
    return _attach_entry(handle)["view"]


def attach_graph(handle: SharedGraphHandle) -> Graph:
    """Attach to a publication as a full :class:`Graph`.

    The adjacency is materialized from the shared arrays at most once
    per process per publication (then served from the attach cache), and
    the graph's CSR view *is* the shared arrays — kernels never rebuild
    them.  The result must be treated as read-only: it is shared with
    every later caller in this process.
    """
    entry = _attach_entry(handle)
    if entry["graph"] is None:
        entry["graph"] = materialize_view(
            entry["view"], name=entry["name"], fingerprint=entry["fingerprint"]
        )
    return entry["graph"]


def _evict_attached(handle: SharedGraphHandle) -> None:
    entry = _attach_cache.pop(
        (handle.method, handle.location, handle.fingerprint), None
    )
    if entry:
        for segment in entry["segments"]:
            _quiet_close(segment)


def clear_attach_cache() -> None:
    """Drop every cached attachment in this process (tests, teardown)."""
    for entry in _attach_cache.values():
        for segment in entry["segments"]:
            _quiet_close(segment)
    _attach_cache.clear()


# --------------------------------------------------------------------------
# Spool


def _default_spool_parent() -> str:
    configured = os.environ.get(REPRO_TRANSPORT_DIR_ENV, "").strip()
    if configured:
        return configured
    if os.path.isdir("/dev/shm") and os.access("/dev/shm", os.W_OK):
        return "/dev/shm"
    return tempfile.gettempdir()


class SnapshotSpool:
    """A directory of content-keyed published snapshots.

    Two modes share one implementation:

    * **ephemeral** (no *root*): a fresh temp directory — under tmpfs
      when available — that :meth:`cleanup` removes wholesale at the end
      of the run;
    * **persistent** (*root* given, e.g. ``<cache-dir>/snapshots``):
      snapshots outlive the run, so a later battery sharing the cache
      directory *attaches* instead of regenerating — this is what makes
      generations O(1) per (model, seed) across resumes, not just within
      one run.  Like the :class:`~repro.core.cache.ResultCache` it sits
      beside, the directory is safe to delete wholesale at any time.

    Publications are refcounted parent-side: :meth:`probe`/:meth:`publish`
    acquire, :meth:`release` decrements, and an ephemeral spool unlinks a
    snapshot the moment its count reaches zero.
    """

    def __init__(self, root: Optional[PathLike] = None):
        self.persistent = root is not None
        if root is None:
            root = tempfile.mkdtemp(
                prefix="repro-spool-", dir=_default_spool_parent()
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._refs: Dict[str, int] = {}
        self._handles: Dict[str, SharedGraphHandle] = {}

    def path_for(self, key: str) -> Path:
        """Where the snapshot for *key* lives (fan-out like the cache)."""
        return self.root / key[:2] / key

    def probe(self, key: str) -> Optional[SharedGraphHandle]:
        """A handle for *key*'s already-published snapshot, or ``None``.

        A truncated/corrupt/foreign directory is evicted and counted as a
        miss — the spool degrades to republication, never to a crash.
        """
        path = self.path_for(key)
        registry = get_registry()
        if key in self._handles:
            self._refs[key] += 1
            registry.counter("transport.snapshot.hits").inc()
            return self._handles[key]
        try:
            handle = handle_for_snapshot(path)
        except FileNotFoundError:
            registry.counter("transport.snapshot.misses").inc()
            return None
        except ValueError:
            shutil.rmtree(path, ignore_errors=True)
            registry.counter("transport.snapshot.corrupt").inc()
            registry.counter("transport.snapshot.misses").inc()
            return None
        registry.counter("transport.snapshot.hits").inc()
        self._remember(key, handle)
        return handle

    def publish(self, graph: Graph, key: str, name: str = "") -> SharedGraphHandle:
        """Publish *graph* under *key* (atomic; safe to call from workers).

        The parent's refcount bookkeeping only happens when the publish
        runs in the spool-owning process; worker-side publishes are
        adopted by the parent via :meth:`adopt`.
        """
        handle = publish_graph(graph, self.path_for(key), name=name)
        self._remember(key, handle)
        return handle

    def adopt(self, key: str, handle: SharedGraphHandle) -> None:
        """Register a worker-published *handle* in this (parent) spool's
        refcounts, so :meth:`release` governs its lifetime."""
        self._remember(key, handle)

    def _remember(self, key: str, handle: SharedGraphHandle) -> None:
        if key in self._handles:
            self._refs[key] += 1
        else:
            self._handles[key] = handle
            self._refs[key] = 1

    def release(self, key: str) -> None:
        """Drop one reference; unlink the snapshot at zero (ephemeral only)."""
        if key not in self._refs:
            return
        self._refs[key] -= 1
        if self._refs[key] <= 0:
            handle = self._handles.pop(key)
            del self._refs[key]
            if not self.persistent:
                unlink_shared(handle)

    def reap_staging(self) -> int:
        """Remove orphaned ``.tmp`` staging directories (crashed publishes).

        Called when the battery rebuilds a broken pool and again at run
        end: a worker that died mid-:func:`save_csr_snapshot` leaves only
        a ``.tmp`` sibling, which no complete snapshot ever keeps.
        """
        reaped = 0
        if not self.root.is_dir():
            return reaped
        for fanout in self.root.iterdir():
            if not fanout.is_dir():
                continue
            for entry in fanout.iterdir():
                if entry.name.endswith(".tmp"):
                    shutil.rmtree(entry, ignore_errors=True)
                    reaped += 1
        if reaped:
            get_registry().counter("transport.staging.reaped").inc(reaped)
        return reaped

    def cleanup(self) -> None:
        """End-of-run teardown: reap staging, then remove an ephemeral
        spool's directory wholesale (persistent spools are kept)."""
        self.reap_staging()
        self._refs.clear()
        self._handles.clear()
        if not self.persistent:
            shutil.rmtree(self.root, ignore_errors=True)

    def __repr__(self) -> str:
        kind = "persistent" if self.persistent else "ephemeral"
        return f"<SnapshotSpool {kind} root={self.root}>"
