"""Core pipeline: the metric battery, model comparison and scoring, the
model registry, calibration, caching, the parallel battery runner, and
experiment/report helpers."""

from .battery import (
    BatteryEntry,
    BatteryResult,
    ComparisonBattery,
    ModelScore,
    UnitRecord,
    WorkerPool,
    cell_payload,
    compare_models,
    generation_payload,
    run_battery,
)
from .cache import CacheStats, NullCache, ResultCache, canonical_key
from .calibrate import CalibrationResult, grid_calibrate
from .journal import NullJournal, RunJournal, resolve_journal
from .compare import (
    DEFAULT_SCORED_METRICS,
    ComparisonResult,
    MetricRow,
    compare_graphs,
    compare_summaries,
)
from .experiment import Replicates, replicate, seed_sequence, sweep_sizes
from .metrics import (
    ALL_METRIC_GROUPS,
    EXTRA_METRIC_GROUPS,
    METRIC_GROUPS,
    METRICS_VERSION,
    PartialSummary,
    TopologySummary,
    compute_metric_groups,
    summarize,
)
from .registry import (
    available_models,
    generator_class,
    make_generator,
    register,
    resolve_generator,
)
from .report import format_series, format_table, format_value, shorten
from .transport import (
    SharedGraphHandle,
    SnapshotSpool,
    attach_graph,
    attach_view,
    publish_graph,
    resolve_mp_context,
    resolve_transport,
)

__all__ = [
    "TopologySummary",
    "PartialSummary",
    "summarize",
    "METRIC_GROUPS",
    "EXTRA_METRIC_GROUPS",
    "ALL_METRIC_GROUPS",
    "METRICS_VERSION",
    "compute_metric_groups",
    "MetricRow",
    "ComparisonResult",
    "compare_summaries",
    "compare_graphs",
    "DEFAULT_SCORED_METRICS",
    "available_models",
    "generator_class",
    "make_generator",
    "register",
    "resolve_generator",
    "Replicates",
    "replicate",
    "sweep_sizes",
    "seed_sequence",
    "CalibrationResult",
    "grid_calibrate",
    "format_table",
    "format_series",
    "format_value",
    "shorten",
    "RunJournal",
    "NullJournal",
    "resolve_journal",
    "CacheStats",
    "ResultCache",
    "NullCache",
    "canonical_key",
    "UnitRecord",
    "BatteryEntry",
    "BatteryResult",
    "ModelScore",
    "ComparisonBattery",
    "run_battery",
    "compare_models",
    "WorkerPool",
    "cell_payload",
    "generation_payload",
    "SharedGraphHandle",
    "SnapshotSpool",
    "publish_graph",
    "attach_graph",
    "attach_view",
    "resolve_transport",
    "resolve_mp_context",
]
