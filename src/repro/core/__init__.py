"""Core pipeline: the metric battery, model comparison and scoring, the
model registry, calibration, and experiment/report helpers."""

from .calibrate import CalibrationResult, grid_calibrate
from .compare import (
    DEFAULT_SCORED_METRICS,
    ComparisonResult,
    MetricRow,
    compare_graphs,
    compare_summaries,
)
from .experiment import Replicates, replicate, seed_sequence, sweep_sizes
from .metrics import TopologySummary, summarize
from .registry import available_models, generator_class, make_generator, register
from .report import format_series, format_table, format_value

__all__ = [
    "TopologySummary",
    "summarize",
    "MetricRow",
    "ComparisonResult",
    "compare_summaries",
    "compare_graphs",
    "DEFAULT_SCORED_METRICS",
    "available_models",
    "generator_class",
    "make_generator",
    "register",
    "Replicates",
    "replicate",
    "sweep_sizes",
    "seed_sequence",
    "CalibrationResult",
    "grid_calibrate",
    "format_table",
    "format_series",
    "format_value",
]
