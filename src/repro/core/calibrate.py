"""Parameter calibration: fit a generator to a target topology.

The "make a living" test for a model: can its parameters be tuned so the
full metric battery matches an observed map?  :func:`grid_calibrate` does
the honest version — exhaustive grid search with seed-averaged scores —
which is what the original generator papers did (GLP's published
parameters, for example, came from exactly this kind of fit).
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..generators.base import TopologyGenerator
from ..obs.metrics import MetricsRegistry, get_registry, set_registry
from ..obs.tracer import Tracer, get_tracer, set_tracer
from .compare import ComparisonResult, compare_summaries
from .experiment import seed_sequence
from .metrics import TopologySummary, summarize
from .transport import resolve_mp_context

__all__ = ["CalibrationResult", "grid_calibrate"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    best_params: Dict[str, Any]
    best_score: float
    trials: Tuple[Tuple[Dict[str, Any], float], ...]

    def top(self, count: int = 5) -> List[Tuple[Dict[str, Any], float]]:
        """The *count* best (params, score) pairs, ascending score."""
        return sorted(self.trials, key=lambda pair: pair[1])[:count]


def _score_grid_point(spec):
    """Score one parameter point (module-level so it pickles to workers).

    Returns ``(outcome, obs_payload)`` where *outcome* is ``(params,
    mean score)`` — or ``None`` when the point's generator raises; the
    skip decision is made where the exception happens, so parallel and
    serial grids skip exactly the same points.  Like the battery's worker
    kernel, a fresh ambient tracer and metrics registry are installed for
    the point's duration and drained into the payload, so traced
    calibrations keep their ``calibration.point`` span trees (and metric
    counters) instead of silently dropping everything that happened in a
    worker process.
    """
    generator_factory, params, target, n, seeds, base_seed, trace = spec
    tracer = Tracer(enabled=bool(trace))
    registry = MetricsRegistry()
    prev_tracer = set_tracer(tracer)
    prev_registry = set_registry(registry)
    outcome: Optional[Tuple[Dict[str, Any], float]] = None
    try:
        with tracer.span("calibration.point", params=dict(params), n=n):
            try:
                generator = generator_factory(**params)
                scores = []
                for seed in seed_sequence(base_seed, seeds):
                    graph = generator.generate(n, seed=seed)
                    result = compare_summaries(summarize(graph, seed=seed), target)
                    scores.append(result.score)
                outcome = (params, sum(scores) / len(scores))
            except (ValueError, RuntimeError):
                outcome = None
    finally:
        set_tracer(prev_tracer)
        set_registry(prev_registry)
    payload = {
        "spans": [span.as_dict() for span in tracer.drain()],
        "metrics": registry.snapshot(),
    }
    return outcome, payload


def grid_calibrate(
    generator_factory: Callable[..., TopologyGenerator],
    param_grid: Mapping[str, Sequence[Any]],
    target: TopologySummary,
    n: int,
    seeds: int = 3,
    base_seed: int = 11,
    jobs: int = 1,
    mp_context=None,
) -> CalibrationResult:
    """Exhaustive grid search minimizing the comparison score vs *target*.

    *generator_factory* is called with one keyword per grid axis; each
    parameter point is scored as the mean comparison score over *seeds*
    independent topologies of size *n*.  Parameter points whose generator
    raises (invalid combinations) are skipped — a fully failing grid raises.
    *jobs* > 1 scores grid points in parallel processes (bit-identical
    trials in the same order; *generator_factory* must then be picklable),
    built from the explicit *mp_context* (a start-method name or context
    object, env ``REPRO_MP_START``; see
    :func:`repro.core.transport.resolve_mp_context`).  Each point runs
    under a fresh ambient tracer/registry whose spans and counters are
    re-adopted here, so traced calibrations see every worker's
    ``calibration.point`` subtree.
    """
    if not param_grid:
        raise ValueError("param_grid must have at least one axis")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    trc = get_tracer()
    registry = get_registry()
    axes = sorted(param_grid)
    specs = [
        (
            generator_factory, dict(zip(axes, combo)), target, n, seeds,
            base_seed, trc.enabled,
        )
        for combo in itertools.product(*(param_grid[a] for a in axes))
    ]
    with trc.span("calibrate", points=len(specs), n=n, jobs=jobs) as cal_span:
        if jobs == 1 or len(specs) <= 1:
            raw = [_score_grid_point(spec) for spec in specs]
        else:
            context = resolve_mp_context(mp_context)
            with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
                raw = list(pool.map(_score_grid_point, specs))
        outcomes = []
        for outcome, payload in raw:
            if payload.get("metrics"):
                registry.merge(payload["metrics"])
            if trc.enabled and payload.get("spans"):
                trc.adopt(payload["spans"], parent=cal_span)
            outcomes.append(outcome)
    trials: List[Tuple[Dict[str, Any], float]] = [
        outcome for outcome in outcomes if outcome is not None
    ]
    if not trials:
        raise ValueError("every grid point failed to generate")
    best_params, best_score = min(trials, key=lambda pair: pair[1])
    return CalibrationResult(
        best_params=dict(best_params),
        best_score=best_score,
        trials=tuple(trials),
    )
