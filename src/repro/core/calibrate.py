"""Parameter calibration: fit a generator to a target topology.

The "make a living" test for a model: can its parameters be tuned so the
full metric battery matches an observed map?  :func:`grid_calibrate` does
the honest version — exhaustive grid search with seed-averaged scores —
which is what the original generator papers did (GLP's published
parameters, for example, came from exactly this kind of fit).
"""

from __future__ import annotations

import itertools
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..generators.base import TopologyGenerator
from .compare import ComparisonResult, compare_summaries
from .experiment import seed_sequence
from .metrics import TopologySummary, summarize

__all__ = ["CalibrationResult", "grid_calibrate"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    best_params: Dict[str, Any]
    best_score: float
    trials: Tuple[Tuple[Dict[str, Any], float], ...]

    def top(self, count: int = 5) -> List[Tuple[Dict[str, Any], float]]:
        """The *count* best (params, score) pairs, ascending score."""
        return sorted(self.trials, key=lambda pair: pair[1])[:count]


def _score_grid_point(spec) -> Optional[Tuple[Dict[str, Any], float]]:
    """Score one parameter point (module-level so it pickles to workers).

    Returns None when the point's generator raises — the skip decision is
    made where the exception happens, so parallel and serial grids skip
    exactly the same points.
    """
    generator_factory, params, target, n, seeds, base_seed = spec
    try:
        generator = generator_factory(**params)
        scores = []
        for seed in seed_sequence(base_seed, seeds):
            graph = generator.generate(n, seed=seed)
            result = compare_summaries(summarize(graph, seed=seed), target)
            scores.append(result.score)
    except (ValueError, RuntimeError):
        return None
    return params, sum(scores) / len(scores)


def grid_calibrate(
    generator_factory: Callable[..., TopologyGenerator],
    param_grid: Mapping[str, Sequence[Any]],
    target: TopologySummary,
    n: int,
    seeds: int = 3,
    base_seed: int = 11,
    jobs: int = 1,
) -> CalibrationResult:
    """Exhaustive grid search minimizing the comparison score vs *target*.

    *generator_factory* is called with one keyword per grid axis; each
    parameter point is scored as the mean comparison score over *seeds*
    independent topologies of size *n*.  Parameter points whose generator
    raises (invalid combinations) are skipped — a fully failing grid raises.
    *jobs* > 1 scores grid points in parallel processes (bit-identical
    trials in the same order; *generator_factory* must then be picklable).
    """
    if not param_grid:
        raise ValueError("param_grid must have at least one axis")
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    axes = sorted(param_grid)
    specs = [
        (generator_factory, dict(zip(axes, combo)), target, n, seeds, base_seed)
        for combo in itertools.product(*(param_grid[a] for a in axes))
    ]
    if jobs == 1 or len(specs) <= 1:
        outcomes = [_score_grid_point(spec) for spec in specs]
    else:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            outcomes = list(pool.map(_score_grid_point, specs))
    trials: List[Tuple[Dict[str, Any], float]] = [
        outcome for outcome in outcomes if outcome is not None
    ]
    if not trials:
        raise ValueError("every grid point failed to generate")
    best_params, best_score = min(trials, key=lambda pair: pair[1])
    return CalibrationResult(
        best_params=dict(best_params),
        best_score=best_score,
        trials=tuple(trials),
    )
