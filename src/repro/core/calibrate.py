"""Parameter calibration: fit a generator to a target topology.

The "make a living" test for a model: can its parameters be tuned so the
full metric battery matches an observed map?  :func:`grid_calibrate` does
the honest version — exhaustive grid search with seed-averaged scores —
which is what the original generator papers did (GLP's published
parameters, for example, came from exactly this kind of fit).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Sequence, Tuple

from ..generators.base import TopologyGenerator
from .compare import ComparisonResult, compare_summaries
from .experiment import seed_sequence
from .metrics import TopologySummary, summarize

__all__ = ["CalibrationResult", "grid_calibrate"]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of one calibration run."""

    best_params: Dict[str, Any]
    best_score: float
    trials: Tuple[Tuple[Dict[str, Any], float], ...]

    def top(self, count: int = 5) -> List[Tuple[Dict[str, Any], float]]:
        """The *count* best (params, score) pairs, ascending score."""
        return sorted(self.trials, key=lambda pair: pair[1])[:count]


def grid_calibrate(
    generator_factory: Callable[..., TopologyGenerator],
    param_grid: Mapping[str, Sequence[Any]],
    target: TopologySummary,
    n: int,
    seeds: int = 3,
    base_seed: int = 11,
) -> CalibrationResult:
    """Exhaustive grid search minimizing the comparison score vs *target*.

    *generator_factory* is called with one keyword per grid axis; each
    parameter point is scored as the mean comparison score over *seeds*
    independent topologies of size *n*.  Parameter points whose generator
    raises (invalid combinations) are skipped — a fully failing grid raises.
    """
    if not param_grid:
        raise ValueError("param_grid must have at least one axis")
    axes = sorted(param_grid)
    trials: List[Tuple[Dict[str, Any], float]] = []
    for combo in itertools.product(*(param_grid[a] for a in axes)):
        params = dict(zip(axes, combo))
        try:
            generator = generator_factory(**params)
            scores = []
            for seed in seed_sequence(base_seed, seeds):
                graph = generator.generate(n, seed=seed)
                result = compare_summaries(summarize(graph, seed=seed), target)
                scores.append(result.score)
        except (ValueError, RuntimeError):
            continue
        trials.append((params, sum(scores) / len(scores)))
    if not trials:
        raise ValueError("every grid point failed to generate")
    best_params, best_score = min(trials, key=lambda pair: pair[1])
    return CalibrationResult(
        best_params=dict(best_params),
        best_score=best_score,
        trials=tuple(trials),
    )
