"""Experiment harness helpers: replication and size sweeps.

Every table/figure harness repeats two motions — average a measurement
over seeds at fixed size, and sweep a measurement across sizes (for scaling
fits).  These helpers standardize both, including the seed discipline
(seeds are derived deterministically from a base seed, so re-running an
experiment reproduces it bit-for-bit).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Sequence, Tuple, TypeVar

from ..generators.base import TopologyGenerator
from ..graph.graph import Graph

__all__ = ["Replicates", "replicate", "sweep_sizes", "seed_sequence"]

T = TypeVar("T")


def seed_sequence(base_seed: int, count: int) -> List[int]:
    """*count* deterministic, well-separated seeds derived from *base_seed*."""
    if count < 1:
        raise ValueError("count must be >= 1")
    golden = 0x9E3779B97F4A7C15
    return [((base_seed + i) * golden) % (1 << 62) + 1 for i in range(count)]


@dataclass(frozen=True)
class Replicates(Generic[T]):
    """Per-seed values of one scalar measurement."""

    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single replicate)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(len(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={len(self.values)})"


def replicate(
    generator: TopologyGenerator,
    n: int,
    metric: Callable[[Graph], float],
    seeds: int = 5,
    base_seed: int = 1,
) -> Replicates:
    """Measure *metric* on *seeds* independent topologies of size *n*."""
    values = []
    for seed in seed_sequence(base_seed, seeds):
        graph = generator.generate(n, seed=seed)
        values.append(float(metric(graph)))
    return Replicates(values=tuple(values))


def sweep_sizes(
    generator: TopologyGenerator,
    sizes: Sequence[int],
    metric: Callable[[Graph], float],
    seeds: int = 3,
    base_seed: int = 1,
) -> List[Tuple[int, Replicates]]:
    """Measure *metric* across *sizes*, each averaged over *seeds*.

    Returns (size, replicates) pairs in the order given — feed the means to
    :func:`repro.stats.fit_power_scaling` for scaling exponents.
    """
    out = []
    for n in sizes:
        out.append((n, replicate(generator, n, metric, seeds=seeds, base_seed=base_seed + n)))
    return out
