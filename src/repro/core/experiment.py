"""Experiment harness helpers: replication and size sweeps.

Every table/figure harness repeats two motions — average a measurement
over seeds at fixed size, and sweep a measurement across sizes (for scaling
fits).  These helpers standardize both, including the seed discipline
(seeds are derived deterministically from a base seed, so re-running an
experiment reproduces it bit-for-bit).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, Generic, List, Sequence, Tuple, TypeVar

from ..generators.base import TopologyGenerator
from ..graph.graph import Graph
from .transport import resolve_mp_context

__all__ = ["Replicates", "replicate", "sweep_sizes", "seed_sequence"]

T = TypeVar("T")


def seed_sequence(base_seed: int, count: int) -> List[int]:
    """*count* deterministic, well-separated seeds derived from *base_seed*."""
    if count < 1:
        raise ValueError("count must be >= 1")
    golden = 0x9E3779B97F4A7C15
    return [((base_seed + i) * golden) % (1 << 62) + 1 for i in range(count)]


@dataclass(frozen=True)
class Replicates(Generic[T]):
    """Per-seed values of one scalar measurement."""

    values: Tuple[float, ...]

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.values) / len(self.values)

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single replicate)."""
        n = len(self.values)
        if n < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (n - 1))

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(len(self.values))

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={len(self.values)})"


def _measure_unit(unit) -> float:
    """One (generate, measure) cell — module-level so it pickles to workers."""
    generator, n, metric, seed = unit
    return float(metric(generator.generate(n, seed=seed)))


def _run_units(units: List[Tuple], jobs: int, mp_context=None) -> List[float]:
    """Run measurement units inline (jobs=1) or over a process pool.

    Unit order is preserved either way, and every unit's seed is fixed
    before dispatch, so results are identical at any *jobs* value.  With
    ``jobs > 1`` the generator and metric must be picklable (module-level
    functions, not lambdas), and the pool is built from the explicit
    *mp_context* (see :func:`repro.core.transport.resolve_mp_context`) so
    behavior is pinned across fork/spawn/forkserver hosts.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if jobs == 1 or len(units) <= 1:
        return [_measure_unit(unit) for unit in units]
    context = resolve_mp_context(mp_context)
    with ProcessPoolExecutor(max_workers=jobs, mp_context=context) as pool:
        return list(pool.map(_measure_unit, units))


def replicate(
    generator: TopologyGenerator,
    n: int,
    metric: Callable[[Graph], float],
    seeds: int = 5,
    base_seed: int = 1,
    jobs: int = 1,
    mp_context=None,
) -> Replicates:
    """Measure *metric* on *seeds* independent topologies of size *n*.

    *jobs* > 1 computes replicates in parallel processes (bit-identical to
    the serial run; *metric* must then be picklable; *mp_context* pins the
    pool's start method).
    """
    units = [
        (generator, n, metric, seed) for seed in seed_sequence(base_seed, seeds)
    ]
    return Replicates(values=tuple(_run_units(units, jobs, mp_context)))


def sweep_sizes(
    generator: TopologyGenerator,
    sizes: Sequence[int],
    metric: Callable[[Graph], float],
    seeds: int = 3,
    base_seed: int = 1,
    jobs: int = 1,
    mp_context=None,
) -> List[Tuple[int, Replicates]]:
    """Measure *metric* across *sizes*, each averaged over *seeds*.

    Returns (size, replicates) pairs in the order given — feed the means to
    :func:`repro.stats.fit_power_scaling` for scaling exponents.  *jobs*
    parallelizes over every (size, seed) cell at once, not size-by-size, so
    small sweep tails don't leave workers idle; *mp_context* pins the
    pool's start method.
    """
    units = []
    for n in sizes:
        for seed in seed_sequence(base_seed + n, seeds):
            units.append((generator, n, metric, seed))
    values = _run_units(units, jobs, mp_context)
    out = []
    for index, n in enumerate(sizes):
        chunk = values[index * seeds : (index + 1) * seeds]
        out.append((n, Replicates(values=tuple(chunk))))
    return out
