"""Content-addressed on-disk cache for battery results.

Each cell of the validation battery — one metric group of one (generator,
params, n, seed) topology — is a pure function of its inputs, so its value
can be cached under a canonical hash of those inputs and reused across
runs, experiments, and re-scorings against new targets.  The cache is a
directory of small JSON files, safe to delete wholesale at any time:
everything in it can be recomputed.

Robustness rules:

* writes are atomic (temp file + ``os.replace``), so a killed run never
  leaves a half-written entry visible;
* reads treat *any* malformed entry (truncated JSON, wrong schema, payload
  mismatch) as a miss, delete it, and count it in ``stats.corrupt`` — a
  corrupted cache degrades to recomputation, never to a crash or a wrong
  result;
* keys embed :data:`repro.core.metrics.METRICS_VERSION`, so numerically
  changing a metric implementation invalidates exactly the affected cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer

__all__ = ["CacheStats", "ResultCache", "NullCache", "canonical_key"]


def canonical_key(payload: Mapping[str, Any]) -> str:
    """SHA-256 hex digest of a canonical JSON rendering of *payload*.

    Dict keys are sorted and floats serialized via repr, so logically equal
    payloads hash identically across processes and platforms; any change to
    any component (generator name, params, seed, metric group, code
    version) changes the key.
    """
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"), default=repr)
    return hashlib.sha256(canon.encode("utf-8")).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss accounting.

    A :class:`ResultCache` instance accumulates counters over its whole
    lifetime; callers that report per-run numbers (the battery runner)
    :meth:`snapshot` the counters at run start and report the
    :meth:`delta`, so sharing one cache object across successive runs
    never inflates the second run's reported hits/misses.
    """

    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def snapshot(self) -> "CacheStats":
        """An independent copy of the current counters."""
        return CacheStats(self.hits, self.misses, self.writes, self.corrupt)

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counters accumulated since the *since* snapshot was taken."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            writes=self.writes - since.writes,
            corrupt=self.corrupt - since.corrupt,
        )

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when none yet).

        The serving layer's ``/stats`` endpoint reports this as the
        steady-state health number: a warm service trends toward 1.0.
        """
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, Any]:
        """Counters as a plain dict (for report tables and notes)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt": self.corrupt,
            "hit_rate": round(self.hit_rate, 6),
        }

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"writes={self.writes} corrupt={self.corrupt}"
        )


class ResultCache:
    """Directory-backed store: canonical key → JSON value.

    Entries live at ``<root>/<key[:2]>/<key>.json`` (fan-out keeps any one
    directory small).  Each file stores ``{"payload": ..., "value": ...}``;
    the payload echo lets :meth:`get` verify the entry really belongs to
    the requested key.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str, payload: Optional[Mapping[str, Any]] = None) -> Optional[Any]:
        """Return the cached value for *key*, or None (counted as a miss).

        Malformed or mismatched entries are deleted and counted in
        ``stats.corrupt`` as well as ``stats.misses``.
        """
        path = self._path(key)
        with get_tracer().span("cache.get", key=key[:12]) as span:
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
                if not isinstance(entry, dict) or "value" not in entry:
                    raise ValueError("malformed cache entry")
                if payload is not None and entry.get("payload") != _roundtrip(payload):
                    raise ValueError("cache entry payload mismatch")
            except FileNotFoundError:
                self.stats.misses += 1
                get_registry().counter("cache.miss").inc()
                span.set(outcome="miss")
                return None
            except (OSError, ValueError, KeyError):
                # Truncated/corrupt/foreign file: recompute rather than crash.
                self.stats.corrupt += 1
                self.stats.misses += 1
                registry = get_registry()
                registry.counter("cache.corrupt").inc()
                registry.counter("cache.miss").inc()
                span.set(outcome="corrupt")
                _evict(path)
                return None
            self.stats.hits += 1
            get_registry().counter("cache.hit").inc()
            span.set(outcome="hit")
            return entry["value"]

    def put(self, key: str, value: Any, payload: Optional[Mapping[str, Any]] = None) -> None:
        """Atomically store *value* under *key*."""
        path = self._path(key)
        with get_tracer().span("cache.put", key=key[:12]):
            path.parent.mkdir(parents=True, exist_ok=True)
            entry = {"payload": _roundtrip(payload) if payload is not None else None,
                     "value": value}
            handle = tempfile.NamedTemporaryFile(
                "w", encoding="utf-8", dir=path.parent, suffix=".tmp", delete=False
            )
            try:
                with handle:
                    json.dump(entry, handle)
                os.replace(handle.name, path)
            except OSError:
                try:
                    os.unlink(handle.name)
                except OSError:
                    pass
                raise
            self.stats.writes += 1
            get_registry().counter("cache.write").inc()


class NullCache:
    """Cache-shaped no-op (``--no-cache``): every get is a miss."""

    def __init__(self):
        self.stats = CacheStats()

    def get(self, key: str, payload: Optional[Mapping[str, Any]] = None) -> Optional[Any]:
        """Always a miss."""
        self.stats.misses += 1
        get_registry().counter("cache.miss").inc()
        return None

    def put(self, key: str, value: Any, payload: Optional[Mapping[str, Any]] = None) -> None:
        """Discard *value*."""
        pass


def _evict(path: Path) -> None:
    """Best-effort removal of a corrupt cache entry.

    Handles the entry path having been replaced by a *directory* (seen
    when a foreign tool collides with the cache layout): ``unlink`` alone
    would fail silently there and the entry would re-count as corrupt on
    every subsequent get.
    """
    try:
        path.unlink()
    except IsADirectoryError:
        shutil.rmtree(path, ignore_errors=True)
    except OSError:
        if path.is_dir():
            shutil.rmtree(path, ignore_errors=True)


def _roundtrip(payload: Mapping[str, Any]) -> Any:
    """Payload as it looks after a JSON round-trip (tuples → lists, etc.),
    so stored payload echoes compare equal to freshly built ones."""
    return json.loads(json.dumps(payload, sort_keys=True, default=repr))
