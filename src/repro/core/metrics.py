"""The metric battery (core of the validation pipeline).

:func:`summarize` runs every scalar measurement the comparison literature
uses on one topology and returns a :class:`TopologySummary`.  Conventions
follow the AS-map papers:

* everything is measured on the **giant component**;
* path lengths are BFS-sampled above ``path_sample_threshold`` nodes;
* the degree exponent uses the CSN discrete MLE with automatic x_min, and
  is reported as NaN when no power-law tail is fittable (e.g. ER graphs) —
  NaN is data here, it distinguishes "no heavy tail" from "exponent 3".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional

from ..graph.clustering import average_clustering, total_triangles, transitivity
from ..graph.cores import degeneracy
from ..graph.correlations import degree_assortativity
from ..graph.graph import Graph
from ..graph.shortest_paths import path_length_distribution
from ..graph.traversal import giant_component
from ..stats.powerlaw import fit_powerlaw_auto_xmin
from ..stats.rng import SeedLike

__all__ = ["TopologySummary", "summarize"]


@dataclass(frozen=True)
class TopologySummary:
    """Scalar measurements of one topology (giant component).

    ``degree_exponent`` is NaN when the tail is not power-law fittable;
    ``degree_exponent_sigma`` mirrors it.  ``max_degree_fraction`` is
    k_max/N, the quantity whose linear scaling with N the weighted-growth
    analysis predicts.
    """

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    max_degree_fraction: float
    degree_exponent: float
    degree_exponent_sigma: float
    average_clustering: float
    transitivity: float
    triangles: int
    assortativity: float
    average_path_length: float
    degeneracy: int
    giant_fraction: float

    def as_dict(self) -> Dict[str, float]:
        """All fields as a flat name → value dict (name field excluded)."""
        out = {}
        for f in fields(self):
            if f.name == "name":
                continue
            out[f.name] = getattr(self, f.name)
        return out

    def __str__(self) -> str:
        gamma = (
            f"{self.degree_exponent:.2f}"
            if not math.isnan(self.degree_exponent)
            else "n/a"
        )
        return (
            f"{self.name}: N={self.num_nodes} E={self.num_edges} "
            f"<k>={self.average_degree:.2f} kmax={self.max_degree} "
            f"gamma={gamma} c={self.average_clustering:.3f} "
            f"r={self.assortativity:+.3f} <l>={self.average_path_length:.2f} "
            f"core={self.degeneracy}"
        )


def summarize(
    graph: Graph,
    name: Optional[str] = None,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
    seed: SeedLike = 0,
) -> TopologySummary:
    """Run the full scalar battery on *graph*.

    Above *path_sample_threshold* nodes, path lengths use *path_samples*
    BFS roots (seeded, so summaries are reproducible).  The power-law fit
    needs at least *min_tail* tail samples, else the exponent is NaN.
    """
    original_n = graph.num_nodes
    gc = giant_component(graph)
    n = gc.num_nodes
    if n == 0:
        raise ValueError("cannot summarize an empty graph")
    degrees = list(gc.degrees().values())
    try:
        fit = fit_powerlaw_auto_xmin(degrees, min_tail=min_tail)
        gamma, gamma_sigma = fit.gamma, fit.sigma
    except ValueError:
        gamma, gamma_sigma = float("nan"), float("nan")
    max_sources = None if n <= path_sample_threshold else path_samples
    paths = path_length_distribution(gc, max_sources=max_sources, seed=seed)
    return TopologySummary(
        name=name if name is not None else (graph.name or "graph"),
        num_nodes=n,
        num_edges=gc.num_edges,
        average_degree=gc.average_degree,
        max_degree=gc.max_degree,
        max_degree_fraction=gc.max_degree / n,
        degree_exponent=gamma,
        degree_exponent_sigma=gamma_sigma,
        average_clustering=average_clustering(gc),
        transitivity=transitivity(gc),
        triangles=total_triangles(gc),
        assortativity=degree_assortativity(gc),
        average_path_length=paths.mean,
        degeneracy=degeneracy(gc),
        giant_fraction=n / original_n,
    )
