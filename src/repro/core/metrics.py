"""The metric battery (core of the validation pipeline).

:func:`summarize` runs every scalar measurement the comparison literature
uses on one topology and returns a :class:`TopologySummary`.  Conventions
follow the AS-map papers:

* everything is measured on the **giant component**;
* path lengths are BFS-sampled above ``path_sample_threshold`` nodes;
* the degree exponent uses the CSN discrete MLE with automatic x_min, and
  is reported as NaN when no power-law tail is fittable (e.g. ER graphs) —
  NaN is data here, it distinguishes "no heavy tail" from "exponent 3".
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field, fields
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..graph.clustering import average_clustering, total_triangles, transitivity
from ..graph.cores import degeneracy
from ..graph.correlations import degree_assortativity
from ..graph.csr import resolve_backend
from ..graph.graph import Graph
from ..graph.shortest_paths import path_length_distribution
from ..graph.traversal import giant_component
from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer
from ..stats.powerlaw import fit_powerlaw_auto_xmin
from ..stats.rng import SeedLike

__all__ = [
    "TopologySummary",
    "PartialSummary",
    "summarize",
    "METRICS_VERSION",
    "METRIC_GROUPS",
    "EXTRA_METRIC_GROUPS",
    "ALL_METRIC_GROUPS",
    "compute_metric_groups",
]

#: Version tag for the battery's on-disk cache keys.  Bump whenever any
#: metric implementation changes numerically — cached cells computed by the
#: old code then stop matching and are recomputed.
METRICS_VERSION = "1"

#: Partition of the scalar battery into independently computable (and
#: independently cacheable) groups.  Every :class:`TopologySummary` field
#: except ``name`` appears in exactly one group.
METRIC_GROUPS: Dict[str, Tuple[str, ...]] = {
    "size": (
        "num_nodes",
        "num_edges",
        "average_degree",
        "max_degree",
        "max_degree_fraction",
        "giant_fraction",
    ),
    "tail": ("degree_exponent", "degree_exponent_sigma"),
    "clustering": ("average_clustering", "transitivity", "triangles"),
    "mixing": ("assortativity",),
    "core": ("degeneracy",),
    "paths": ("average_path_length",),
}

#: Opt-in groups beyond the :class:`TopologySummary` scalars.  They run
#: through the same battery machinery (spans, cache cells, rusage) but are
#: not part of the default ``summarize`` battery — a run requesting only
#: extra groups assembles a :class:`PartialSummary` carrying their values.
#: ``robustness`` is the T5 behavioral bundle
#: (:func:`repro.resilience.sweep.robustness_summary` plus the Molloy–Reed
#: prediction).
EXTRA_METRIC_GROUPS: Dict[str, Tuple[str, ...]] = {
    "robustness": (
        "random_survival",
        "attack_survival",
        "random_critical",
        "attack_critical",
        "path_inflation",
        "link_redundancy",
        "shortcut_fraction",
        "molloy_reed_fc",
    ),
}

#: Every runnable metric group: the :class:`TopologySummary` partition plus
#: the opt-in extras.  The battery runner validates ``groups=`` against this.
ALL_METRIC_GROUPS: Dict[str, Tuple[str, ...]] = {
    **METRIC_GROUPS,
    **EXTRA_METRIC_GROUPS,
}


@dataclass(frozen=True)
class TopologySummary:
    """Scalar measurements of one topology (giant component).

    ``degree_exponent`` is NaN when the tail is not power-law fittable;
    ``degree_exponent_sigma`` mirrors it.  ``max_degree_fraction`` is
    k_max/N, the quantity whose linear scaling with N the weighted-growth
    analysis predicts.
    """

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    max_degree: int
    max_degree_fraction: float
    degree_exponent: float
    degree_exponent_sigma: float
    average_clustering: float
    transitivity: float
    triangles: int
    assortativity: float
    average_path_length: float
    degeneracy: int
    giant_fraction: float

    def as_dict(self) -> Dict[str, float]:
        """All fields as a flat name → value dict (name field excluded)."""
        out = {}
        for f in fields(self):
            if f.name == "name":
                continue
            out[f.name] = getattr(self, f.name)
        return out

    @classmethod
    def from_dict(cls, name: str, values: Mapping[str, float]) -> "TopologySummary":
        """Rebuild a summary from a flat metric dict (cache deserialization)."""
        kwargs = {}
        for f in fields(cls):
            if f.name == "name":
                continue
            if f.name not in values:
                raise KeyError(f"metric {f.name!r} missing from values")
            kwargs[f.name] = values[f.name]
        return cls(name=name, **kwargs)

    def __str__(self) -> str:
        gamma = (
            f"{self.degree_exponent:.2f}"
            if not math.isnan(self.degree_exponent)
            else "n/a"
        )
        return (
            f"{self.name}: N={self.num_nodes} E={self.num_edges} "
            f"<k>={self.average_degree:.2f} kmax={self.max_degree} "
            f"gamma={gamma} c={self.average_clustering:.3f} "
            f"r={self.assortativity:+.3f} <l>={self.average_path_length:.2f} "
            f"core={self.degeneracy}"
        )


@dataclass(frozen=True)
class PartialSummary:
    """An incomplete battery summary: some metric groups are absent.

    Produced by the battery runner when a replicate cannot assemble a full
    :class:`TopologySummary` — either because the battery was deliberately
    run on a subset of groups (``run_battery(..., groups=("tail",))``) or
    because the work unit failed and only previously-cached groups survive.
    It is an explicit, inspectable object (never ``None``): ``values`` holds
    every metric that *was* computed, ``missing`` names the absent groups,
    and ``error`` carries the failure traceback when a crash caused the gap.

    Scoring a partial summary is a caller error for deliberate subsets —
    :func:`repro.core.compare.compare_summaries` raises a ``ValueError``
    naming ``missing`` — while the battery's own scoring path skips failed
    replicates with a warning instead.
    """

    name: str
    values: Dict[str, float] = field(default_factory=dict)
    groups: Tuple[str, ...] = ()
    missing: Tuple[str, ...] = ()
    error: Optional[str] = None

    @property
    def failed(self) -> bool:
        """True when a unit failure (not a deliberate subset) caused this."""
        return self.error is not None

    def as_dict(self) -> Dict[str, float]:
        """The metrics that are present, as a flat name → value dict."""
        return dict(self.values)

    def get(self, metric: str, default: float = float("nan")) -> float:
        """One metric's value, or *default* when its group is missing."""
        return self.values.get(metric, default)

    def __str__(self) -> str:
        state = "failed" if self.failed else "partial"
        present = ",".join(self.groups) or "none"
        absent = ",".join(self.missing) or "none"
        return f"{self.name}: {state} summary (groups={present} missing={absent})"


def summarize(
    graph: Graph,
    name: Optional[str] = None,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
    seed: SeedLike = 0,
    backend: str = "auto",
) -> TopologySummary:
    """Run the full scalar battery on *graph*.

    Above *path_sample_threshold* nodes, path lengths use *path_samples*
    BFS roots (seeded, so summaries are reproducible).  The power-law fit
    needs at least *min_tail* tail samples, else the exponent is NaN.
    *backend* selects the kernel implementation (``auto``/``python``/
    ``csr``); both backends produce identical values.
    """
    values = compute_metric_groups(
        graph,
        METRIC_GROUPS,
        path_sample_threshold=path_sample_threshold,
        path_samples=path_samples,
        min_tail=min_tail,
        seed=seed,
        backend=backend,
    )
    merged: Dict[str, float] = {}
    for group_values in values.values():
        merged.update(group_values)
    return TopologySummary.from_dict(
        name if name is not None else (graph.name or "graph"), merged
    )


def _group_size(gc: Graph, original_n: int, **_) -> Dict[str, float]:
    n = gc.num_nodes
    return {
        "num_nodes": n,
        "num_edges": gc.num_edges,
        "average_degree": gc.average_degree,
        "max_degree": gc.max_degree,
        "max_degree_fraction": gc.max_degree / n,
        "giant_fraction": n / original_n,
    }


def _group_tail(gc: Graph, min_tail: int = 50, **_) -> Dict[str, float]:
    degrees = list(gc.degrees().values())
    try:
        fit = fit_powerlaw_auto_xmin(degrees, min_tail=min_tail)
        gamma, gamma_sigma = fit.gamma, fit.sigma
    except ValueError:
        gamma, gamma_sigma = float("nan"), float("nan")
    return {"degree_exponent": gamma, "degree_exponent_sigma": gamma_sigma}


def _group_clustering(gc: Graph, backend: str = "auto", **_) -> Dict[str, float]:
    return {
        "average_clustering": average_clustering(gc, backend=backend),
        "transitivity": transitivity(gc, backend=backend),
        "triangles": total_triangles(gc, backend=backend),
    }


def _group_mixing(gc: Graph, backend: str = "auto", **_) -> Dict[str, float]:
    return {"assortativity": degree_assortativity(gc, backend=backend)}


def _group_core(gc: Graph, backend: str = "auto", **_) -> Dict[str, float]:
    return {"degeneracy": degeneracy(gc, backend=backend)}


def _group_paths(
    gc: Graph,
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    seed: SeedLike = 0,
    backend: str = "auto",
    **_,
) -> Dict[str, float]:
    max_sources = None if gc.num_nodes <= path_sample_threshold else path_samples
    paths = path_length_distribution(
        gc, max_sources=max_sources, seed=seed, backend=backend
    )
    return {"average_path_length": paths.mean}


def _group_robustness(
    gc: Graph, seed: SeedLike = 0, backend: str = "auto", **_
) -> Dict[str, float]:
    """The T5 behavioral bundle, measured on the giant component.

    Lazy import: ``repro.resilience`` pulls in the sweep kernels, which the
    default scalar battery never needs.
    """
    from ..analysis.percolation import critical_failure_fraction
    from ..resilience.sweep import robustness_summary

    values = robustness_summary(gc, seed=seed, backend=backend)
    try:
        values["molloy_reed_fc"] = critical_failure_fraction(gc)
    except ValueError:
        values["molloy_reed_fc"] = float("nan")
    return values


_GROUP_FUNCTIONS = {
    "size": _group_size,
    "tail": _group_tail,
    "clustering": _group_clustering,
    "mixing": _group_mixing,
    "core": _group_core,
    "paths": _group_paths,
    "robustness": _group_robustness,
}


def compute_metric_groups(
    graph: Graph,
    groups: Sequence[str],
    path_sample_threshold: int = 1500,
    path_samples: int = 400,
    min_tail: int = 50,
    seed: SeedLike = 0,
    with_timings: bool = False,
    backend: str = "auto",
):
    """Compute a subset of the battery, one value-dict per metric group.

    This is the work-unit kernel of the parallel battery runner: each group
    in *groups* is computed independently on the (shared) giant component, so
    a caller holding cached values for some groups only pays for the missing
    ones.  ``summarize`` is exactly the merge of all groups.

    *backend* selects the kernel implementation for every group
    (``auto``/``python``/``csr``).  It is resolved once against the giant
    component's size so every group runs on the same backend, which is
    recorded on each ``metric.<group>`` tracing span.  Values are identical
    across backends, so the choice never affects results (or cache keys).

    With ``with_timings=True`` the return value is a ``(values, timings)``
    pair where ``timings`` maps each group to the wall seconds its own
    computation took (the shared giant-component extraction is charged to
    ``timings["giant"]``) — the real numbers behind the battery telemetry
    table, not an even split of the total.
    """
    unknown = [g for g in groups if g not in _GROUP_FUNCTIONS]
    if unknown:
        known = ", ".join(sorted(_GROUP_FUNCTIONS))
        raise KeyError(f"unknown metric group(s) {unknown!r}; available: {known}")
    tracer = get_tracer()
    original_n = graph.num_nodes
    giant_started = time.perf_counter()
    with tracer.span("giant", n=original_n):
        gc = giant_component(graph, backend=backend)
    giant_seconds = time.perf_counter() - giant_started
    if gc.num_nodes == 0:
        raise ValueError("cannot summarize an empty graph")
    resolved = resolve_backend(backend, gc.num_nodes)
    out: Dict[str, Dict[str, float]] = {}
    timings: Dict[str, float] = {"giant": giant_seconds}
    for group in groups:
        group_started = time.perf_counter()
        with tracer.span(f"metric.{group}", n=gc.num_nodes, backend=resolved):
            out[group] = _GROUP_FUNCTIONS[group](
                gc,
                original_n=original_n,
                path_sample_threshold=path_sample_threshold,
                path_samples=path_samples,
                min_tail=min_tail,
                seed=seed,
                backend=resolved,
            )
        timings[group] = time.perf_counter() - group_started
    get_registry().counter("metrics.groups.computed").inc(len(tuple(groups)))
    if with_timings:
        return out, timings
    return out
