"""Discrete schedules for exponentially growing quantities.

Growth models advance in unit time steps (months); the continuous targets
``X(t) = X0 * exp(rate * t)`` must be converted into integer per-step
increments whose running total tracks the curve without systematic drift.
:class:`ExponentialSchedule` does that with fractional carry accumulation:
the exact real-valued increment is computed each step and the fractional
remainder is carried forward, so ``sum(increments up to t) = round-ish
X(t) - X0`` with error < 1 at all times.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator, List

__all__ = ["ExponentialSchedule", "GrowthSeries"]


class ExponentialSchedule:
    """Integer increments tracking ``X(t) = x0 * exp(rate * t)``.

    >>> sched = ExponentialSchedule(x0=100, rate=0.05)
    >>> total = sched.x0 + sum(sched.increment(t) for t in range(1, 11))
    >>> abs(total - 100 * math.exp(0.5)) < 1
    True
    """

    def __init__(self, x0: float, rate: float):
        if x0 <= 0:
            raise ValueError("x0 must be positive")
        self.x0 = float(x0)
        self.rate = float(rate)
        self._carry = 0.0
        self._next_step = 1

    def target(self, t: float) -> float:
        """Continuous target value X(t)."""
        return self.x0 * math.exp(self.rate * t)

    def increment(self, t: int) -> int:
        """Integer increment for step *t* (steps must be consumed in order).

        The schedule is stateful: fractional remainders carry across steps so
        the cumulative sum never drifts from the continuous curve.
        """
        if t != self._next_step:
            raise ValueError(
                f"increments must be consumed in order: expected step {self._next_step}, got {t}"
            )
        exact = self.target(t) - self.target(t - 1) + self._carry
        whole = int(exact)
        self._carry = exact - whole
        self._next_step += 1
        return whole

    def reset(self) -> None:
        """Rewind to step 1 with no carry."""
        self._carry = 0.0
        self._next_step = 1


@dataclass
class GrowthSeries:
    """A recorded time series of an exponentially growing quantity.

    Collected by simulations (and by the synthetic timeline dataset) and fed
    to :func:`repro.stats.fit_exponential_growth` in experiment F1.
    """

    name: str
    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def record(self, t: float, value: float) -> None:
        """Append an observation; times must be strictly increasing."""
        if self.times and t <= self.times[-1]:
            raise ValueError("times must be strictly increasing")
        self.times.append(float(t))
        self.values.append(float(value))

    def __len__(self) -> int:
        return len(self.times)

    def __iter__(self) -> Iterator[tuple]:
        return iter(zip(self.times, self.values))
