"""Demand-side substrate: the user pool and exponential growth schedules."""

from .growth import ExponentialSchedule, GrowthSeries
from .pool import UserPool

__all__ = ["UserPool", "ExponentialSchedule", "GrowthSeries"]
