"""The environment: a pool of users attached to ASes.

Supply/demand growth models treat the Internet as embedded in a pool of
users (hosts) that choose providers.  :class:`UserPool` tracks how many
users each AS holds and implements the three user-level moves of that model
family:

* **arrival** — a new user picks an AS by linear preference Π_i = ω_i / W;
* **withdrawal** — a uniformly random existing user leaves (used to seed a
  newly created AS with its initial ω₀ users);
* **relocation** — a uniformly random user leaves its AS and re-chooses by
  the same preference function (the λ churn term).

All three are O(log n) thanks to a Fenwick-tree sampler over user counts:
choosing a uniformly random *user* is exactly choosing an AS with
probability proportional to ω_i.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional

from ..stats.rng import SeedLike, make_rng
from ..stats.sampling import FenwickSampler

__all__ = ["UserPool"]

Node = Hashable


class UserPool:
    """User counts per AS with preferential dynamics.

    The pool enforces a *floor*: no withdrawal or relocation may push an AS
    below ``floor`` users (default 1), mirroring the model's reflecting
    boundary at ω₀ — an AS with too few users to withdraw is simply not
    eligible as a donor.
    """

    def __init__(self, floor: int = 1, seed: SeedLike = None):
        if floor < 0:
            raise ValueError("floor must be non-negative")
        self.floor = floor
        self._rng = make_rng(seed)
        self._sampler = FenwickSampler(seed=self._rng)
        self._nodes: List[Node] = []
        self._index: Dict[Node, int] = {}

    # ------------------------------------------------------------- structure

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._index

    def nodes(self) -> List[Node]:
        """ASes currently in the pool, in insertion order."""
        return list(self._nodes)

    def add_node(self, node: Node, users: int = 0) -> None:
        """Register AS *node* holding *users* users."""
        if node in self._index:
            raise ValueError(f"node {node!r} already in pool")
        if users < 0:
            raise ValueError("users must be non-negative")
        self._index[node] = self._sampler.append(float(users))
        self._nodes.append(node)

    def users(self, node: Node) -> int:
        """Current user count ω of *node*."""
        return int(self._sampler.weight(self._index[node]))

    def sizes(self) -> Dict[Node, int]:
        """Mapping AS → user count."""
        return {node: self.users(node) for node in self._nodes}

    @property
    def total_users(self) -> int:
        """Total users W across all ASes."""
        return int(round(self._sampler.total))

    # ------------------------------------------------------------- dynamics

    def assign_users(self, count: int) -> Dict[Node, int]:
        """Attach *count* new users, each choosing by linear preference.

        Returns the per-AS gain.  When the pool is empty of users (all ω=0)
        the choice falls back to uniform over ASes, which bootstraps a
        freshly initialized system.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        gains: Dict[Node, int] = {}
        for _ in range(count):
            if self._sampler.total <= 0:
                if not self._nodes:
                    raise ValueError("cannot assign users to an empty pool")
                idx = self._rng.randrange(len(self._nodes))
            else:
                idx = self._sampler.sample()
            self._sampler.add(idx, 1.0)
            node = self._nodes[idx]
            gains[node] = gains.get(node, 0) + 1
        return gains

    def withdraw_users(self, count: int) -> Dict[Node, int]:
        """Remove *count* uniformly random users, respecting the floor.

        Returns the per-AS loss.  Raises :class:`ValueError` when fewer than
        *count* users sit above the floor in total.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        available = sum(
            max(self.users(node) - self.floor, 0) for node in self._nodes
        )
        if count > available:
            raise ValueError(
                f"cannot withdraw {count} users: only {available} above the floor"
            )
        losses: Dict[Node, int] = {}
        for _ in range(count):
            idx = self._sampler.sample()
            # Re-draw while the sampled AS sits at the floor; guaranteed to
            # terminate because we checked capacity above.
            while self._sampler.weight(idx) <= self.floor:
                idx = self._sampler.sample()
            self._sampler.add(idx, -1.0)
            node = self._nodes[idx]
            losses[node] = losses.get(node, 0) + 1
        return losses

    def spawn_node(self, node: Node, initial_users: int) -> Dict[Node, int]:
        """Create AS *node* seeded with *initial_users* users withdrawn
        uniformly from existing ASes.

        Returns the per-AS loss among donors.  This is the model's rule (ii):
        new nodes start with ω₀ users taken from the pool, so W is conserved.
        """
        losses = self.withdraw_users(initial_users)
        self.add_node(node, users=initial_users)
        return losses

    def relocate_users(self, count: int) -> int:
        """Move *count* uniformly random users to preferentially chosen ASes.

        A move that would breach a donor's floor is skipped (the donor pool
        may be exhausted); returns the number of moves actually performed.
        The recipient is drawn *after* the departure, matching the model's
        sequential churn.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        moved = 0
        for _ in range(count):
            donors_available = any(
                self.users(node) > self.floor for node in self._nodes
            )
            if not donors_available:
                break
            idx = self._sampler.sample()
            while self._sampler.weight(idx) <= self.floor:
                idx = self._sampler.sample()
            self._sampler.add(idx, -1.0)
            target = self._sampler.sample()
            self._sampler.add(target, 1.0)
            moved += 1
        return moved
