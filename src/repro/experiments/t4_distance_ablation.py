"""Experiment T4 — ablation: distance constraints on vs off.

The design choice DESIGN.md calls out first: does embedding ASes on a
fractal (D_f ≈ 1.5) and pricing long links by endpoint size change the
topology, and in which direction?  Expected shape (the original claim):
distance constraints inhibit small-small long links, adding a
disassortative component and sharpening hierarchy, while leaving the degree
exponent essentially untouched.
"""

from __future__ import annotations

from typing import Sequence

from ..core.experiment import seed_sequence
from ..core.metrics import summarize
from ..generators.serrano import SerranoGenerator
from .base import ExperimentResult

__all__ = ["run_t4"]

_METRICS = (
    "average_degree",
    "degree_exponent",
    "average_clustering",
    "assortativity",
    "average_path_length",
    "degeneracy",
    "max_degree_fraction",
)


def _mean_summary(generator, n: int, seeds: Sequence[int]):
    """Per-metric mean and spread over seeds."""
    values = {metric: [] for metric in _METRICS}
    for seed in seeds:
        summary = summarize(generator.generate(n, seed=seed), seed=seed)
        flat = summary.as_dict()
        for metric in _METRICS:
            values[metric].append(float(flat[metric]))
    means = {m: sum(v) / len(v) for m, v in values.items()}
    spreads = {
        m: (max(v) - min(v)) if len(v) > 1 else 0.0 for m, v in values.items()
    }
    return means, spreads


def run_t4(n: int = 1500, seeds: int = 3, base_seed: int = 41) -> ExperimentResult:
    """Seed-averaged metric table: geography on vs off."""
    result = ExperimentResult(
        experiment_id="T4", title="Ablation: distance constraints on/off"
    )
    seed_list = seed_sequence(base_seed, seeds)
    without_mean, without_spread = _mean_summary(SerranoGenerator(), n, seed_list)
    with_mean, with_spread = _mean_summary(
        SerranoGenerator(distance=True), n, seed_list
    )
    rows = []
    for metric in _METRICS:
        rows.append(
            [
                metric,
                without_mean[metric],
                without_spread[metric],
                with_mean[metric],
                with_spread[metric],
                with_mean[metric] - without_mean[metric],
            ]
        )
    result.add_table(
        "distance ablation (seed means)",
        ["metric", "without", "spread", "with", "spread", "delta"],
        rows,
    )
    result.notes["assortativity_shift"] = (
        with_mean["assortativity"] - without_mean["assortativity"]
    )
    result.notes["gamma_shift"] = (
        with_mean["degree_exponent"] - without_mean["degree_exponent"]
    )
    result.notes["coreness_shift"] = (
        with_mean["degeneracy"] - without_mean["degeneracy"]
    )
    return result
