"""Experiment A3 (extension) — attack and failure tolerance.

Albert–Jeong–Barabási on our topologies: the giant-component fraction as
nodes are removed randomly vs by (adaptive) highest degree.  Expected
shape: heavy-tailed maps shrug off random failure (giant survives at 50%
removal) but collapse under targeted attack within the first ~10–20% of
removals; ER degrades gracefully under both.
"""

from __future__ import annotations

from typing import Optional

from ..analysis.percolation import critical_failure_fraction
from ..datasets.asmap import reference_as_map
from ..graph.traversal import giant_component
from ..resilience.attack import AttackStrategy, critical_fraction, removal_sweep
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_a3"]

_DEFAULT_MODELS = ("erdos-renyi", "barabasi-albert", "serrano")


def run_a3(
    n: int = 1200,
    max_fraction: float = 0.5,
    steps: int = 15,
    seed: int = 29,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Random vs targeted removal sweeps per model."""
    result = ExperimentResult(
        experiment_id="A3", title="Attack and failure tolerance"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        random_run = removal_sweep(
            gc, AttackStrategy.RANDOM, max_fraction=max_fraction,
            steps=steps, seed=seed,
        )
        attack_run = removal_sweep(
            gc, AttackStrategy.DEGREE, max_fraction=max_fraction,
            steps=steps, seed=seed,
        )
        result.add_series(f"{name} random (removed, giant)", random_run.as_points())
        result.add_series(f"{name} targeted (removed, giant)", attack_run.as_points())
        random_critical = critical_fraction(random_run, collapse_threshold=0.05)
        attack_critical = critical_fraction(attack_run, collapse_threshold=0.05)
        rows.append(
            [
                name,
                random_run.giant_at(max_fraction),
                attack_run.giant_at(max_fraction),
                random_critical if random_critical is not None else float("nan"),
                attack_critical if attack_critical is not None else float("nan"),
                critical_failure_fraction(gc),  # Molloy–Reed prediction
            ]
        )
        return random_run, attack_run

    ref_random, ref_attack = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "tolerance summary",
        ["model", "giant after random", "giant after attack",
         "critical frac (random)", "critical frac (attack)",
         "Molloy-Reed f_c"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    result.notes["reference_random_survival"] = by_name["reference"][1]
    result.notes["reference_attack_survival"] = by_name["reference"][2]
    if "erdos-renyi" in by_name:
        result.notes["er_attack_survival"] = by_name["erdos-renyi"][2]
    return result
