"""Experiment A3 (extension) — attack and failure tolerance.

Albert–Jeong–Barabási on our topologies: the giant-component fraction as
nodes are removed randomly vs by (adaptive) highest degree.  Expected
shape: heavy-tailed maps shrug off random failure (giant survives at 50%
removal) but collapse under targeted attack within the first ~10–20% of
removals; ER degrades gracefully under both.

The tolerance-summary scalars run as ``robustness`` metric-group units
through the parallel/cached/journaled battery runner — pass ``jobs=N`` to
fan models over worker processes, ``cache_dir`` to reuse computed cells
across runs, and ``timeout``/``retries`` for fault containment: a model
whose generation or sweep raises costs only its own row (reported in a
failed-units table), never the experiment.  The per-model trajectory
series are then swept directly at this experiment's own
*max_fraction*/*steps* resolution via :func:`repro.resilience.sweep.
percolation_sweep` on the selected *backend*.
"""

from __future__ import annotations

from typing import Mapping, Optional, Union

from ..core.battery import run_battery
from ..core.metrics import compute_metric_groups
from ..datasets.asmap import reference_as_map
from ..graph.traversal import giant_component
from ..resilience.attack import AttackStrategy
from ..resilience.sweep import percolation_sweep
from .base import ExperimentResult, stage
from .rosters import standard_roster

__all__ = ["run_a3"]

_DEFAULT_MODELS = ("erdos-renyi", "barabasi-albert", "serrano")

#: tolerance-summary table columns ↔ robustness-group fields.
_ROW_FIELDS = (
    "random_survival",
    "attack_survival",
    "random_critical",
    "attack_critical",
    "molloy_reed_fc",
)


def run_a3(
    n: int = 1200,
    max_fraction: float = 0.5,
    steps: int = 15,
    seed: int = 29,
    models: Union[None, list, Mapping] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[str] = None,
    profile_dir: Optional[str] = None,
    backend: str = "auto",
    transport: str = "auto",
) -> ExperimentResult:
    """Random vs targeted removal sweeps per model.

    *models* is a list of roster names or a label → generator mapping
    (how tests inject failing generators).  The summary table's sweep
    scalars use the battery's fixed robustness shape (cache-comparable
    with T5); *max_fraction*/*steps*/*seed* control the plotted
    trajectory series.
    """
    result = ExperimentResult(
        experiment_id="A3", title="Attack and failure tolerance"
    )
    if isinstance(models, Mapping):
        selection = dict(models)
    else:
        roster = standard_roster(n)
        names = models if models is not None else list(_DEFAULT_MODELS)
        selection = {name: roster[name] for name in names}

    with stage("A3", "battery", n=n, jobs=jobs):
        battery = run_battery(
            selection,
            n=n,
            seeds=1,
            base_seed=seed,
            jobs=jobs,
            cache=cache_dir,
            groups=("robustness",),
            timeout=timeout,
            retries=retries,
            journal=journal,
            profile_dir=profile_dir,
            backend=backend,
            transport=transport,
        )
    with stage("A3", "reference", n=n):
        reference_graph = reference_as_map(n)
        reference_values = compute_metric_groups(
            reference_graph, ("robustness",), seed=0, backend=backend
        )["robustness"]

    def add_series(name, graph):
        gc = giant_component(graph, backend=backend)
        random_run = percolation_sweep(
            gc, AttackStrategy.RANDOM, max_fraction=max_fraction,
            steps=steps, seed=seed, backend=backend,
        )
        attack_run = percolation_sweep(
            gc, AttackStrategy.DEGREE, max_fraction=max_fraction,
            steps=steps, seed=seed, backend=backend,
        )
        result.add_series(f"{name} random (removed, giant)", random_run.as_points())
        result.add_series(f"{name} targeted (removed, giant)", attack_run.as_points())

    rows = [["reference"] + [reference_values[key] for key in _ROW_FIELDS]]
    with stage("A3", "series", models=len(selection)):
        add_series("reference", reference_graph)
        for entry in battery.entries:
            summary = entry.summaries[0]
            rows.append(
                [entry.model] + [summary.get(key) for key in _ROW_FIELDS]
            )
            if getattr(summary, "failed", False):
                continue  # contained: no graph to sweep, row keeps its NaNs
            graph = selection[entry.model].generate(n, seed=entry.seeds[0])
            add_series(entry.model, graph)

    result.add_table(
        "tolerance summary",
        ["model", "giant after random", "giant after attack",
         "critical frac (random)", "critical frac (attack)",
         "Molloy-Reed f_c"],
        rows,
    )
    if battery.failures:
        result.add_table("failed battery units", *battery.failure_table())
    by_name = {row[0]: row for row in rows}
    result.notes["reference_random_survival"] = by_name["reference"][1]
    result.notes["reference_attack_survival"] = by_name["reference"][2]
    if "erdos-renyi" in by_name:
        result.notes["er_attack_survival"] = by_name["erdos-renyi"][2]
    result.notes["battery_failures"] = len(battery.failures)
    result.notes["cache_hits"] = battery.stats.hits
    result.notes["cache_misses"] = battery.stats.misses
    return result
