"""Experiment A9 (extension) — provisioning adequacy.

The weighted-growth model's premise is a demand/supply equilibrium: ASes
provision bandwidth (edge weights) in proportion to the users they serve.
This experiment closes that loop with traffic: route a gravity matrix over
the generated topology and ask whether *provisioned* capacity actually sits
where the *routed* load lands.  Expected shape: per-AS carried volume
correlates strongly with provisioned strength (rank correlation well above
0.5), high-capacity links carry disproportionate volume, and utilization
concentrates on the provider core rather than exceeding capacity uniformly.
"""

from __future__ import annotations

from typing import List, Tuple

from ..economics.relationships import assign_relationships
from ..economics.traffic import gravity_flows, route_flows
from ..generators.serrano import SerranoGenerator
from ..graph.traversal import giant_component
from ..stats.correlation import spearman_correlation
from ..stats.inequality import gini_coefficient
from .base import ExperimentResult

__all__ = ["run_a9"]


def run_a9(
    n: int = 1200,
    num_flows: int = 2500,
    seed: int = 61,
) -> ExperimentResult:
    """Provisioned bandwidth vs routed load on a weighted-growth internet."""
    result = ExperimentResult(
        experiment_id="A9", title="Provisioning adequacy: capacity vs load"
    )
    run = SerranoGenerator().generate_detailed(n, seed=seed)
    graph = giant_component(run.graph)
    users = {node: run.users[node] for node in graph.nodes()}
    rels = assign_relationships(graph)
    matrix = gravity_flows(users, num_flows=num_flows, seed=seed)
    traffic = route_flows(graph, rels, matrix)

    # Per-AS: provisioned strength vs carried volume.
    strengths = []
    carried = []
    for node in graph.nodes():
        strengths.append(graph.strength(node))
        carried.append(traffic.carried.get(node, 0.0))
    node_correlation = spearman_correlation(strengths, carried)

    # Per-link: provisioned weight vs routed volume.
    weights = []
    volumes = []
    for u, v, w in graph.weighted_edges():
        weights.append(w)
        volumes.append(traffic.volume_on_edge(u, v))
    link_correlation = spearman_correlation(weights, volumes)

    # Utilization proxy: volume per provisioned unit, fat links vs thin.
    fat_cut = sorted(weights, reverse=True)[max(len(weights) // 10 - 1, 0)]
    fat_volume = sum(v for w, v in zip(weights, volumes) if w >= fat_cut)
    total_volume = sum(volumes)
    fat_share = fat_volume / total_volume if total_volume else 0.0

    pairs: List[Tuple[float, float]] = sorted(zip(strengths, carried))
    result.add_series("per-AS (strength, carried volume)", pairs[:: max(len(pairs) // 40, 1)])
    result.add_table(
        "adequacy summary",
        ["quantity", "value"],
        [
            ["node rank correlation (strength vs carried)", node_correlation],
            ["link rank correlation (weight vs volume)", link_correlation],
            ["top-decile-capacity links' volume share", fat_share],
            ["carried-volume Gini", gini_coefficient(carried)],
            ["strength Gini", gini_coefficient(strengths)],
            ["unroutable fraction", traffic.unroutable / matrix.total_volume],
        ],
    )
    result.notes["node_rank_correlation"] = node_correlation
    result.notes["link_rank_correlation"] = link_correlation
    result.notes["fat_link_volume_share"] = fat_share
    result.notes["carried_gini"] = gini_coefficient(carried)
    return result
