"""Experiment T2 — scaling of short-cycle counts, N_h ~ N^ξ(h).

Bianconi–Caldarelli–Capocci measured ξ(3) ≈ 1.45, ξ(4) ≈ 2.07, ξ(5) ≈ 2.45
on AS-map snapshots of growing size; a good generator must reproduce how
loop structure *scales*, not just its value at one size.  The table fits
ξ(h) for h = 3, 4, 5 on a size sweep of the weighted-growth model with and
without distance constraints, alongside the published AS-map values.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.experiment import seed_sequence
from ..datasets.asmap import PUBLISHED_AS_MAP_TARGETS
from ..generators.serrano import SerranoGenerator
from ..graph.cycles import cycle_counts_3_4_5
from ..graph.traversal import giant_component
from ..stats.growth import fit_power_scaling
from .base import ExperimentResult

__all__ = ["run_t2"]

_DEFAULT_SIZES = (400, 800, 1600, 3200)


def _loop_scaling(generator, sizes: Sequence[int], seeds: int, base_seed: int):
    """Mean cycle counts per size, then the fitted exponent per h."""
    counts_by_h: Dict[int, List[float]] = {3: [], 4: [], 5: []}
    for n in sizes:
        totals = {3: 0.0, 4: 0.0, 5: 0.0}
        for seed in seed_sequence(base_seed + n, seeds):
            graph = giant_component(generator.generate(n, seed=seed))
            counts = cycle_counts_3_4_5(graph)
            for h in (3, 4, 5):
                totals[h] += counts[h]
        for h in (3, 4, 5):
            counts_by_h[h].append(max(totals[h] / seeds, 1e-9))
    exponents = {}
    for h in (3, 4, 5):
        fit = fit_power_scaling(list(sizes), counts_by_h[h])
        exponents[h] = (fit.exponent, fit.exponent_stderr)
    return counts_by_h, exponents


def run_t2(
    sizes: Sequence[int] = _DEFAULT_SIZES,
    seeds: int = 2,
    base_seed: int = 31,
    include_distance: bool = True,
) -> ExperimentResult:
    """Fit ξ(3), ξ(4), ξ(5) for the weighted-growth model."""
    result = ExperimentResult(
        experiment_id="T2", title="Cycle-count scaling exponents xi(h)"
    )
    arms = {"model without distance": SerranoGenerator()}
    if include_distance:
        arms["model with distance"] = SerranoGenerator(distance=True)

    rows = [
        [
            "Internet AS map (published)",
            PUBLISHED_AS_MAP_TARGETS["loop_exponent_3"],
            PUBLISHED_AS_MAP_TARGETS["loop_exponent_4"],
            PUBLISHED_AS_MAP_TARGETS["loop_exponent_5"],
        ]
    ]
    for arm_name, generator in arms.items():
        counts_by_h, exponents = _loop_scaling(generator, sizes, seeds, base_seed)
        rows.append([arm_name] + [exponents[h][0] for h in (3, 4, 5)])
        for h in (3, 4, 5):
            result.add_series(
                f"{arm_name} h={h} (N, N_h)",
                list(zip([float(s) for s in sizes], counts_by_h[h])),
            )
            key = "with" if "with distance" in arm_name else "without"
            result.notes[f"xi_{h}_{key}"] = exponents[h][0]
            result.notes[f"xi_{h}_{key}_stderr"] = exponents[h][1]
    result.add_table(
        "cycle scaling exponents", ["system", "xi(3)", "xi(4)", "xi(5)"], rows
    )
    return result
