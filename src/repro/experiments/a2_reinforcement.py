"""Experiment A2 (extension) — the reinforcement parameter r.

The weighted-growth model's multi-edge knob: after two ASes agree to
connect, they keep adding parallel bandwidth units with probability *r*.
The design claim under test: **r tunes the average degree and clustering by
modulating how much bandwidth collapses into multi-edges, while the degree
exponent is unaffected except as r → 1** (where giant peers absorb so much
of each other's demand that the maximum degree is suppressed).
"""

from __future__ import annotations

from typing import Sequence

from ..core.metrics import summarize
from ..generators.serrano import SerranoGenerator
from .base import ExperimentResult

__all__ = ["run_a2"]

_DEFAULT_RS = (0.0, 0.4, 0.8, 0.95)


def run_a2(
    n: int = 1200,
    rs: Sequence[float] = _DEFAULT_RS,
    seed: int = 23,
) -> ExperimentResult:
    """Sweep r and measure density, clustering, gamma and multi-edge mass."""
    result = ExperimentResult(
        experiment_id="A2", title="Reinforcement parameter r sweep"
    )
    rows = []
    gamma_by_r = {}
    avg_degree_by_r = {}
    for r in rs:
        generator = SerranoGenerator(r=r)
        run = generator.generate_detailed(n, seed=seed)
        graph = run.graph
        summary = summarize(graph, name=f"r={r}", seed=seed)
        multi_mass = graph.total_weight / max(graph.num_edges, 1)
        rows.append(
            [
                r,
                summary.average_degree,
                summary.average_clustering,
                summary.degree_exponent,
                summary.max_degree,
                multi_mass,
            ]
        )
        gamma_by_r[r] = summary.degree_exponent
        avg_degree_by_r[r] = summary.average_degree
        result.add_series(
            f"r={r} degree CCDF proxy (k_max, <k>)",
            [(float(summary.max_degree), summary.average_degree)],
        )
    result.add_table(
        "r sweep",
        ["r", "<k>", "clustering", "gamma", "k_max", "B/E"],
        rows,
    )
    low_r, high_r = min(rs), max(rs)
    result.notes["avg_degree_low_r"] = avg_degree_by_r[low_r]
    result.notes["avg_degree_high_r"] = avg_degree_by_r[high_r]
    result.notes["degree_tuning_ratio"] = (
        avg_degree_by_r[low_r] / max(avg_degree_by_r[high_r], 1e-9)
    )
    result.notes["gamma_low_r"] = gamma_by_r[low_r]
    result.notes["gamma_high_r"] = gamma_by_r[high_r]
    interior = [gamma_by_r[r] for r in rs if 0.0 < r < 0.9]
    if len(interior) >= 2:
        result.notes["gamma_interior_spread"] = max(interior) - min(interior)
    return result
