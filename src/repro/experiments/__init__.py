"""Experiment harnesses: one ``run_*`` function per table/figure in the
experiment index (DESIGN.md §4).  The benchmark suite wraps these; examples
and tests reuse them directly."""

from .a1_consolidation import run_a1
from .a2_reinforcement import run_a2
from .a3_attack import run_a3
from .a4_epidemic import run_a4
from .a5_inflation import run_a5
from .a6_dk import run_a6
from .a7_convergence import run_a7
from .a8_kernel import run_a8
from .a9_provisioning import run_a9
from .a10_sampling_bias import run_a10
from .a11_communities import run_a11
from .a12_hijack import run_a12
from .base import ExperimentResult
from .f1_growth import run_f1
from .f2_degree_ccdf import run_f2
from .f3_clustering_spectrum import run_f3
from .f4_knn import run_f4
from .f5_betweenness import run_f5
from .f6_kcore import run_f6
from .f7_richclub import run_f7
from .f8_paths import run_f8
from .f9_degree_bandwidth import run_f9
from .rosters import ROSTER_ORDER, heavy_tail_roster, standard_roster
from .t1_comparison import run_t1
from .t2_loops import run_t2
from .t3_economics import run_t3, settle_topology
from .t4_distance_ablation import run_t4
from .t5_robustness import run_t5

__all__ = [
    "ExperimentResult",
    "run_a1",
    "run_a2",
    "run_a3",
    "run_a4",
    "run_a5",
    "run_a6",
    "run_a7",
    "run_a8",
    "run_a9",
    "run_a10",
    "run_a11",
    "run_a12",
    "run_f1",
    "run_f2",
    "run_f3",
    "run_f4",
    "run_f5",
    "run_f6",
    "run_f7",
    "run_f8",
    "run_f9",
    "run_t1",
    "run_t2",
    "run_t3",
    "run_t4",
    "run_t5",
    "settle_topology",
    "standard_roster",
    "heavy_tail_roster",
    "ROSTER_ORDER",
]
