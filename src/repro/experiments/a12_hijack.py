"""Experiment A12 (extension) — prefix hijack exposure.

Ballani–Francis–Zhang's measurement on our topologies: when an attacker
originates a victim's prefix, what fraction of the internet routes to the
liar?  Expected shape: capture scales with the attacker's position —
tier-1 attackers poison most ASes, stubs poison almost none — and the
victim's customer cone stays overwhelmingly loyal (only a peer shortcut
toward the attacker can flip a cone member, since peer routes outrank the
provider routes cone members use to reach their own ancestor).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..bgpsim.hijack import simulate_hijack
from ..economics.relationships import assign_relationships
from ..generators.serrano import SerranoGenerator
from ..graph.traversal import giant_component
from .base import ExperimentResult

__all__ = ["run_a12"]


def run_a12(
    n: int = 1200,
    victims_per_class: int = 3,
    seed: int = 79,
) -> ExperimentResult:
    """Hijack capture fractions by attacker class."""
    result = ExperimentResult(
        experiment_id="A12", title="Prefix hijack exposure by attacker tier"
    )
    graph = giant_component(SerranoGenerator().generate(n, seed=seed))
    rels = assign_relationships(graph)
    cones = rels.cone_sizes()
    ranked = sorted(cones, key=lambda node: (-cones[node], str(node)))

    attacker_classes: List[Tuple[str, object]] = [
        ("tier-1 attacker", ranked[0]),
        ("mid attacker", ranked[len(ranked) // 20]),
        ("stub attacker", ranked[-1]),
    ]
    # Victims are mid-tier providers with real customer cones (5 to N/10
    # members): big enough that the contest is meaningful, small enough
    # that they are not tier-1 themselves.
    candidates = [
        node for node in ranked
        if 5 <= cones[node] <= max(len(ranked) // 10, 6)
    ]
    if len(candidates) < victims_per_class:
        candidates = ranked[2 : 2 + victims_per_class]
    victims = candidates[:victims_per_class]

    rows = []
    capture_by_class = {}
    loyal_cone_fractions = []
    for class_name, attacker in attacker_classes:
        fractions = []
        for victim in victims:
            if victim == attacker:
                continue
            outcome = simulate_hijack(graph, rels, victim, attacker)
            fractions.append(outcome.capture_fraction)
            # Cone loyalty is the classic *peer-attacker* claim: against a
            # tier-1 the cone may legitimately defect through shorter
            # provider chains, so measure it on the stub scenario only.
            if class_name == "stub attacker":
                cone = rels.customer_cone(victim) - {victim, attacker}
                if cone:
                    loyal_cone_fractions.append(
                        len(cone & outcome.loyal) / len(cone)
                    )
        mean_capture = sum(fractions) / len(fractions)
        capture_by_class[class_name] = mean_capture
        rows.append([class_name, cones[attacker], mean_capture])
    result.add_table(
        "capture by attacker class",
        ["attacker", "attacker cone size", "mean capture fraction"],
        rows,
    )
    result.notes["tier1_capture"] = capture_by_class["tier-1 attacker"]
    result.notes["mid_capture"] = capture_by_class["mid attacker"]
    result.notes["stub_capture"] = capture_by_class["stub attacker"]
    result.notes["victim_cone_loyalty"] = (
        sum(loyal_cone_fractions) / len(loyal_cone_fractions)
        if loyal_cone_fractions
        else float("nan")
    )
    return result
