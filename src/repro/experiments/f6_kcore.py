"""Experiment F6 — k-core decomposition profiles.

The k-core hierarchy (the LANET-VI visualization's data) discriminates
sharply: the AS map has a deep nucleus (coreness ≈ 25 at 2001 scale, ≈ 15
at our reference scale), plain BA bottoms out at coreness = m, and ER stays
shallow.  The figure reports core sizes per shell index; the table reports
coreness (degeneracy) and nucleus size per model.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..graph.cores import core_profile
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_f6"]

_DEFAULT_MODELS = (
    "erdos-renyi",
    "barabasi-albert",
    "glp",
    "pfp",
    "serrano",
    "serrano-distance",
)


def run_f6(n: int = 2000, seed: int = 5, models: Optional[list] = None) -> ExperimentResult:
    """k-core profiles for the reference plus selected models."""
    result = ExperimentResult(experiment_id="F6", title="k-core decomposition")
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        profile = core_profile(giant_component(graph))
        result.add_series(
            f"{name} (k, core size)",
            [(float(k), float(profile.core_sizes[k])) for k in sorted(profile.core_sizes)],
        )
        nucleus = profile.core_sizes.get(profile.degeneracy, 0)
        rows.append([name, profile.degeneracy, nucleus])
        return profile.degeneracy

    ref_core = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "core depth", ["model", "coreness", "nucleus size"], rows
    )
    result.notes["reference_coreness"] = float(ref_core)
    depth = {row[0]: row[1] for row in rows}
    if "barabasi-albert" in depth:
        result.notes["ba_coreness"] = float(depth["barabasi-albert"])
    if "serrano-distance" in depth:
        result.notes["serrano_distance_coreness"] = float(depth["serrano-distance"])
    return result
