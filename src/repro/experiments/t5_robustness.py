"""Experiment T5 — the robustness & redundancy ranking table.

Zhou & Mondragón's question, asked of every roster model at once: does the
topology *survive* like the measured AS map does?  Each model × replicate
runs the ``robustness`` metric group — random-failure and adaptive-degree
percolation sweeps, sampled path inflation, the link-redundancy and
shortcut fingerprints, and the Molloy–Reed collapse prediction — through
the parallel/cached/journaled battery runner (one ``metric.robustness``
span and cache cell per unit), and models are ranked by seed-averaged
divergence from the reference map's own robustness bundle.

Expected shape: the heavy-tailed growth models reproduce the map's
signature asymmetry (random failure survived, hub attack fatal within the
first ~10–20% of removals) and rank well; ER/Waxman degrade gracefully
under both — robust where the map is fragile, which is still a mismatch —
and rank poorly despite their "good" attack survival.

The sweeps run on the backend chosen by ``backend`` (``csr`` is the
reverse union-find fast path; values are bit-identical either way, so
cached cells are backend-neutral), and ``engine`` picks the generators'
growth kernel exactly as in T1.
"""

from __future__ import annotations

import math
from typing import Dict, Mapping, Optional, Sequence, Union

from ..core.battery import run_battery
from ..core.metrics import EXTRA_METRIC_GROUPS, compute_metric_groups
from ..datasets.asmap import reference_as_map
from .base import ExperimentResult, stage
from .rosters import ROSTER_ORDER, standard_roster

__all__ = ["run_t5"]

#: The scalar fields of the battery's ``robustness`` group, in table order.
ROBUSTNESS_FIELDS = EXTRA_METRIC_GROUPS["robustness"]


def _mean_values(summaries) -> Dict[str, float]:
    """Seed-averaged robustness bundle over the surviving replicates.

    NaN is data here (``random_critical`` is NaN when the sweep never
    collapses), so each field averages its non-NaN replicate values and is
    NaN only when every replicate agrees there is nothing to measure.
    """
    out: Dict[str, float] = {}
    for key in ROBUSTNESS_FIELDS:
        values = [
            s.get(key)
            for s in summaries
            if not getattr(s, "failed", False) and not math.isnan(s.get(key))
        ]
        out[key] = sum(values) / len(values) if values else float("nan")
    return out


def _divergence(model_values: Mapping[str, float], reference: Mapping[str, float]) -> float:
    """Mean relative distance from the reference bundle, NaN-aware.

    Agreeing that a quantity is unmeasurable (both NaN — e.g. neither
    collapses under random failure) is a *match* (distance 0); disagreeing
    about measurability costs a full unit, the same penalty scale as a
    100% relative error.
    """
    total = 0.0
    for key in ROBUSTNESS_FIELDS:
        model_value = model_values.get(key, float("nan"))
        reference_value = reference[key]
        if math.isnan(reference_value) and math.isnan(model_value):
            distance = 0.0
        elif math.isnan(reference_value) or math.isnan(model_value):
            distance = 1.0
        else:
            scale = max(abs(reference_value), 1e-9)
            distance = abs(model_value - reference_value) / scale
        total += distance
    return total / len(ROBUSTNESS_FIELDS)


def _normalize_selection(models, n: int):
    """Accepted model specs → ordered label → generator mapping.

    ``models`` may be None (the full 12-model roster), a comma-separated
    string of roster/registry names (what ``--param models=a,b`` passes),
    a sequence of names, or a mapping label → generator (how tests inject
    failing generators).
    """
    if isinstance(models, Mapping):
        return dict(models)
    roster = standard_roster(n)
    if models is None:
        names: Sequence[str] = ROSTER_ORDER
    elif isinstance(models, str):
        names = [name.strip() for name in models.split(",") if name.strip()]
    else:
        names = list(models)
    if not names:
        raise ValueError("no models selected")
    out = {}
    for name in names:
        if name not in roster:
            known = ", ".join(ROSTER_ORDER)
            raise KeyError(f"unknown roster model {name!r}; available: {known}")
        out[name] = roster[name]
    return out


def run_t5(
    n: int = 1500,
    seeds: int = 2,
    base_seed: int = 23,
    models: Union[None, str, Sequence[str], Mapping] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[str] = None,
    profile_dir: Optional[str] = None,
    backend: str = "auto",
    engine: str = "auto",
    transport: str = "auto",
) -> ExperimentResult:
    """Rank the roster by robustness divergence from the reference map.

    All battery knobs behave as in T1: *jobs* fans the (model, replicate)
    units over worker processes, *cache_dir* makes every robustness cell
    content-addressed and reusable, *timeout*/*retries* contain and re-try
    failing units (a dead unit is reported, not fatal), *journal* appends
    the JSONL event log.  Results are bit-identical for every combination
    and for both backends.
    """
    result = ExperimentResult(
        experiment_id="T5",
        title="Robustness & redundancy ranking vs reference AS map",
    )
    selection = _normalize_selection(models, n)
    for generator in selection.values():
        generator.engine = engine
    with stage("T5", "reference", n=n):
        reference = compute_metric_groups(
            reference_as_map(n), ("robustness",), seed=0, backend=backend
        )["robustness"]
    with stage("T5", "battery", n=n, seeds=seeds, jobs=jobs):
        battery = run_battery(
            selection,
            n=n,
            seeds=seeds,
            base_seed=base_seed,
            jobs=jobs,
            cache=cache_dir,
            groups=("robustness",),
            timeout=timeout,
            retries=retries,
            journal=journal,
            profile_dir=profile_dir,
            backend=backend,
            transport=transport,
        )

    with stage("T5", "tables"):
        headers = ["model"] + list(ROBUSTNESS_FIELDS) + ["score"]
        scored = []
        rows = [["reference"] + [reference[key] for key in ROBUSTNESS_FIELDS] + [0.0]]
        for entry in battery.entries:
            survivors = [
                s for s in entry.summaries if not getattr(s, "failed", False)
            ]
            means = _mean_values(entry.summaries)
            score = _divergence(means, reference) if survivors else float("nan")
            scored.append((entry.model, score))
            rows.append(
                [entry.model]
                + [means[key] for key in ROBUSTNESS_FIELDS]
                + [score]
            )
        result.add_table(
            "robustness battery (seed-averaged, vs reference)", headers, rows
        )
        ranking = sorted(scored, key=lambda pair: (math.isnan(pair[1]), pair[1]))
        result.add_table(
            "T5 ranking (closest to reference first)",
            ["model", "score"],
            [[name, score] for name, score in ranking],
        )
        result.add_table(
            "battery telemetry (per model × metric group)",
            *battery.timing_table(),
        )
        if battery.failures:
            result.add_table("failed battery units", *battery.failure_table())

    for position, (name, score) in enumerate(ranking, start=1):
        result.notes[f"rank_{position:02d}_{name}"] = score
    for key in ROBUSTNESS_FIELDS:
        result.notes[f"reference_{key}"] = reference[key]
    result.notes["battery_jobs"] = battery.jobs
    result.notes["battery_elapsed_s"] = round(battery.elapsed, 3)
    result.notes["battery_compute_s"] = round(battery.compute_seconds, 3)
    result.notes["battery_failures"] = len(battery.failures)
    result.notes["cache_hits"] = battery.stats.hits
    result.notes["cache_misses"] = battery.stats.misses
    return result
