"""Experiment A1 (extension) — transit market consolidation.

Iterates the economics pipeline: settle the books, let persistently
unprofitable transit providers exit, re-home their customers to surviving
carriers, repeat.  Expected shape: the provider count falls sharply and
transit revenue concentrates (HHI rises) while the AS count barely moves —
the consolidation arc of the real transit industry.  Stub ASes never exit
(retail economics is out of scope), so "the internet" survives even as the
middle of the market hollows out.
"""

from __future__ import annotations

from typing import Optional

from ..economics.dynamics import simulate_market_evolution
from ..economics.market import PricingModel
from ..generators.serrano import SerranoGenerator
from .base import ExperimentResult

__all__ = ["run_a1"]


def run_a1(
    n: int = 1000,
    rounds: int = 6,
    num_flows: int = 1200,
    seed: int = 17,
    pricing: Optional[PricingModel] = None,
) -> ExperimentResult:
    """Run the consolidation simulation on a weighted-growth internet."""
    result = ExperimentResult(
        experiment_id="A1", title="Transit market consolidation"
    )
    run = SerranoGenerator().generate_detailed(n, seed=seed)
    evolution = simulate_market_evolution(
        run.graph,
        users=run.users,
        pricing=pricing,
        rounds=rounds,
        num_flows=num_flows,
        seed=seed,
    )
    rows = [
        [
            r.round_index,
            r.num_ases,
            r.num_providers,
            r.exits,
            r.transit_hhi,
            r.profitable_fraction,
            r.unroutable_fraction,
        ]
        for r in evolution.rounds
    ]
    result.add_table(
        "consolidation trajectory",
        ["round", "ASes", "providers", "exits", "HHI", "profitable", "unroutable"],
        rows,
    )
    result.add_series(
        "providers per round",
        [(float(r.round_index), float(r.num_providers)) for r in evolution.rounds],
    )
    result.add_series(
        "HHI per round",
        [(float(r.round_index), r.transit_hhi) for r in evolution.rounds],
    )
    first, last = evolution.rounds[0], evolution.rounds[-1]
    result.notes["total_exits"] = float(evolution.total_exits)
    result.notes["provider_shrink_ratio"] = (
        last.num_providers / max(first.num_providers, 1)
    )
    result.notes["as_survival_ratio"] = last.num_ases / max(first.num_ases, 1)
    result.notes["hhi_trend"] = evolution.concentration_trend
    result.notes["final_unroutable"] = last.unroutable_fraction
    return result
