"""Experiment F9 — degree vs bandwidth scaling, k ∝ b^μ.

The weighted-growth analysis predicts that topological degree grows
*sublinearly* with bandwidth (weighted degree): hubs absorb much of their
required capacity as parallel-link reinforcement, giving ``k = b^μ`` with
``μ = β/δ' = 0.75`` at the published rates.  The figure reports the binned
(b, k) relation; the notes record the fitted μ, the analytic prediction,
and the multi-edge mass B/E that makes μ < 1 possible at all.
"""

from __future__ import annotations

from ..graph.weighted_metrics import (
    average_weighted_clustering,
    disparity_spectrum,
)
from ..graph.clustering import average_clustering
from ..generators.serrano import SerranoGenerator
from ..stats.distributions import binned_spectrum
from ..stats.growth import fit_power_scaling
from .base import ExperimentResult

__all__ = ["run_f9"]


def run_f9(
    n: int = 2000,
    seed: int = 8,
    generator: SerranoGenerator = None,
) -> ExperimentResult:
    """Measure the k(b) scaling on one weighted-growth run."""
    gen = generator if generator is not None else SerranoGenerator()
    result = ExperimentResult(
        experiment_id="F9", title="Degree vs bandwidth scaling k = b^mu"
    )
    run = gen.generate_detailed(n, seed=seed)
    graph = run.graph
    pairs = [
        (graph.strength(node), float(graph.degree(node)))
        for node in graph.nodes()
        if graph.strength(node) >= 2
    ]
    spectrum = binned_spectrum(pairs, log_bins=True, bins_per_decade=6)
    result.add_series("binned (b, k)", spectrum)

    fit = fit_power_scaling([b for b, _ in pairs], [k for _, k in pairs])
    result.add_table(
        "scaling fit",
        ["quantity", "value"],
        [
            ["fitted mu", fit.exponent],
            ["fit stderr", fit.exponent_stderr],
            ["predicted mu = beta/delta'", gen.predicted_mu],
            ["total bandwidth B", graph.total_weight],
            ["distinct edges E", float(graph.num_edges)],
            ["multi-edge mass B/E", graph.total_weight / graph.num_edges],
            ["max degree fraction", graph.max_degree / graph.num_nodes],
        ],
    )
    result.notes["mu_fitted"] = fit.exponent
    result.notes["mu_predicted"] = gen.predicted_mu
    result.notes["multi_edge_mass"] = graph.total_weight / graph.num_edges
    result.notes["sublinear"] = float(fit.exponent < 1.0)

    # Weighted battery (Barrat et al.): does bandwidth ride the triangles,
    # and do hubs spread or concentrate their capacity?
    c_plain = average_clustering(graph)
    c_weighted = average_weighted_clustering(graph)
    y2 = disparity_spectrum(graph, bins_per_decade=5)
    result.add_series("disparity k*Y2(k)", y2)
    result.add_table(
        "weighted battery",
        ["quantity", "value"],
        [
            ["average clustering c", c_plain],
            ["average weighted clustering c_w", c_weighted],
            ["c_w / c", c_weighted / c_plain if c_plain else float("nan")],
            ["max k*Y2 (disparity)", max((v for _, v in y2), default=float("nan"))],
        ],
    )
    result.notes["weighted_clustering_ratio"] = (
        c_weighted / c_plain if c_plain else float("nan")
    )
    return result
