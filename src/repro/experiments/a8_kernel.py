"""Experiment A8 (extension) — measuring the attachment kernel.

Jeong–Néda–Barabási's measurement applied to our own generators, closing
the loop: each growth model *assumes* a preference function; this
experiment recovers it from snapshots and checks the recovered exponent
against the design.  Expected shape: BA and GLP measure a ≈ 1 (linear
preference — GLP's shift changes the intercept, not the asymptotic slope),
PFP measures a > 1 (positive feedback), and the fitness model's mixture of
fitness-weighted linear kernels also measures slightly superlinear.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..analysis.kernel import measure_attachment_kernel
from ..generators.barabasi_albert import BarabasiAlbertGenerator
from ..generators.bianconi_barabasi import BianconiBarabasiGenerator
from ..generators.glp import GlpGenerator
from ..generators.pfp import PfpGenerator
from .base import ExperimentResult

__all__ = ["run_a8"]


def _default_subjects() -> Dict[str, object]:
    return {
        "barabasi-albert": BarabasiAlbertGenerator(m=2),
        "glp": GlpGenerator(),
        "pfp": PfpGenerator(),
        "bianconi-barabasi": BianconiBarabasiGenerator(m=2),
    }

#: The kernel exponent each model's design implies.
DESIGN_EXPONENTS = {
    "barabasi-albert": 1.0,
    "glp": 1.0,
    "pfp": 1.05,  # k^(1 + delta log10 k) is mildly superlinear in range
    "bianconi-barabasi": 1.0,  # per-node linear; mixture skews high
}


def run_a8(
    n1: int = 1500,
    n2: int = 3000,
    seed: int = 59,
    subjects: Optional[Dict[str, object]] = None,
) -> ExperimentResult:
    """Recover the attachment kernel of each growth model from snapshots."""
    result = ExperimentResult(
        experiment_id="A8", title="Measured attachment kernels gain(k) ~ k^a"
    )
    subjects = subjects if subjects is not None else _default_subjects()
    rows = []
    for name, generator in subjects.items():
        measurement = measure_attachment_kernel(generator, n1=n1, n2=n2, seed=seed)
        result.add_series(f"{name} (k, mean gain)", list(measurement.spectrum))
        rows.append(
            [
                name,
                measurement.exponent,
                measurement.exponent_stderr,
                DESIGN_EXPONENTS.get(name, float("nan")),
                measurement.r_squared,
                measurement.nodes_measured,
            ]
        )
        result.notes[f"kernel_{name}"] = measurement.exponent
    result.add_table(
        "measured kernels",
        ["model", "a measured", "stderr", "a designed", "R^2", "nodes"],
        rows,
    )
    return result
