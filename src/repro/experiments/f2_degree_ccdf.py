"""Experiment F2 — cumulative degree distributions.

The defining measurement of internet topology research: the AS map's degree
CCDF is a straight line of slope ≈ −1.2 on log-log axes (P(k) exponent
γ ≈ 2.2).  The figure overlays the reference map with every roster model;
the table reports each model's fitted exponent, with the expected outcome
that growth models land near the reference while ER/Waxman/transit-stub
have no fittable tail at all (reported as NaN).
"""

from __future__ import annotations

import math
from typing import Optional

from ..core.metrics import summarize
from ..datasets.asmap import reference_as_map
from ..graph.traversal import giant_component
from ..stats.distributions import empirical_ccdf
from .base import ExperimentResult
from .rosters import ROSTER_ORDER, standard_roster

__all__ = ["run_f2"]


def run_f2(n: int = 2000, seed: int = 1, models: Optional[list] = None) -> ExperimentResult:
    """Generate each roster model at size *n* and report degree CCDFs."""
    result = ExperimentResult(
        experiment_id="F2", title="Cumulative degree distribution P_c(k)"
    )
    roster = standard_roster(n)
    selected = models if models is not None else ROSTER_ORDER
    reference = reference_as_map(n)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        degrees = [d for d in gc.degrees().values() if d > 0]
        ccdf = empirical_ccdf(degrees)
        result.add_series(f"{name} (k, P_c)", ccdf.as_points())
        summary = summarize(graph, name=name, seed=seed)
        rows.append(
            [name, summary.average_degree, summary.max_degree,
             summary.degree_exponent, summary.degree_exponent_sigma]
        )
        return summary

    ref_summary = add("reference", reference)
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "fitted degree exponents",
        ["model", "<k>", "k_max", "gamma", "sigma"],
        rows,
    )
    result.notes["reference_gamma"] = ref_summary.degree_exponent
    heavy = [
        r[3] for r in rows[1:]
        if isinstance(r[3], float) and not math.isnan(r[3]) and r[3] < 2.8
    ]
    result.notes["models_with_as_like_tail"] = float(len(heavy))
    return result
