"""Experiment A7 (extension) — BGP convergence dynamics.

Message-level propagation on generated topologies: how many synchronous
rounds and messages does one prefix take to converge, and what does a hub
link failure cost?  Expected shape: rounds scale with the policy-path
diameter (≈ constant-ish, 4–7, across an order of magnitude in size —
the small world keeps convergence shallow), messages scale linearly with
edges, and reconvergence after failing the busiest link costs about as
much as initial convergence (the simulator models a hard reset).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..bgpsim.engine import BgpSimulation
from ..core.experiment import seed_sequence
from ..economics.relationships import assign_relationships
from ..generators.serrano import SerranoGenerator
from ..graph.traversal import giant_component
from ..stats.growth import fit_power_scaling
from .base import ExperimentResult

__all__ = ["run_a7"]

_DEFAULT_SIZES = (300, 600, 1200, 2400)


def run_a7(
    sizes: Sequence[int] = _DEFAULT_SIZES,
    destinations_per_size: int = 3,
    seed: int = 53,
) -> ExperimentResult:
    """Convergence rounds/messages across a size sweep."""
    result = ExperimentResult(
        experiment_id="A7", title="BGP convergence dynamics"
    )
    generator = SerranoGenerator()
    rows = []
    mean_messages = []
    for n in sizes:
        graph = giant_component(generator.generate(n, seed=seed + n))
        rels = assign_relationships(graph)
        destinations = sorted(graph.nodes(), key=str)[:destinations_per_size]
        rounds_list = []
        message_list = []
        reconv_rounds = []
        for destination in destinations:
            sim = BgpSimulation(graph, rels, destination)
            stats = sim.converge()
            rounds_list.append(stats.rounds)
            message_list.append(stats.messages)
            # Fail the busiest link adjacent to the highest-degree AS.
            hub = max(graph.nodes(), key=lambda x: (graph.degree(x), str(x)))
            neighbor = max(
                graph.neighbors(hub), key=lambda x: (graph.degree(x), str(x))
            )
            sim.withdraw_link(hub, neighbor)
            reconv_rounds.append(sim.converge().rounds)
        mean_rounds = sum(rounds_list) / len(rounds_list)
        mean_msgs = sum(message_list) / len(message_list)
        mean_messages.append(mean_msgs)
        rows.append(
            [
                graph.num_nodes,
                graph.num_edges,
                mean_rounds,
                mean_msgs,
                mean_msgs / graph.num_edges,
                sum(reconv_rounds) / len(reconv_rounds),
            ]
        )
    result.add_table(
        "convergence scaling",
        ["N", "E", "rounds", "messages", "messages/edge", "reconv rounds"],
        rows,
    )
    result.add_series(
        "messages vs N", [(float(row[0]), row[3]) for row in rows]
    )
    fit = fit_power_scaling([row[0] for row in rows], mean_messages)
    result.notes["message_scaling_exponent"] = fit.exponent
    result.notes["rounds_smallest"] = rows[0][2]
    result.notes["rounds_largest"] = rows[-1][2]
    result.notes["max_messages_per_edge"] = max(row[4] for row in rows)
    return result
