"""Experiment A4 (extension) — SIS epidemic thresholds.

Pastor-Satorras–Vespignani on our topologies: endemic prevalence vs
infection rate β.  Expected shape: on the heavy-tailed map the epidemic
persists at infection rates far below the Poissonian threshold
``β_c = μ/⟨k⟩`` — the vanishing-threshold result — while ER shows a clean
transition near its mean-field value.  The spectral prediction
``β_c ≈ μ/λ₁`` anchors both.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..datasets.asmap import reference_as_map
from ..graph.spectral import spectral_radius
from ..graph.traversal import giant_component
from ..resilience.epidemic import prevalence_curve
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_a4"]

_DEFAULT_BETAS = (0.01, 0.02, 0.04, 0.08, 0.16, 0.32)


def run_a4(
    n: int = 1000,
    betas: Sequence[float] = _DEFAULT_BETAS,
    mu: float = 0.5,
    steps: int = 80,
    runs: int = 2,
    seed: int = 37,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Prevalence curves for the reference vs the ER baseline."""
    result = ExperimentResult(
        experiment_id="A4", title="SIS epidemic threshold"
    )
    roster = standard_roster(n)
    selected = models if models is not None else ["erdos-renyi", "pfp"]
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        curve = prevalence_curve(
            gc, betas, mu=mu, steps=steps, runs=runs, seed=seed
        )
        result.add_series(f"{name} (beta, prevalence)", curve)
        radius = spectral_radius(gc)
        mean_field_threshold = mu / radius
        classical = mu / max(gc.average_degree, 1e-9)
        low_beta_prevalence = curve[0][1]
        rows.append(
            [name, radius, mean_field_threshold, classical, low_beta_prevalence]
        )
        return dict(curve)

    ref_curve = add("reference", reference_as_map(n))
    curves = {"reference": ref_curve}
    for name in selected:
        curves[name] = add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "thresholds",
        ["model", "lambda1", "beta_c = mu/lambda1", "mu/<k>", "prevalence at low beta"],
        rows,
    )

    def onset(curve: dict, endemic_level: float = 0.02) -> float:
        """Smallest swept beta sustaining an endemic state."""
        for beta in sorted(curve):
            if curve[beta] > endemic_level:
                return beta
        return float("inf")

    onset_rows = [[name, onset(curve)] for name, curve in curves.items()]
    result.add_table("endemic onset", ["model", "onset beta"], onset_rows)
    result.notes["reference_onset_beta"] = onset(ref_curve)
    if "erdos-renyi" in curves:
        result.notes["er_onset_beta"] = onset(curves["erdos-renyi"])
    if "pfp" in curves:
        result.notes["pfp_onset_beta"] = onset(curves["pfp"])
    by_name = {row[0]: row for row in rows}
    result.notes["reference_spectral_threshold"] = by_name["reference"][2]
    return result
