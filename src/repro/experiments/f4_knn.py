"""Experiment F4 — degree–degree correlations k̄_nn(k).

The AS map is disassortative: the normalized average-nearest-neighbor
degree decays with k.  The figure overlays the normalized spectra; the
ablation inside it contrasts the weighted-growth model *with* and *without*
distance constraints — geography suppresses small-AS long-haul links, which
strengthens disassortativity (the original claim this experiment checks).
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..graph.correlations import degree_assortativity, normalized_knn_spectrum
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import heavy_tail_roster

__all__ = ["run_f4"]


def run_f4(n: int = 2000, seed: int = 3, models: Optional[list] = None) -> ExperimentResult:
    """Normalized knn spectra plus Pearson assortativity per model."""
    result = ExperimentResult(
        experiment_id="F4",
        title="Normalized average nearest-neighbor degree knn(k)<k>/<k^2>",
    )
    roster = heavy_tail_roster(n)
    selected = models if models is not None else list(roster)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        spectrum = normalized_knn_spectrum(gc, bins_per_decade=6)
        result.add_series(f"{name} (k, knn_norm)", spectrum)
        r = degree_assortativity(gc)
        # Decay ratio: value at small k over value at large k (>1 means
        # disassortative decay).
        decay = spectrum[0][1] / spectrum[-1][1] if len(spectrum) >= 2 else float("nan")
        rows.append([name, r, decay])
        return r

    ref_r = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "degree correlations", ["model", "assortativity r", "knn decay ratio"], rows
    )
    result.notes["reference_assortativity"] = ref_r
    by_name = {row[0]: row[1] for row in rows}
    if "serrano" in by_name and "serrano-distance" in by_name:
        result.notes["distance_disassortativity_shift"] = (
            by_name["serrano-distance"] - by_name["serrano"]
        )
    return result
