"""Experiment F5 — betweenness centrality distribution.

On scale-free internet-like graphs the betweenness CCDF is heavy-tailed
(exponent near 2 in P(b)); on ER/Waxman graphs it decays sharply.  The
figure reports CCDFs of normalized betweenness; the table reports the
spread (max/median ratio) — hub-dominated topologies concentrate orders of
magnitude more load on their top node.

Betweenness uses the pivot-sampled Brandes estimator so the experiment
scales; the estimator is exact when ``pivots >= N``.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..graph.betweenness import approximate_betweenness
from ..graph.traversal import giant_component
from ..stats.distributions import empirical_ccdf
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_f5"]

_DEFAULT_MODELS = ("erdos-renyi", "barabasi-albert", "glp", "pfp", "serrano")


def run_f5(
    n: int = 1500,
    pivots: int = 150,
    seed: int = 4,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Betweenness CCDFs for the reference plus selected models."""
    result = ExperimentResult(
        experiment_id="F5", title="Betweenness centrality distribution P_c(b)"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        scores = approximate_betweenness(gc, num_pivots=pivots, seed=seed)
        positive = sorted(v for v in scores.values() if v > 0)
        if not positive:
            rows.append([name, 0.0, float("nan")])
            return
        ccdf = empirical_ccdf(positive)
        result.add_series(f"{name} (b, P_c)", ccdf.as_points())
        median = positive[len(positive) // 2]
        rows.append([name, max(positive), max(positive) / median])

    add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "betweenness concentration",
        ["model", "max b", "max/median"],
        rows,
    )
    spreads = {row[0]: row[2] for row in rows}
    if "erdos-renyi" in spreads and "serrano" in spreads:
        result.notes["serrano_vs_er_spread_ratio"] = (
            spreads["serrano"] / spreads["erdos-renyi"]
        )
    return result
