"""Experiment F7 — rich-club spectra, normalized by a degree-preserving null.

Whether top providers form a denser-than-chance club separates internet
models: PFP was built to produce a rich club, plain BA famously does not
(Colizza et al. 2006).  The figure reports ρ(k) = φ(k)/φ_null(k); the table
reports the top-decile mean of ρ — above 1 means a genuine rich club.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..generators.random_reference import rewired_reference
from ..graph.richclub import normalized_rich_club
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_f7"]

_DEFAULT_MODELS = ("barabasi-albert", "plrg", "glp", "pfp", "serrano")


def run_f7(
    n: int = 1500,
    swaps_per_edge: float = 5.0,
    seed: int = 6,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Normalized rich-club spectra vs Maslov–Sneppen nulls."""
    result = ExperimentResult(
        experiment_id="F7", title="Normalized rich-club spectrum rho(k)"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        null = rewired_reference(gc, swaps_per_edge=swaps_per_edge, seed=seed)
        rho = normalized_rich_club(gc, null)
        points = sorted(rho.items())
        result.add_series(f"{name} (k, rho)", [(float(k), v) for k, v in points])
        if points:
            top = points[int(len(points) * 0.9):]
            top_mean = sum(v for _, v in top) / len(top)
        else:
            top_mean = float("nan")
        rows.append([name, top_mean])
        return top_mean

    ref_club = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "top-decile normalized rich club", ["model", "mean rho (top 10% k)"], rows
    )
    result.notes["reference_top_rho"] = ref_club
    by_name = {row[0]: row[1] for row in rows}
    if "pfp" in by_name and "barabasi-albert" in by_name:
        result.notes["pfp_minus_ba_rho"] = by_name["pfp"] - by_name["barabasi-albert"]
    return result
