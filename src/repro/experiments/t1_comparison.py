"""Experiment T1 — the generator comparison table.

The Bu–Towsley-style shoot-out: every roster model vs the reference AS map
across the scalar battery, with seed-averaged divergence scores.  Expected
shape: the weighted-growth and feedback models (serrano, pfp, glp) score
best; plain BA misses clustering and core depth; PLRG/Inet match the tail
but not the correlations; ER/Waxman/transit-stub trail the field with no
heavy tail at all.

Since the battery-runner refactor this harness is a thin shell over
:func:`repro.core.compare_models`: pass ``jobs=N`` to fan the model ×
replicate × metric-group cells over worker processes and ``cache_dir`` to
reuse computed cells across runs — both leave every reported number
bit-identical.  Battery telemetry (wall clock, cache hits/misses) lands in
the result's notes and telemetry table.
"""

from __future__ import annotations

from typing import Optional

from ..core.battery import compare_models
from .base import ExperimentResult, stage
from .rosters import ROSTER_ORDER, standard_roster

__all__ = ["run_t1"]


def run_t1(
    n: int = 2000,
    seeds: int = 3,
    base_seed: int = 21,
    models: Optional[list] = None,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    timeout: Optional[float] = None,
    retries: int = 0,
    journal: Optional[str] = None,
    profile_dir: Optional[str] = None,
    backend: str = "auto",
    transport: str = "auto",
) -> ExperimentResult:
    """Score every roster model against the reference map.

    *timeout* / *retries* bound and re-attempt individual battery units;
    a unit that still fails is recorded (failure table + notes) and its
    model is scored over the surviving replicates rather than aborting
    the whole comparison.  *journal* appends a JSONL event log of the run.
    *backend* selects the metric kernels (``auto``/``python``/``csr``);
    every reported number is identical across backends.  *transport*
    selects how topologies reach the metric workers
    (``auto``/``regenerate``/``shared``, see
    :mod:`repro.core.transport`); numbers are identical across transports
    too.
    """
    result = ExperimentResult(
        experiment_id="T1",
        title="Generator comparison vs reference AS map",
    )
    roster = standard_roster(n)
    selected = models if models is not None else ROSTER_ORDER
    with stage("T1", "battery", n=n, seeds=seeds, jobs=jobs):
        comparison = compare_models(
            {name: roster[name] for name in selected},
            n=n,
            seeds=seeds,
            base_seed=base_seed,
            jobs=jobs,
            cache=cache_dir,
            timeout=timeout,
            retries=retries,
            journal=journal,
            profile_dir=profile_dir,
            backend=backend,
            transport=transport,
        )
    reference_summary = comparison.target

    def _summary_row(name, summary, score, spread):
        return [
            name,
            summary.average_degree,
            summary.average_path_length,
            summary.average_clustering,
            summary.assortativity,
            summary.max_degree,
            summary.degree_exponent,
            summary.degeneracy,
            score,
            spread,
        ]

    with stage("T1", "tables"):
        rows = [
            _summary_row(score.model, score.last_summary, score.mean, score.spread)
            for score in comparison.scores
            if score.summaries  # a model whose every replicate failed has none
        ]
    target_row = _summary_row("reference", reference_summary, 0.0, 0.0)
    result.add_table(
        "model comparison (last-seed metrics, seed-averaged score)",
        ["model", "<k>", "<l>", "c", "r", "k_max", "gamma", "core", "score", "spread"],
        [target_row] + rows,
    )
    ranking = comparison.ranking()
    result.add_table("ranking (best first)", ["model", "score"], ranking)
    battery = comparison.battery
    result.add_table(
        "battery telemetry (per model × metric group)", *battery.timing_table()
    )
    if battery.failures:
        result.add_table("failed battery units", *battery.failure_table())
    for position, (name, score) in enumerate(ranking, start=1):
        result.notes[f"rank_{position:02d}_{name}"] = score
    result.notes["battery_jobs"] = battery.jobs
    result.notes["battery_transport"] = battery.transport
    result.notes["battery_elapsed_s"] = round(battery.elapsed, 3)
    result.notes["battery_compute_s"] = round(battery.compute_seconds, 3)
    result.notes["battery_failures"] = len(battery.failures)
    result.notes["cache_hits"] = battery.stats.hits
    result.notes["cache_misses"] = battery.stats.misses
    return result
