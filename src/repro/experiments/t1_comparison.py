"""Experiment T1 — the generator comparison table.

The Bu–Towsley-style shoot-out: every roster model vs the reference AS map
across the scalar battery, with seed-averaged divergence scores.  Expected
shape: the weighted-growth and feedback models (serrano, pfp, glp) score
best; plain BA misses clustering and core depth; PLRG/Inet match the tail
but not the correlations; ER/Waxman/transit-stub trail the field with no
heavy tail at all.
"""

from __future__ import annotations

from typing import Optional

from ..core.compare import compare_summaries
from ..core.experiment import seed_sequence
from ..core.metrics import summarize
from ..datasets.asmap import reference_as_map
from .base import ExperimentResult
from .rosters import ROSTER_ORDER, standard_roster

__all__ = ["run_t1"]


def run_t1(
    n: int = 2000, seeds: int = 3, base_seed: int = 21, models: Optional[list] = None
) -> ExperimentResult:
    """Score every roster model against the reference map."""
    result = ExperimentResult(
        experiment_id="T1",
        title="Generator comparison vs reference AS map",
    )
    reference_summary = summarize(reference_as_map(n), seed=0)
    roster = standard_roster(n)
    selected = models if models is not None else ROSTER_ORDER

    rows = []
    ranking = []
    for name in selected:
        generator = roster[name]
        scores = []
        last_summary = None
        for seed in seed_sequence(base_seed, seeds):
            graph = generator.generate(n, seed=seed)
            last_summary = summarize(graph, name=name, seed=seed)
            scores.append(compare_summaries(last_summary, reference_summary).score)
        mean_score = sum(scores) / len(scores)
        spread = (max(scores) - min(scores)) if len(scores) > 1 else 0.0
        ranking.append((name, mean_score))
        rows.append(
            [
                name,
                last_summary.average_degree,
                last_summary.average_path_length,
                last_summary.average_clustering,
                last_summary.assortativity,
                last_summary.max_degree,
                last_summary.degree_exponent,
                last_summary.degeneracy,
                mean_score,
                spread,
            ]
        )
    target_row = [
        "reference",
        reference_summary.average_degree,
        reference_summary.average_path_length,
        reference_summary.average_clustering,
        reference_summary.assortativity,
        reference_summary.max_degree,
        reference_summary.degree_exponent,
        reference_summary.degeneracy,
        0.0,
        0.0,
    ]
    result.add_table(
        "model comparison (last-seed metrics, seed-averaged score)",
        ["model", "<k>", "<l>", "c", "r", "k_max", "gamma", "core", "score", "spread"],
        [target_row] + rows,
    )
    ranking.sort(key=lambda pair: pair[1])
    result.add_table("ranking (best first)", ["model", "score"], ranking)
    for position, (name, score) in enumerate(ranking, start=1):
        result.notes[f"rank_{position:02d}_{name}"] = score
    return result
