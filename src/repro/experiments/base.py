"""Shared experiment result plumbing.

Every experiment module exposes one ``run_*`` function returning an
:class:`ExperimentResult`: an id, a title, named tables (rows of cells) and
named series ((x, y) point lists).  The result renders itself as the
paper-style text block the benchmark harness prints and EXPERIMENTS.md
records.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence, Tuple

from ..core.report import format_series, format_table
from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer

__all__ = ["ExperimentResult", "stage"]


def stage(experiment_id: str, name: str, **attrs: Any):
    """A span context for one experiment stage (battery, tables, sweep …).

    Emits ``experiment.<name>`` into the ambient tracer with the
    experiment id attached and counts ``experiment.stages`` in the ambient
    registry, so a traced ``repro experiment t1 --trace out.json`` renders
    as stage blocks with the battery's span tree nested inside.  A shared
    no-op when tracing is disabled.
    """
    get_registry().counter("experiment.stages").inc()
    return get_tracer().span(f"experiment.{name}", experiment=experiment_id, **attrs)


@dataclass
class ExperimentResult:
    """Output of one experiment run.

    ``tables`` maps a table label to (headers, rows); ``series`` maps a
    series label to (x, y) points; ``notes`` carries free-form findings
    (e.g. fitted exponents) that harnesses assert on.
    """

    experiment_id: str
    title: str
    tables: Dict[str, Tuple[Sequence[str], List[Sequence]]] = field(default_factory=dict)
    series: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    notes: Dict[str, float] = field(default_factory=dict)

    def add_table(self, label: str, headers: Sequence[str], rows: List[Sequence]) -> None:
        """Attach a table."""
        self.tables[label] = (list(headers), rows)

    def add_series(self, label: str, points: List[Tuple[float, float]]) -> None:
        """Attach a plottable series."""
        self.series[label] = points

    def render(self, max_series_points: int = 25) -> str:
        """Render the whole result as the text block harnesses print."""
        blocks = [f"== {self.experiment_id}: {self.title} =="]
        for label, (headers, rows) in self.tables.items():
            blocks.append(format_table(headers, rows, title=f"[table] {label}"))
        for label, points in self.series.items():
            shown = points
            if len(points) > max_series_points:
                step = max(1, len(points) // max_series_points)
                shown = points[::step]
            blocks.append(
                format_series(shown, x_label="x", y_label="y", title=f"[series] {label}")
            )
        if self.notes:
            note_rows = sorted(self.notes.items())
            blocks.append(format_table(["note", "value"], note_rows, title="[notes]"))
        return "\n\n".join(blocks)

    def __str__(self) -> str:
        return self.render()
