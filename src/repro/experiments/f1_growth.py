"""Experiment F1 — exponential growth of hosts, ASes, and links.

Reproduces the growth-measurement figure: three time series on a log scale
with fitted exponential rates, checking the ordering ``alpha > delta >
beta`` (demand outgrows supply; connectivity densifies) and deriving the
scaling relations ``W ∝ N^(alpha/beta)`` and ``<k> ∝ N^(delta/beta - 1)``.

Data source: the synthetic Hobbes/Route-Views-like timeline (see the
substitution table in DESIGN.md); the experiment's code path — noisy series
in, fitted rates and derived exponents out — is identical to the original
measurement.
"""

from __future__ import annotations

from ..datasets.timeline import PUBLISHED_RATES, TimelineConfig, hobbes_like_timeline
from ..stats.growth import doubling_time, fit_exponential_growth
from .base import ExperimentResult

__all__ = ["run_f1"]


def run_f1(config: TimelineConfig = TimelineConfig()) -> ExperimentResult:
    """Fit growth rates to the timeline and derive the scaling relations."""
    series = hobbes_like_timeline(config)
    result = ExperimentResult(
        experiment_id="F1",
        title="Exponential growth of hosts W(t), ASes N(t), links E(t)",
    )
    fits = {}
    rows = []
    for key in ("hosts", "ases", "links"):
        data = series[key]
        fit = fit_exponential_growth(data.times, data.values)
        fits[key] = fit
        rows.append(
            [
                key,
                fit.rate,
                fit.rate_stderr,
                PUBLISHED_RATES[key],
                doubling_time(fit.rate),
                fit.r_squared,
            ]
        )
        result.add_series(f"{key} (t, value)", list(zip(data.times, data.values)))
    result.add_table(
        "fitted monthly growth rates",
        ["series", "rate", "stderr", "published", "doubling (mo)", "R^2"],
        rows,
    )

    alpha = fits["hosts"].rate
    beta = fits["ases"].rate
    delta = fits["links"].rate
    result.notes["alpha"] = alpha
    result.notes["beta"] = beta
    result.notes["delta"] = delta
    result.notes["ordering_alpha_gt_delta"] = float(alpha > delta)
    result.notes["ordering_delta_gt_beta"] = float(delta > beta)
    # Derived scaling exponents the growth analysis reads off the rates.
    result.notes["users_per_as_exponent"] = alpha / beta      # W ∝ N^(α/β)
    result.notes["edges_per_as_exponent"] = delta / beta      # E ∝ N^(δ/β)
    result.notes["avg_degree_exponent"] = delta / beta - 1.0  # <k> ∝ N^(δ/β−1)
    return result
