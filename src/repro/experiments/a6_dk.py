"""Experiment A6 (extension) — which correlation order explains the map?

The dK-series question (Mahadevan et al., SIGCOMM 2006): randomize the
reference map preserving only the degree distribution (1K) and then also
the joint degree matrix (2K), and see which metrics survive.  Expected
shape: assortativity is exactly a 2K property (identical under 2K, moved
under 1K); path lengths are largely captured by 2K; clustering and core
depth need higher orders — they degrade under both nulls.
"""

from __future__ import annotations

from ..core.metrics import summarize
from ..datasets.asmap import reference_as_map
from ..generators.dk import dk2_rewired
from ..generators.random_reference import rewired_reference
from .base import ExperimentResult

__all__ = ["run_a6"]

_METRICS = (
    "average_degree",
    "assortativity",
    "average_clustering",
    "average_path_length",
    "degeneracy",
    "max_degree_fraction",
)


def run_a6(
    n: int = 1500, swaps_per_edge: float = 8.0, seed: int = 47
) -> ExperimentResult:
    """Template vs 1K-null vs 2K-null metric table."""
    result = ExperimentResult(
        experiment_id="A6", title="dK-series: template vs 1K vs 2K nulls"
    )
    template = reference_as_map(n)
    null_1k = rewired_reference(template, swaps_per_edge=swaps_per_edge, seed=seed)
    null_2k = dk2_rewired(template, swaps_per_edge=swaps_per_edge, seed=seed)

    summaries = {
        "template": summarize(template, name="template", seed=seed),
        "1k": summarize(null_1k, name="1k", seed=seed),
        "2k": summarize(null_2k, name="2k", seed=seed),
    }
    values = {name: s.as_dict() for name, s in summaries.items()}
    rows = []
    for metric in _METRICS:
        rows.append(
            [
                metric,
                values["template"][metric],
                values["2k"][metric],
                values["1k"][metric],
            ]
        )
    result.add_table(
        "metric survival under dK nulls",
        ["metric", "template", "2K null", "1K null"],
        rows,
    )
    result.notes["assortativity_template"] = values["template"]["assortativity"]
    result.notes["assortativity_2k"] = values["2k"]["assortativity"]
    result.notes["assortativity_1k"] = values["1k"]["assortativity"]
    result.notes["clustering_template"] = values["template"]["average_clustering"]
    result.notes["clustering_2k"] = values["2k"]["average_clustering"]
    result.notes["path_template"] = values["template"]["average_path_length"]
    result.notes["path_2k"] = values["2k"]["average_path_length"]
    return result
