"""Experiment T3 — inter-domain economics: who can make a living?

The keynote's title question, made quantitative.  On each topology: assign
business relationships, route a gravity traffic matrix valley-free, settle
one month of transit/peering/retail books, and report per-tier profit and
market concentration.  Expected shape: tier-1 transit providers capture
most transit revenue (HHI well above the atomized baseline), stub ASes pay
for connectivity and only survive on retail revenue, and heavy-tailed
topologies concentrate revenue far more than ER's flat hierarchy.  A
second, sharper finding: the flat ER topology cannot support a transit
economy at all — with no degree hierarchy almost every link is classified
as a peering, and valley-free routing (at most one peer hop per path)
strands the majority of demand.  Making a living requires hierarchy.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..economics.market import PricingModel, settle_market
from ..economics.relationships import assign_relationships
from ..economics.traffic import gravity_flows, route_flows
from ..generators.serrano import SerranoGenerator
from ..graph.graph import Graph
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_t3", "settle_topology"]

_DEFAULT_MODELS = ("erdos-renyi", "glp", "pfp")


def settle_topology(
    graph: Graph,
    users: Optional[Dict] = None,
    num_flows: int = 1500,
    pricing: Optional[PricingModel] = None,
    seed: int = 9,
):
    """Relationship → traffic → settlement pipeline for one topology."""
    gc = giant_component(graph)
    rels = assign_relationships(gc)
    if users is None:
        # Degree-proportional populations approximate user counts for
        # models that do not track users explicitly.
        users = {node: 1.0 + gc.degree(node) for node in gc.nodes()}
    else:
        users = {node: users[node] for node in gc.nodes()}
    matrix = gravity_flows(users, num_flows=num_flows, seed=seed)
    traffic = route_flows(gc, rels, matrix)
    report = settle_market(gc, rels, traffic, users=users, pricing=pricing)
    return report, traffic


def run_t3(
    n: int = 1200,
    num_flows: int = 1500,
    seed: int = 9,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Economics comparison across topologies (weighted-growth + roster)."""
    result = ExperimentResult(
        experiment_id="T3", title="ISP economics: tier P&L and concentration"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    summary_rows = []

    def add(name, graph, users=None):
        report, traffic = settle_topology(
            graph, users=users, num_flows=num_flows, seed=seed
        )
        tier_rows = [
            [name, tier, count, mean_profit, mean_transit, frac]
            for tier, count, mean_profit, mean_transit, frac in report.tier_summary()
        ]
        result.add_table(
            f"{name}: per-tier books",
            ["model", "tier", "ASes", "mean profit", "mean transit rev", "profitable"],
            tier_rows,
        )
        hhi = report.transit_revenue_concentration()
        routed = sum(traffic.originated.values())
        total = routed + traffic.unroutable
        summary_rows.append(
            [
                name,
                report.profitable_fraction(),
                report.profitable_fraction(tier=1),
                hhi,
                traffic.unroutable / total if total else 0.0,
            ]
        )
        return hhi

    # The weighted-growth model carries real user counts: use them.
    run = SerranoGenerator().generate_detailed(n, seed=seed)
    serrano_hhi = add("serrano", run.graph, users=run.users)
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "market summary",
        ["model", "profitable frac", "tier1 profitable", "transit HHI", "unroutable frac"],
        summary_rows,
    )
    by_name = {row[0]: row for row in summary_rows}
    result.notes["serrano_hhi"] = serrano_hhi
    if "erdos-renyi" in by_name:
        result.notes["serrano_vs_er_hhi_ratio"] = (
            serrano_hhi / max(by_name["erdos-renyi"][3], 1e-9)
        )
    result.notes["tier1_always_profitable"] = float(
        all(row[2] == 1.0 for row in summary_rows)
    )
    return result
