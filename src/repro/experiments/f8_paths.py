"""Experiment F8 — shortest-path-length distributions (the small world).

The AS map's hop-count distribution is sharply peaked near 3.6 despite four
orders of magnitude in degree.  The figure overlays P(l) for the reference
and roster models; the table reports means and diameters.  ER graphs are
also small-world, so this measurement alone never discriminates — which is
exactly why the battery pairs it with clustering and correlations.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..graph.shortest_paths import path_length_distribution
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_f8"]

_DEFAULT_MODELS = ("erdos-renyi", "waxman", "barabasi-albert", "glp", "pfp", "serrano")


def run_f8(
    n: int = 2000,
    max_sources: int = 300,
    seed: int = 7,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Hop-count distributions for the reference plus selected models."""
    result = ExperimentResult(
        experiment_id="F8", title="Shortest path length distribution P(l)"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        stats = path_length_distribution(gc, max_sources=max_sources, seed=seed)
        result.add_series(
            f"{name} (l, P)", [(float(d), p) for d, p in stats.probabilities()]
        )
        rows.append([name, stats.mean, stats.max_observed])
        return stats.mean

    ref_mean = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "path statistics", ["model", "<l>", "max l observed"], rows
    )
    result.notes["reference_mean_path"] = ref_mean
    means = {row[0]: row[1] for row in rows}
    if "waxman" in means:
        # Geography without hubs stretches paths: Waxman is the outlier.
        result.notes["waxman_vs_reference_path_ratio"] = means["waxman"] / ref_mean
    return result
