"""The standard model roster used by the comparison experiments.

One place defines which generator configurations enter the shoot-outs, so
every table/figure compares the same contestants.  Densities are calibrated
to the reference map's average degree (≈ 4–5) where the model has a free
density knob; degree-driven models keep their published parameters.
"""

from __future__ import annotations

from typing import Dict, List

from ..generators.albert_barabasi import AlbertBarabasiGenerator
from ..generators.barabasi_albert import BarabasiAlbertGenerator
from ..generators.base import TopologyGenerator
from ..generators.erdos_renyi import ErdosRenyiGnm
from ..generators.glp import GlpGenerator
from ..generators.gtitm import TransitStubGenerator
from ..generators.hot import HotGenerator
from ..generators.inet import InetGenerator
from ..generators.pfp import PfpGenerator
from ..generators.plrg import PlrgGenerator
from ..generators.serrano import SerranoGenerator
from ..generators.waxman import WaxmanGenerator

__all__ = ["standard_roster", "heavy_tail_roster", "ROSTER_ORDER"]

#: Presentation order for tables (baselines first, then structural, then
#: growth, then weighted-growth).
ROSTER_ORDER: List[str] = [
    "erdos-renyi",
    "waxman",
    "transit-stub",
    "hot",
    "plrg",
    "inet",
    "barabasi-albert",
    "albert-barabasi",
    "glp",
    "pfp",
    "serrano",
    "serrano-distance",
]


def standard_roster(n: int) -> Dict[str, TopologyGenerator]:
    """All twelve contestants, density-calibrated for size *n*."""
    target_edges = int(2.15 * n)  # reference map density, <k> ≈ 4.3
    if n >= 500:
        transit_stub = TransitStubGenerator()
    else:
        # Shrink the hierarchy so tiny sweep sizes stay feasible.
        transit_stub = TransitStubGenerator(
            transit_domains=2, transit_size=4, stubs_per_transit=3
        )
    return {
        "erdos-renyi": ErdosRenyiGnm(m=target_edges),
        "waxman": WaxmanGenerator(
            beta=WaxmanGenerator.beta_for_average_degree(n, 4.3)
        ),
        "transit-stub": transit_stub,
        "hot": HotGenerator(extra_links=1),
        "plrg": PlrgGenerator(gamma=2.2),
        "inet": InetGenerator(gamma=2.2),
        "barabasi-albert": BarabasiAlbertGenerator(m=2),
        "albert-barabasi": AlbertBarabasiGenerator(m=1, p=0.35, q=0.05),
        "glp": GlpGenerator(),
        "pfp": PfpGenerator(),
        "serrano": SerranoGenerator(),
        "serrano-distance": SerranoGenerator(distance=True),
    }


def heavy_tail_roster(n: int) -> Dict[str, TopologyGenerator]:
    """The subset with heavy-tailed degree claims (used by spectra plots)."""
    roster = standard_roster(n)
    keep = ("plrg", "inet", "barabasi-albert", "glp", "pfp", "serrano", "serrano-distance")
    return {name: roster[name] for name in keep}
