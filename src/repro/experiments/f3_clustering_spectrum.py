"""Experiment F3 — the clustering spectrum c(k).

The AS map's mean clustering *decays* with degree (hierarchy: providers'
neighborhoods are sparse, stub cliques are dense).  The figure overlays
c(k) for the reference and the heavy-tail roster; the table reports the
fitted decay slope of c(k) ~ k^-s — s ≈ 0.7–0.8 for the reference, s ≈ 0
(flat) for plain BA, the model the spectrum was designed to expose.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..graph.clustering import clustering_spectrum
from ..graph.traversal import giant_component
from ..stats.growth import fit_power_scaling
from .base import ExperimentResult
from .rosters import heavy_tail_roster

__all__ = ["run_f3"]


def _decay_slope(spectrum) -> float:
    """Fitted s in c(k) ~ k^-s over positive-c bins (NaN when too sparse)."""
    points = [(k, c) for k, c in spectrum if c > 0]
    if len(points) < 3:
        return float("nan")
    fit = fit_power_scaling([k for k, _ in points], [c for _, c in points])
    return -fit.exponent


def run_f3(n: int = 2000, seed: int = 2, models: Optional[list] = None) -> ExperimentResult:
    """Clustering spectra for the reference and heavy-tail roster."""
    result = ExperimentResult(experiment_id="F3", title="Clustering spectrum c(k)")
    roster = heavy_tail_roster(n)
    selected = models if models is not None else list(roster)
    rows = []

    def add(name, graph):
        spectrum = clustering_spectrum(giant_component(graph), bins_per_decade=6)
        result.add_series(f"{name} (k, c)", spectrum)
        slope = _decay_slope(spectrum)
        mean_c = (
            sum(c for _, c in spectrum) / len(spectrum) if spectrum else 0.0
        )
        rows.append([name, mean_c, slope])
        return slope

    ref_slope = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "c(k) decay slopes (c ~ k^-s)", ["model", "mean c(k)", "s"], rows
    )
    result.notes["reference_decay_slope"] = ref_slope
    return result
