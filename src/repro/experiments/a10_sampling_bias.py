"""Experiment A10 (extension) — traceroute sampling bias.

Lakhina–Byers–Crovella–Xie (and Clauset–Moore analytically): shortest-path
sampling from few monitors makes even a *degree-homogeneous* network look
heavy-tailed, because monitors see their BFS trees, and trees have many
leaves.  The keynote-era debate about whether the internet's power law was
real or a measurement artifact rests on exactly this effect.

Expected shape: a dense ER ground truth (no fittable tail, low degree
Gini) sampled from 1–2 monitors yields an AS-map-looking exponent
γ ≈ 2–3 and a sharply higher Gini; adding monitors dissolves the illusion
(the fitted exponent runs away and the Gini falls back toward truth).
"""

from __future__ import annotations

import math
from typing import Sequence

from ..analysis.sampling_bias import traceroute_sample
from ..generators.erdos_renyi import ErdosRenyiGnm
from ..graph.traversal import giant_component
from ..stats.distributions import empirical_ccdf
from ..stats.inequality import gini_coefficient
from ..stats.powerlaw import fit_powerlaw_auto_xmin
from .base import ExperimentResult

__all__ = ["run_a10"]


def _gamma_or_nan(degrees, min_tail: int = 50) -> float:
    try:
        return fit_powerlaw_auto_xmin(degrees, min_tail=min_tail).gamma
    except ValueError:
        return float("nan")


def run_a10(
    n: int = 1500,
    mean_degree: float = 16.0,
    monitor_counts: Sequence[int] = (1, 2, 5, 20),
    seed: int = 67,
) -> ExperimentResult:
    """Sample a dense ER truth with growing monitor sets."""
    result = ExperimentResult(
        experiment_id="A10", title="Traceroute sampling bias on an ER truth"
    )
    truth = giant_component(
        ErdosRenyiGnm(m=int(mean_degree * n / 2)).generate(n, seed=seed)
    )
    true_degrees = list(truth.degrees().values())
    true_gamma = _gamma_or_nan(true_degrees)
    true_gini = gini_coefficient(true_degrees)
    result.add_series(
        "truth (k, P_c)", empirical_ccdf(true_degrees).as_points()
    )

    rows = [["truth (full graph)", truth.num_edges, true_gamma, true_gini]]
    gamma_by_monitors = {}
    for monitors in monitor_counts:
        sampled = traceroute_sample(truth, num_monitors=monitors, seed=seed + monitors)
        degrees = list(sampled.degrees().values())
        gamma = _gamma_or_nan(degrees)
        gini = gini_coefficient(degrees)
        gamma_by_monitors[monitors] = gamma
        rows.append([f"{monitors} monitor(s)", sampled.num_edges, gamma, gini])
        result.add_series(
            f"{monitors} monitors (k, P_c)", empirical_ccdf(degrees).as_points()
        )
    result.add_table(
        "sampled vs true degree statistics",
        ["view", "edges seen", "fitted gamma", "degree Gini"],
        rows,
    )
    few = min(monitor_counts)
    many = max(monitor_counts)
    result.notes["true_gamma"] = true_gamma
    result.notes["true_gini"] = true_gini
    result.notes["few_monitor_gamma"] = gamma_by_monitors[few]
    result.notes["many_monitor_gamma"] = gamma_by_monitors[many]
    result.notes["few_monitor_gini"] = float(
        gini_coefficient(
            list(
                traceroute_sample(truth, num_monitors=few, seed=seed + few)
                .degrees()
                .values()
            )
        )
    )
    result.notes["illusion_present"] = float(
        not math.isnan(gamma_by_monitors[few]) and gamma_by_monitors[few] < 3.5
    )
    return result
