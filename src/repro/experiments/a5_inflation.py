"""Experiment A5 (extension) — policy path inflation.

Valley-free routing vs plain shortest paths: how many hops does economics
add?  Expected shape (Gao–Wang, Spring et al. on real BGP data): a solid
majority of pairs ride shortest paths, a 10–40% minority is inflated by
one or more hops, and mean inflation stays well under one hop — policy
bends the internet's paths without breaking them.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..economics.inflation import path_inflation
from ..economics.relationships import assign_relationships
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_a5"]

_DEFAULT_MODELS = ("glp", "pfp")


def run_a5(
    n: int = 1500,
    num_destinations: int = 25,
    seed: int = 43,
    models: Optional[list] = None,
) -> ExperimentResult:
    """Inflation distributions for the reference plus selected models."""
    result = ExperimentResult(
        experiment_id="A5", title="Policy path inflation (valley-free vs shortest)"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        rels = assign_relationships(gc)
        report = path_inflation(
            gc, rels, num_destinations=num_destinations, seed=seed
        )
        result.add_series(f"{name} (extra hops, fraction)", report.as_points())
        rows.append(
            [
                name,
                report.mean_shortest,
                report.mean_policy,
                report.mean_inflation,
                report.inflated_fraction,
                report.unreachable_fraction,
            ]
        )
        return report

    ref_report = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "inflation summary",
        ["model", "<l> shortest", "<l> policy", "mean extra hops",
         "inflated frac", "policy-unreachable frac"],
        rows,
    )
    result.notes["reference_mean_inflation"] = ref_report.mean_inflation
    result.notes["reference_inflated_fraction"] = ref_report.inflated_fraction
    result.notes["reference_unreachable_fraction"] = ref_report.unreachable_fraction
    return result
