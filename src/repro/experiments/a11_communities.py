"""Experiment A11 (extension) — community structure across models.

The cluster lens: how modular is each topology under label-propagation
communities?  Expected shape: the explicitly hierarchical transit–stub
model is strongly modular (its stub domains are literal communities, LP
recovers them with Q ≈ 0.9), while hub-stitched topologies — random,
geometric, preferential, and the AS-like reference alike — collapse into
one label (Q ≈ 0): label propagation's well-known behavior on graphs
whose "community" structure is weaker than its epidemic spreading, and a
real discriminator between *explicit* hierarchy and hub hierarchy.
"""

from __future__ import annotations

from typing import Optional

from ..datasets.asmap import reference_as_map
from ..graph.communities import label_propagation_communities, modularity
from ..graph.traversal import giant_component
from .base import ExperimentResult
from .rosters import standard_roster

__all__ = ["run_a11"]

_DEFAULT_MODELS = ("erdos-renyi", "waxman", "transit-stub", "barabasi-albert", "serrano-distance")


def run_a11(
    n: int = 1500, seed: int = 71, models: Optional[list] = None
) -> ExperimentResult:
    """Label-propagation modularity per roster model."""
    result = ExperimentResult(
        experiment_id="A11", title="Community structure (label propagation)"
    )
    roster = standard_roster(n)
    selected = models if models is not None else list(_DEFAULT_MODELS)
    rows = []

    def add(name, graph):
        gc = giant_component(graph)
        communities = label_propagation_communities(gc, seed=seed)
        q = modularity(gc, communities)
        non_trivial = [c for c in communities if len(c) > 1]
        largest = len(communities[0]) / gc.num_nodes if communities else 0.0
        rows.append([name, len(non_trivial), largest, q])
        return q

    ref_q = add("reference", reference_as_map(n))
    for name in selected:
        add(name, roster[name].generate(n, seed=seed))

    result.add_table(
        "modularity by model",
        ["model", "communities (>1 node)", "largest frac", "modularity Q"],
        rows,
    )
    by_name = {row[0]: row[3] for row in rows}
    result.notes["reference_modularity"] = ref_q
    for key in ("transit-stub", "waxman", "barabasi-albert"):
        if key in by_name:
            result.notes[f"q_{key.replace('-', '_')}"] = by_name[key]
    return result
