"""Message-level BGP path-vector simulation (propagation dynamics)."""

from .engine import BgpSimulation, ConvergenceStats
from .hijack import HijackOutcome, simulate_hijack
from .routes import CUSTOMER, ORIGIN, PEER, PROVIDER, Route, prefer, route_class

__all__ = [
    "BgpSimulation",
    "ConvergenceStats",
    "HijackOutcome",
    "simulate_hijack",
    "Route",
    "prefer",
    "route_class",
    "CUSTOMER",
    "PEER",
    "PROVIDER",
    "ORIGIN",
]
