"""Synchronous path-vector simulation engine.

Simulates BGP's propagation mechanics for one destination prefix:

* the destination originates a route to itself;
* each round, every AS whose best route changed last round advertises it to
  the neighbors its export policy allows — **customer-learned routes go to
  everyone; peer- and provider-learned routes go to customers only**
  (Gao–Rexford export);
* receivers run the decision process (customer > peer > provider, then
  shortest path, then deterministic tie-break) and discard looped paths;
* the run converges when a round produces no best-route change.

The engine counts rounds and messages — the *dynamics* the closed-form
:func:`repro.economics.routing.routing_table` cannot see — and supports
link withdrawal to measure reconvergence (BGP path exploration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from ..economics.relationships import Relationship, RelationshipMap
from ..graph.graph import Graph
from .routes import CUSTOMER, ORIGIN, Route, prefer, route_class

__all__ = ["ConvergenceStats", "BgpSimulation"]

Node = Hashable


@dataclass(frozen=True)
class ConvergenceStats:
    """Outcome of one convergence run."""

    destination: Node
    rounds: int
    messages: int
    routed_ases: int

    def __str__(self) -> str:
        return (
            f"dest={self.destination!r}: {self.rounds} rounds, "
            f"{self.messages} messages, {self.routed_ases} ASes routed"
        )


class BgpSimulation:
    """Path-vector propagation for one destination on one topology.

    The simulation owns per-AS RIBs (best route per AS).  ``converge()``
    runs to a fixed point; ``withdraw_link()`` then models a failure and
    ``converge()`` again measures reconvergence.  The topology reference is
    read-only — withdrawals are tracked internally.
    """

    def __init__(self, graph: Graph, rels: RelationshipMap, destination: Node):
        if not graph.has_node(destination):
            raise KeyError(f"destination {destination!r} not in graph")
        self._graph = graph
        self._rels = rels
        self.destination = destination
        self._down_links: set = set()
        self.rib: Dict[Node, Route] = {}
        self._reset()

    def _reset(self) -> None:
        origin = Route(
            destination=self.destination,
            path=(self.destination,),
            learned_from=None,
            pref_class=ORIGIN,
        )
        self.rib = {self.destination: origin}
        self._pending: List[Node] = [self.destination]

    # ------------------------------------------------------------- policy

    def _link_up(self, u: Node, v: Node) -> bool:
        return frozenset((u, v)) not in self._down_links

    def _export_targets(self, owner: Node, route: Route) -> List[Node]:
        """Neighbors the export policy lets *owner* advertise *route* to."""
        exports: List[Node] = []
        to_everyone = route.pref_class in (ORIGIN, CUSTOMER)
        for neighbor in sorted(self._graph.neighbors(owner), key=str):
            if not self._link_up(owner, neighbor):
                continue
            if to_everyone:
                exports.append(neighbor)
                continue
            # Peer/provider routes are exported only to customers.
            rel = self._rels.relationship(owner, neighbor)
            if rel is Relationship.PROVIDER_TO_CUSTOMER:
                exports.append(neighbor)
        return exports

    def _consider(self, receiver: Node, advertised: Route) -> bool:
        """Run the decision process at *receiver*; True if the best changed."""
        if advertised.contains_loop_for(receiver):
            return False
        sender = advertised.path[0]
        candidate = Route(
            destination=advertised.destination,
            path=(receiver,) + advertised.path,
            learned_from=sender,
            pref_class=route_class(self._rels, receiver, sender),
        )
        incumbent = self.rib.get(receiver)
        if incumbent is None:
            self.rib[receiver] = candidate
            return True
        best = prefer(incumbent, candidate)
        if best is not incumbent and best.path != incumbent.path:
            self.rib[receiver] = best
            return True
        return False

    # ------------------------------------------------------------- running

    def converge(self, max_rounds: int = 10_000) -> ConvergenceStats:
        """Propagate until stable; returns rounds/messages statistics."""
        rounds = 0
        messages = 0
        while self._pending:
            rounds += 1
            if rounds > max_rounds:
                raise RuntimeError("BGP simulation failed to converge")
            changed_next: List[Node] = []
            changed_set = set()
            for owner in self._pending:
                route = self.rib.get(owner)
                if route is None:
                    continue
                for neighbor in self._export_targets(owner, route):
                    messages += 1
                    if self._consider(neighbor, route) and neighbor not in changed_set:
                        changed_set.add(neighbor)
                        changed_next.append(neighbor)
            self._pending = changed_next
        return ConvergenceStats(
            destination=self.destination,
            rounds=rounds,
            messages=messages,
            routed_ases=len(self.rib),
        )

    def withdraw_link(self, u: Node, v: Node) -> None:
        """Fail the link (u, v) and invalidate every route crossing it.

        Affected ASes fall back to their remaining advertisements at the
        next :meth:`converge` call; routes are recomputed from scratch for
        correctness (full-table walk), which models a hard session reset.
        """
        if not self._graph.has_edge(u, v):
            raise KeyError(f"link ({u!r}, {v!r}) not in topology")
        self._down_links.add(frozenset((u, v)))
        # Restart propagation without the failed link.  (A message-level
        # withdraw dance would converge to the same fixed point; rounds
        # reported afterwards measure full reconvergence.)
        self._reset()

    def path_from(self, source: Node) -> Optional[Tuple[Node, ...]]:
        """The converged AS path from *source*, or None if unrouted."""
        route = self.rib.get(source)
        return route.path if route is not None else None
