"""Prefix hijacking: how much of the internet believes the liar?

In a prefix hijack an attacker originates a victim's prefix; every AS then
holds two candidate routes to "the same destination" and picks by the
ordinary decision process (customer > peer > provider, then path length).
The classic measurement (Ballani–Francis–Zhang): the *attacker's position
in the hierarchy* decides the damage — a tier-1 attacker poisons most of
the internet, a stub attacker poisons almost nobody, and the victim's own
customer cone stays loyal because customer routes always win.

:func:`simulate_hijack` runs both origins' propagation and compares RIBs
per AS, returning the capture set and its composition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set

from ..economics.relationships import RelationshipMap
from ..graph.graph import Graph
from .engine import BgpSimulation
from .routes import Route

__all__ = ["HijackOutcome", "simulate_hijack"]

Node = Hashable


@dataclass(frozen=True)
class HijackOutcome:
    """Result of one hijack scenario.

    ``captured`` — ASes whose best route points at the attacker;
    ``loyal`` — ASes still routing to the victim; ``blackholed`` — ASes
    with no route to either origin.  The victim and attacker themselves are
    excluded from all three sets.
    """

    victim: Node
    attacker: Node
    captured: Set[Node]
    loyal: Set[Node]
    blackholed: Set[Node]

    @property
    def capture_fraction(self) -> float:
        """Captured share of the ASes that can reach either origin."""
        reachable = len(self.captured) + len(self.loyal)
        if reachable == 0:
            return 0.0
        return len(self.captured) / reachable


def _better(ours: Optional[Route], theirs: Optional[Route]) -> bool:
    """Whether *theirs* (attacker's route) beats *ours* (victim's)."""
    if theirs is None:
        return False
    if ours is None:
        return True
    # Same decision process as Route.prefer, ignoring the destination
    # mismatch (both announcements claim the same prefix).
    key_ours = (ours.pref_class, ours.hops, str(ours.learned_from))
    key_theirs = (theirs.pref_class, theirs.hops, str(theirs.learned_from))
    return key_theirs < key_ours


def simulate_hijack(
    graph: Graph,
    rels: RelationshipMap,
    victim: Node,
    attacker: Node,
) -> HijackOutcome:
    """Run the two-origin contest for one prefix.

    Propagates the victim's and the attacker's announcements separately
    (path-vector propagation is per-origin), then lets every other AS pick
    between its two candidate routes with the standard decision process.
    """
    if victim == attacker:
        raise ValueError("attacker and victim must differ")
    victim_sim = BgpSimulation(graph, rels, victim)
    victim_sim.converge()
    attacker_sim = BgpSimulation(graph, rels, attacker)
    attacker_sim.converge()

    captured: Set[Node] = set()
    loyal: Set[Node] = set()
    blackholed: Set[Node] = set()
    for node in graph.nodes():
        if node in (victim, attacker):
            continue
        honest = victim_sim.rib.get(node)
        forged = attacker_sim.rib.get(node)
        if honest is None and forged is None:
            blackholed.add(node)
        elif _better(honest, forged):
            captured.add(node)
        else:
            loyal.add(node)
    return HijackOutcome(
        victim=victim, attacker=attacker,
        captured=captured, loyal=loyal, blackholed=blackholed,
    )
