"""BGP route records and the Gao–Rexford decision process.

A :class:`Route` is what one AS knows about one destination: the AS path it
would use and the neighbor it learned the route from.  Preference follows
the canonical policy ordering — local preference class (customer > peer >
provider), then shortest AS path, then a deterministic tie-break on the
next hop — which is exactly the decision process whose stable state the
declarative :mod:`repro.economics.routing` computes in closed form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Optional, Tuple

from ..economics.relationships import Relationship, RelationshipMap

__all__ = ["Route", "route_class", "prefer", "CUSTOMER", "PEER", "PROVIDER", "ORIGIN"]

Node = Hashable

# Local-preference classes, lower is better (matches economics.routing).
CUSTOMER = 0
PEER = 1
PROVIDER = 2
ORIGIN = -1  # the destination's own route to itself


@dataclass(frozen=True)
class Route:
    """One AS's candidate route to a destination.

    ``path`` starts at the owning AS and ends at the destination;
    ``learned_from`` is the neighbor that advertised it (None at the
    origin); ``pref_class`` caches the local-preference class.
    """

    destination: Node
    path: Tuple[Node, ...]
    learned_from: Optional[Node]
    pref_class: int

    @property
    def hops(self) -> int:
        """AS-path length in hops."""
        return len(self.path) - 1

    def contains_loop_for(self, node: Node) -> bool:
        """Whether advertising this route to *node* would loop."""
        return node in self.path


def route_class(rels: RelationshipMap, owner: Node, learned_from: Node) -> int:
    """Local-preference class of a route *owner* learned from a neighbor."""
    relationship = rels.relationship(owner, learned_from)
    if relationship is Relationship.PROVIDER_TO_CUSTOMER:
        return CUSTOMER  # the neighbor is my customer
    if relationship is Relationship.PEER_TO_PEER:
        return PEER
    return PROVIDER


def prefer(a: Route, b: Route) -> Route:
    """The better of two routes under the Gao–Rexford decision process."""
    if a.destination != b.destination:
        raise ValueError("cannot compare routes to different destinations")
    key_a = (a.pref_class, a.hops, str(a.learned_from))
    key_b = (b.pref_class, b.hops, str(b.learned_from))
    return a if key_a <= key_b else b
