"""Command-line interface.

Four subcommands cover the common workflows::

    repro models                           # list registered generators
    repro generate glp -n 3000 -o g.txt    # write an edge list
    repro summarize g.txt                  # metric battery on a file
    repro compare glp --n 2000 --seed 7    # model vs reference map

Parameters for ``generate``/``compare`` are passed as ``--param key=value``
pairs and coerced to int/float/bool when they look like one.
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Dict, List, Optional

from .core.compare import compare_graphs
from .core.metrics import summarize
from .core.registry import available_models, make_generator
from .core.report import format_table
from .datasets.asmap import reference_as_map
from .graph.io import read_edge_list, write_edge_list

__all__ = ["main", "build_parser", "coerce_value"]


def coerce_value(text: str) -> Any:
    """Best-effort str → int/float/bool conversion for --param values."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        params[key] = coerce_value(value)
    return params


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="internet topology modeling toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered generator names")

    gen = sub.add_parser("generate", help="generate a topology to an edge list")
    gen.add_argument("model", help="registry name, e.g. glp")
    gen.add_argument("-n", "--nodes", type=int, required=True)
    gen.add_argument("-s", "--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True, help="edge-list path")
    gen.add_argument("--param", action="append", metavar="KEY=VALUE")

    summ = sub.add_parser("summarize", help="metric battery on an edge-list file")
    summ.add_argument("path", help="edge-list file")

    cmp_cmd = sub.add_parser("compare", help="model vs reference AS map")
    cmp_cmd.add_argument("model", help="registry name")
    cmp_cmd.add_argument("-n", "--nodes", type=int, default=3000)
    cmp_cmd.add_argument("-s", "--seed", type=int, default=1)
    cmp_cmd.add_argument("--param", action="append", metavar="KEY=VALUE")

    exp = sub.add_parser("experiment", help="run one experiment harness (F1..F9, T1..T4)")
    exp.add_argument("experiment_id", help="e.g. f2 or T1")
    exp.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="keyword overrides for the run_* function, e.g. n=1000")

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "models":
        for name in available_models():
            print(name)
        return 0
    if args.command == "generate":
        generator = make_generator(args.model, **_parse_params(args.param))
        graph = generator.generate(args.nodes, seed=args.seed)
        write_edge_list(graph, args.output)
        print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.output}")
        return 0
    if args.command == "summarize":
        graph = read_edge_list(args.path)
        summary = summarize(graph)
        rows = sorted(summary.as_dict().items())
        print(format_table(["metric", "value"], rows, title=summary.name))
        return 0
    if args.command == "compare":
        generator = make_generator(args.model, **_parse_params(args.param))
        graph = generator.generate(args.nodes, seed=args.seed)
        result = compare_graphs(graph, reference_as_map(args.nodes), seed=args.seed)
        print(result)
        return 0
    if args.command == "experiment":
        from . import experiments

        run_name = f"run_{args.experiment_id.lower()}"
        runner = getattr(experiments, run_name, None)
        if runner is None:
            known = sorted(
                name[4:].upper()
                for name in dir(experiments)
                if name.startswith("run_")
            )
            raise SystemExit(
                f"unknown experiment {args.experiment_id!r}; known: {', '.join(known)}"
            )
        result = runner(**_parse_params(args.param))
        print(result.render())
        return 0
    raise SystemExit(f"unknown command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
