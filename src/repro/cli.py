"""Command-line interface.

The subcommands cover the common workflows::

    repro models                           # list registered generators
    repro generate glp -n 3000 -o g.txt    # write an edge list
    repro summarize g.txt                  # metric battery on a file
    repro compare glp --n 2000 --seed 7    # model vs reference map
    repro battery glp pfp serrano -n 2000 --jobs 4 --cache-dir ~/.repro-cache
    repro journal summarize run.jsonl      # per-run report from a journal

Parameters for ``generate``/``compare`` are passed as ``--param key=value``
pairs and coerced to int/float/bool when they look like one.  ``battery``
and ``experiment`` accept ``--jobs N`` (process-parallel work units),
``--cache-dir PATH`` (content-addressed result reuse across runs),
``--no-cache``, and the fault-tolerance knobs ``--timeout SECONDS``
(per-unit limit), ``--retries N`` (re-attempts before a unit is declared
dead) and ``--journal PATH`` (append-only JSONL event log); results are
bit-identical for every combination, and a failed unit costs only its own
replicate.

Observability rides on the same two subcommands: ``--trace out.json``
records a Chrome trace-event file of the run's span tree (open it in
Perfetto), ``--metrics-out metrics.prom`` dumps the run's counters and
timers in Prometheus text format, and ``--profile-dir DIR`` cProfiles
each work unit and prints a merged hotspot table.  ``repro journal``
turns the artifacts back into reports: ``summarize`` (per-run wall time,
skew, cache efficiency), ``tail`` (last events, one line each) and
``spans`` (aggregate a trace file by span name).

``repro perf`` closes the loop on the benchmark suite's machine-readable
records (``benchmarks/output/BENCH_<id>.json``): ``record`` rolls a
record set into a committed baseline file, ``compare`` checks the
current records against that baseline (noise-tolerant wall/RSS
thresholds) and against the declarative acceptance floors in
``benchmarks/perf_floors.json``, and ``report`` prints the trajectory of
every bench-published value next to its baseline counterpart.

``repro serve`` is the long-running serving layer (see
``docs/serving.md``): ``run`` starts the warm-pool HTTP service,
``call`` issues one request against a running service, and ``bench``
replays heavy-tailed synthetic traffic and prints p50/p99 latency,
throughput, and coalescing/generation evidence.
"""

from __future__ import annotations

import argparse
import inspect
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional

from .core.battery import compare_models
from .core.compare import compare_graphs
from .core.metrics import summarize
from .core.registry import available_models, make_generator
from .core.report import format_table
from .datasets.asmap import reference_as_map
from .graph.io import read_edge_list, write_edge_list
from .obs import (
    MetricsRegistry,
    Tracer,
    export_chrome_trace,
    merge_profiles,
    render_prometheus,
    set_registry,
    set_tracer,
    validate_chrome_trace,
)

__all__ = ["main", "build_parser", "coerce_value"]


def coerce_value(text: str) -> Any:
    """Best-effort str → int/float/bool conversion for --param values."""
    lowered = text.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def _parse_params(pairs: Optional[List[str]]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs or []:
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, _, value = pair.partition("=")
        params[key] = coerce_value(value)
    return params


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro", description="internet topology modeling toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list registered generator names")

    gen = sub.add_parser("generate", help="generate a topology to an edge list")
    gen.add_argument("model", help="registry name, e.g. glp")
    gen.add_argument("-n", "--nodes", type=int, required=True)
    gen.add_argument("-s", "--seed", type=int, default=None)
    gen.add_argument("-o", "--output", required=True, help="edge-list path")
    gen.add_argument("--param", action="append", metavar="KEY=VALUE")
    gen.add_argument(
        "--engine", default="auto", choices=("auto", "python", "vector"),
        help="growth-kernel engine (vector is the batch fast path; auto "
        "picks by target size)",
    )

    summ = sub.add_parser("summarize", help="metric battery on an edge-list file")
    summ.add_argument("path", help="edge-list file")
    summ.add_argument(
        "--backend", default="auto", choices=("auto", "python", "csr"),
        help="metric kernel backend (values are identical; csr is the "
        "numpy fast path, auto picks by graph size)",
    )

    cmp_cmd = sub.add_parser("compare", help="model vs reference AS map")
    cmp_cmd.add_argument("model", help="registry name")
    cmp_cmd.add_argument("-n", "--nodes", type=int, default=3000)
    cmp_cmd.add_argument("-s", "--seed", type=int, default=1)
    cmp_cmd.add_argument("--param", action="append", metavar="KEY=VALUE")
    cmp_cmd.add_argument(
        "--engine", default="auto", choices=("auto", "python", "vector"),
        help="growth-kernel engine (vector is the batch fast path; auto "
        "picks by target size)",
    )

    battery = sub.add_parser(
        "battery",
        help="parallel, cached metric battery: many models vs reference map",
    )
    battery.add_argument(
        "models", nargs="*",
        help="model names (default: the standard comparison roster)",
    )
    battery.add_argument("-n", "--nodes", type=int, default=2000)
    battery.add_argument("--seeds", type=int, default=3)
    battery.add_argument("--base-seed", type=int, default=21)
    _add_battery_flags(battery)

    exp = sub.add_parser("experiment", help="run one experiment harness (F1..F9, T1..T5)")
    exp.add_argument("experiment_id", help="e.g. f2 or T1")
    exp.add_argument("--param", action="append", metavar="KEY=VALUE",
                     help="keyword overrides for the run_* function, e.g. n=1000")
    _add_battery_flags(exp)

    store = sub.add_parser(
        "store", help="disk-backed graph stores (SQLite + mmap CSR snapshot)"
    )
    ssub = store.add_subparsers(dest="store_command", required=True)
    ssave = ssub.add_parser(
        "save", help="grow a model (or ingest an edge list) into a store"
    )
    ssave.add_argument("path", help="store path (SQLite file; snapshot beside it)")
    ssave.add_argument(
        "--model", default=None, help="registry name to grow, e.g. plrg"
    )
    ssave.add_argument(
        "--input", default=None, metavar="EDGELIST",
        help="ingest an existing edge-list file instead of growing a model",
    )
    ssave.add_argument("-n", "--nodes", type=int, default=None)
    ssave.add_argument("-s", "--seed", type=int, default=None)
    ssave.add_argument("--param", action="append", metavar="KEY=VALUE")
    ssave.add_argument(
        "--engine", default="auto", choices=("auto", "python", "vector"),
        help="growth-kernel engine (vector is the batch fast path; auto "
        "picks by target size)",
    )
    ssave.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="flush every K nodes in its own transaction (resumable growth)",
    )
    ssave.add_argument(
        "--no-snapshot", action="store_true",
        help="skip writing the sidecar mmap CSR snapshot",
    )
    sload = ssub.add_parser("load", help="export a store back to an edge list")
    sload.add_argument("path", help="store path")
    sload.add_argument("-o", "--output", required=True, help="edge-list path")
    sinfo = ssub.add_parser("info", help="store summary (counts, snapshot state)")
    sinfo.add_argument("path", help="store path")
    smeasure = ssub.add_parser(
        "measure", help="size metric group from the mmap CSR view alone"
    )
    smeasure.add_argument("path", help="store path")

    journal = sub.add_parser(
        "journal", help="reports from run journals and trace files"
    )
    jsub = journal.add_subparsers(dest="journal_command", required=True)
    jsum = jsub.add_parser(
        "summarize", help="per-run wall time / skew / cache report"
    )
    jsum.add_argument("path", help="JSONL run journal")
    jsum.add_argument(
        "--run", default="", metavar="RUN_ID",
        help="report only this run id (default: every run in the journal)",
    )
    jtail = jsub.add_parser("tail", help="last journal events, one line each")
    jtail.add_argument("path", help="JSONL run journal")
    jtail.add_argument("-n", "--count", type=int, default=20)
    jspans = jsub.add_parser(
        "spans", help="aggregate a Chrome trace file by span name"
    )
    jspans.add_argument("path", help="trace file written by --trace")
    jspans.add_argument(
        "--top", type=int, default=0,
        help="only the N heaviest span names (default: all)",
    )

    perf = sub.add_parser(
        "perf",
        help="benchmark telemetry: records, baselines, regression gates",
    )
    psub = perf.add_subparsers(dest="perf_command", required=True)

    def _records_flag(sub_parser):
        sub_parser.add_argument(
            "--records", default="benchmarks/output", metavar="DIR",
            help="directory holding BENCH_<id>.json records "
            "(default: benchmarks/output)",
        )

    precord = psub.add_parser(
        "record", help="roll the current BENCH records into a baseline file"
    )
    _records_flag(precord)
    precord.add_argument(
        "-o", "--output", default="benchmarks/perf_baseline.json",
        help="baseline file to write (default: benchmarks/perf_baseline.json)",
    )
    precord.add_argument(
        "--note", default="", help="free-form provenance note for the baseline"
    )
    pcompare = psub.add_parser(
        "compare",
        help="current records vs committed baseline + declarative floors",
    )
    _records_flag(pcompare)
    pcompare.add_argument(
        "--baseline", default="benchmarks/perf_baseline.json",
        help="committed baseline file (default: benchmarks/perf_baseline.json)",
    )
    pcompare.add_argument(
        "--floors", default="benchmarks/perf_floors.json",
        help="declarative acceptance-floor file; pass an empty string to "
        "skip floor checks (default: benchmarks/perf_floors.json)",
    )
    pcompare.add_argument(
        "--wall-tolerance", type=float, default=None, metavar="RATIO",
        help="wall-clock regression ratio (default 2.0; a regression must "
        "also exceed the absolute slack)",
    )
    pcompare.add_argument(
        "--rss-tolerance", type=float, default=None, metavar="RATIO",
        help="peak-RSS regression ratio (default 1.5; a regression must "
        "also exceed the absolute slack)",
    )
    preport = psub.add_parser(
        "report", help="trajectory of published bench values vs baseline"
    )
    _records_flag(preport)
    preport.add_argument(
        "--baseline", default="benchmarks/perf_baseline.json",
        help="baseline for the comparison column (skipped when missing)",
    )

    serve = sub.add_parser(
        "serve",
        help="topology-as-a-service: warm-pool HTTP serving layer",
    )
    vsub = serve.add_subparsers(dest="serve_command", required=True)

    def _serve_flags(sub_parser):
        sub_parser.add_argument(
            "--jobs", type=int, default=2,
            help="warm worker-pool size (processes, spawned once)",
        )
        sub_parser.add_argument(
            "--root", default=None, metavar="DIR",
            help="service state directory (result cells, snapshot spool, "
            "named worlds); a private temp dir when omitted",
        )
        sub_parser.add_argument(
            "--queue-limit", type=int, default=64,
            help="bounded job-queue depth; excess load gets HTTP 503",
        )
        sub_parser.add_argument("--journal", default=None, metavar="PATH",
                                help="append a JSONL service journal")
        sub_parser.add_argument(
            "--backend", default="auto", choices=("auto", "python", "csr")
        )
        sub_parser.add_argument(
            "--engine", default="auto", choices=("auto", "python", "vector")
        )
        sub_parser.add_argument(
            "--timeout", type=float, default=None, metavar="SECONDS",
            help="per-unit timeout on the worker pool",
        )

    srun = vsub.add_parser("run", help="run the HTTP service until interrupted")
    srun.add_argument("--host", default="127.0.0.1")
    srun.add_argument("--port", type=int, default=8321)
    _serve_flags(srun)

    scall = vsub.add_parser(
        "call", help="one request against a running service"
    )
    scall.add_argument(
        "op",
        choices=(
            "health", "stats", "summarize", "generate", "compare", "worlds"
        ),
    )
    scall.add_argument("--url", default="http://127.0.0.1:8321")
    scall.add_argument("--model", default=None)
    scall.add_argument("-n", "--nodes", type=int, default=1000)
    scall.add_argument("-s", "--seed", type=int, default=0)
    scall.add_argument("--param", action="append", metavar="KEY=VALUE")
    scall.add_argument(
        "--groups", default=None,
        help="comma-separated metric groups (default: the full battery)",
    )

    sbench = vsub.add_parser(
        "bench",
        help="p50/p99 load harness (in-process server unless --url)",
    )
    sbench.add_argument(
        "--url", default=None,
        help="target an already-running service instead of an in-process one",
    )
    sbench.add_argument("--requests", type=int, default=100)
    sbench.add_argument("--threads", type=int, default=8)
    sbench.add_argument(
        "--models", default="albert-barabasi,waxman",
        help="comma-separated model names for the synthetic traffic",
    )
    sbench.add_argument("-n", "--nodes", type=int, default=400)
    sbench.add_argument("--seeds", type=int, default=2)
    sbench.add_argument(
        "--compare-every", type=int, default=0, metavar="K",
        help="every K-th request is a full-battery compare (0 = never)",
    )
    sbench.add_argument("--duplicate-rounds", type=int, default=3)
    sbench.add_argument(
        "--prime", action="store_true",
        help="touch every (model, seed) key once before timing (warm path)",
    )
    sbench.add_argument(
        "--require-coalesce", action="store_true",
        help="exit 1 unless at least one request was coalesced",
    )
    _serve_flags(sbench)

    return parser


def _add_battery_flags(parser: argparse.ArgumentParser) -> None:
    """Attach the shared parallelism/caching flags to a subcommand."""
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for battery work units (default 1)",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="content-addressed result cache directory (reused across runs)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even if --cache-dir is given",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-unit wall-clock limit; overruns become recorded failures",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-attempts for a failed/timed-out unit before giving up",
    )
    parser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="append a JSONL run journal (one event per unit/cache hit)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="PATH",
        help="write a Chrome trace-event JSON of the run's span tree",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the run's metrics in Prometheus text format",
    )
    parser.add_argument(
        "--profile-dir", default=None, metavar="DIR",
        help="cProfile every work unit into DIR and print merged hotspots",
    )
    parser.add_argument(
        "--backend", default="auto", choices=("auto", "python", "csr"),
        help="metric kernel backend (values are identical; csr is the "
        "numpy fast path, auto picks by graph size)",
    )
    parser.add_argument(
        "--engine", default="auto", choices=("auto", "python", "vector"),
        help="growth-kernel engine for the roster's generators (vector is "
        "the batch fast path; auto picks by target size)",
    )
    parser.add_argument(
        "--transport", default="auto", choices=("auto", "regenerate", "shared"),
        help="graph transport for battery workers (shared publishes each "
        "topology once as a zero-copy snapshot and splits metric groups "
        "into independent units; results are identical either way; auto "
        "picks by size and group count, env REPRO_TRANSPORT)",
    )


def _obs_setup(args):
    """Install fresh ambient tracer/registry per the --trace/--metrics-out
    flags; returns an opaque state tuple for :func:`_obs_teardown`."""
    tracer = previous_tracer = None
    registry = previous_registry = None
    if getattr(args, "trace", None):
        tracer = Tracer(enabled=True)
        previous_tracer = set_tracer(tracer)
    if getattr(args, "metrics_out", None):
        registry = MetricsRegistry()
        previous_registry = set_registry(registry)
    return tracer, registry, previous_tracer, previous_registry


def _obs_teardown(args, state) -> None:
    """Export the artifacts the flags asked for, print where they went, and
    restore the ambient tracer/registry that preceded the command."""
    tracer, registry, previous_tracer, previous_registry = state
    if tracer is not None:
        set_tracer(previous_tracer)
        path = export_chrome_trace(tracer.spans, args.trace)
        counts = validate_chrome_trace(path)
        print(f"trace: {counts['spans']} spans ({counts['nested']} nested) -> {path}")
    if registry is not None:
        set_registry(previous_registry)
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(registry))
        print(f"metrics: wrote {args.metrics_out}")
    profile_dir = getattr(args, "profile_dir", None)
    if profile_dir:
        headers, rows = merge_profiles(profile_dir)
        if rows:
            print()
            print(format_table(
                headers, rows, title="profile hotspots (by cumulative time)"
            ))


def _cache_from_args(args) -> Optional[str]:
    """--cache-dir unless --no-cache wins; None means no caching."""
    if getattr(args, "no_cache", False):
        return None
    return getattr(args, "cache_dir", None)


def _make_generator_or_exit(name: str, **params):
    """Instantiate a registered model, exiting cleanly on a bad name.

    A typo'd model name is a usage error, not an internal one: it becomes
    a ``SystemExit`` message listing :func:`available_models`, never a raw
    ``KeyError`` traceback.
    """
    try:
        return make_generator(name, **params)
    except KeyError:
        known = ", ".join(available_models())
        raise SystemExit(
            f"repro: unknown model {name!r}; available models: {known}"
        ) from None


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "models":
        for name in available_models():
            print(name)
        return 0
    if args.command == "generate":
        generator = _make_generator_or_exit(args.model, **_parse_params(args.param))
        generator.engine = args.engine
        graph = generator.generate(args.nodes, seed=args.seed)
        write_edge_list(graph, args.output)
        print(f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges to {args.output}")
        return 0
    if args.command == "summarize":
        graph = read_edge_list(args.path)
        summary = summarize(graph, backend=args.backend)
        rows = sorted(summary.as_dict().items())
        print(format_table(["metric", "value"], rows, title=summary.name))
        return 0
    if args.command == "compare":
        generator = _make_generator_or_exit(args.model, **_parse_params(args.param))
        generator.engine = args.engine
        graph = generator.generate(args.nodes, seed=args.seed)
        result = compare_graphs(graph, reference_as_map(args.nodes), seed=args.seed)
        print(result)
        return 0
    if args.command == "battery":
        from .experiments.rosters import ROSTER_ORDER, standard_roster

        roster = standard_roster(args.nodes)
        names = args.models or ROSTER_ORDER
        mapping = {}
        for name in names:
            # Roster names carry the calibrated parameters; anything else
            # falls back to registry defaults.
            mapping[name] = (
                roster[name] if name in roster else _make_generator_or_exit(name)
            )
        for generator in mapping.values():
            generator.engine = args.engine
        obs_state = _obs_setup(args)
        result = compare_models(
            mapping,
            n=args.nodes,
            seeds=args.seeds,
            base_seed=args.base_seed,
            jobs=args.jobs,
            cache=_cache_from_args(args),
            timeout=args.timeout,
            retries=args.retries,
            journal=args.journal,
            profile_dir=args.profile_dir,
            backend=args.backend,
            transport=args.transport,
        )
        rows = [[model, mean] for model, mean in result.ranking()]
        spreads = {score.model: score.spread for score in result.scores}
        for row in rows:
            row.append(spreads[row[0]])
        print(format_table(
            ["model", "score", "spread"], rows,
            title=f"battery vs reference map (n={args.nodes}, seeds={args.seeds})",
        ))
        print()
        print(result.battery.render_timing())
        _obs_teardown(args, obs_state)
        return 0
    if args.command == "experiment":
        from . import experiments

        run_name = f"run_{args.experiment_id.lower()}"
        runner = getattr(experiments, run_name, None)
        if runner is None:
            known = sorted(
                name[4:].upper()
                for name in dir(experiments)
                if name.startswith("run_")
            )
            raise SystemExit(
                f"unknown experiment {args.experiment_id!r}; known: {', '.join(known)}"
            )
        params = _parse_params(args.param)
        # Thread the shared battery flags through to harnesses that take
        # them (T1, T5, A3); other experiments just ignore the flags.
        accepted = inspect.signature(runner).parameters
        if "jobs" in accepted and args.jobs != 1:
            params.setdefault("jobs", args.jobs)
        if "cache_dir" in accepted and _cache_from_args(args) is not None:
            params.setdefault("cache_dir", _cache_from_args(args))
        if "timeout" in accepted and args.timeout is not None:
            params.setdefault("timeout", args.timeout)
        if "retries" in accepted and args.retries:
            params.setdefault("retries", args.retries)
        if "journal" in accepted and args.journal is not None:
            params.setdefault("journal", args.journal)
        if "profile_dir" in accepted and args.profile_dir is not None:
            params.setdefault("profile_dir", args.profile_dir)
        if "backend" in accepted and args.backend != "auto":
            params.setdefault("backend", args.backend)
        if "engine" in accepted and args.engine != "auto":
            params.setdefault("engine", args.engine)
        if "transport" in accepted and args.transport != "auto":
            params.setdefault("transport", args.transport)
        obs_state = _obs_setup(args)
        result = runner(**params)
        print(result.render())
        _obs_teardown(args, obs_state)
        return 0
    if args.command == "store":
        return _store_command(args)
    if args.command == "journal":
        return _journal_command(args)
    if args.command == "perf":
        return _perf_command(args)
    if args.command == "serve":
        return _serve_command(args)
    raise SystemExit(f"unknown command {args.command!r}")


def _serve_dispatcher(args):
    from .serve import ServeDispatcher

    return ServeDispatcher(
        jobs=args.jobs,
        root=args.root,
        queue_limit=args.queue_limit,
        journal=args.journal,
        backend=args.backend,
        engine=args.engine,
        unit_timeout=args.timeout,
    )


def _serve_command(args) -> int:
    """Dispatch ``repro serve run|call|bench``."""
    import json

    if args.serve_command == "run":
        from .serve import TopologyServer

        dispatcher = _serve_dispatcher(args)
        server = TopologyServer(dispatcher, host=args.host, port=args.port)
        print(
            f"serving on {server.url} (jobs={args.jobs}, "
            f"root={dispatcher.root}); Ctrl-C to stop"
        )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down")
        finally:
            server.server_close()
            dispatcher.shutdown()
        return 0

    if args.serve_command == "call":
        from .serve import ServeClient, ServeClientError

        client = ServeClient(args.url)
        try:
            if args.op == "health":
                result = client.health()
            elif args.op == "stats":
                result = client.stats()
            elif args.op == "worlds":
                result = client.worlds()
            else:
                if not args.model:
                    raise SystemExit(f"repro serve call {args.op}: --model is required")
                kwargs = {"params": _parse_params(args.param) or None}
                if args.op == "summarize" and args.groups:
                    kwargs["groups"] = args.groups.split(",")
                method = getattr(client, args.op)
                result = method(args.model, args.nodes, seed=args.seed, **kwargs)
        except ServeClientError as exc:
            raise SystemExit(f"repro: {exc}") from None
        print(json.dumps(result, indent=2, sort_keys=True))
        return 0

    if args.serve_command == "bench":
        from contextlib import ExitStack

        from .serve import ServeClient, run_load, running_server

        models = [name for name in args.models.split(",") if name]
        with ExitStack() as stack:
            if args.url:
                url = args.url
            else:
                dispatcher = _serve_dispatcher(args)
                stack.callback(dispatcher.shutdown)
                url = stack.enter_context(running_server(dispatcher))
            client = ServeClient(url)
            if args.prime:
                for model in models:
                    for seed in range(args.seeds):
                        client.summarize(model, args.nodes, seed=seed)
            report = run_load(
                client,
                requests=args.requests,
                threads=args.threads,
                models=models,
                n=args.nodes,
                seeds=args.seeds,
                compare_every=args.compare_every,
                duplicate_rounds=args.duplicate_rounds,
            )
        print(report.table())
        if args.require_coalesce and report.coalesce_hits < 1:
            print("repro: expected at least one coalesced request, saw none")
            return 1
        return 0

    raise SystemExit(f"unknown serve command {args.serve_command!r}")


def _store_command(args) -> int:
    """Dispatch ``repro store save|load|info|measure``."""
    from .store import GraphStore, StoreError

    if args.store_command == "save":
        if bool(args.model) == bool(args.input):
            raise SystemExit(
                "repro store save: give exactly one of --model or --input"
            )
        if args.model:
            if args.nodes is None:
                raise SystemExit("repro store save: --model requires -n/--nodes")
            generator = _make_generator_or_exit(
                args.model, **_parse_params(args.param)
            )
            generator.engine = args.engine
            try:
                report = generator.generate_to_store(
                    args.nodes,
                    args.path,
                    seed=args.seed,
                    checkpoint_every=args.checkpoint_every,
                    snapshot=not args.no_snapshot,
                )
            except StoreError as exc:
                raise SystemExit(f"repro: {exc}") from None
            action = "grew" if report.regenerated else "reused"
            print(
                f"{action} {report.num_nodes} nodes / {report.num_edges} edges "
                f"-> {report.path} ({report.chunks_written} chunks written, "
                f"{report.chunks_resumed} resumed, {report.seconds:.2f}s)"
            )
            return 0
        from .graph.io import read_edge_list as _read

        graph = _read(args.input)
        try:
            info = GraphStore(args.path).save(
                graph,
                checkpoint_every=args.checkpoint_every,
                snapshot=not args.no_snapshot,
            )
        except StoreError as exc:
            raise SystemExit(f"repro: {exc}") from None
        print(
            f"saved {info['num_nodes']} nodes / {info['num_edges']} edges "
            f"-> {args.path} (snapshot: {info['snapshot']})"
        )
        return 0
    try:
        store = GraphStore.open(args.path)
        if args.store_command == "load":
            graph = store.load()
            write_edge_list(graph, args.output)
            print(
                f"wrote {graph.num_nodes} nodes / {graph.num_edges} edges "
                f"to {args.output}"
            )
            return 0
        if args.store_command == "info":
            rows = sorted(store.info().items())
            print(format_table(["field", "value"], rows, title=str(store.path)))
            return 0
        if args.store_command == "measure":
            rows = sorted(store.measure().items())
            print(format_table(
                ["metric", "value"], rows, title=f"{store.path} (size group)"
            ))
            return 0
    except StoreError as exc:
        raise SystemExit(f"repro: {exc}") from None
    raise SystemExit(f"unknown store command {args.store_command!r}")


def _journal_command(args) -> int:
    """Dispatch ``repro journal summarize|tail|spans``.

    A missing or empty artifact is an everyday state (the run hasn't
    happened yet, or logged nothing), so both exit cleanly with a
    one-line message — never a traceback.
    """
    from .core.journal import RunJournal
    from .obs.analysis import (
        journal_summary_tables,
        load_trace_spans,
        span_aggregate,
        tail_lines,
    )

    if args.journal_command in ("summarize", "tail"):
        if not Path(args.path).exists():
            raise SystemExit(f"repro: journal not found: {args.path}")
        events = RunJournal.read(args.path)
        if not events:
            print(f"journal {args.path}: no events")
            return 0
    if args.journal_command == "summarize":
        try:
            tables = journal_summary_tables(events, run_id=args.run)
        except KeyError as exc:
            raise SystemExit(f"repro: {exc.args[0]}") from None
        for position, (title, headers, rows) in enumerate(tables):
            if position:
                print()
            print(format_table(headers, rows, title=title))
        return 0
    if args.journal_command == "tail":
        for line in tail_lines(events, count=args.count):
            print(line)
        return 0
    if args.journal_command == "spans":
        try:
            spans = load_trace_spans(args.path)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro: {exc}") from None
        if not spans:
            print(f"trace {args.path}: no spans")
            return 0
        title, headers, rows = span_aggregate(spans, top=args.top)
        print(format_table(headers, rows, title=title))
        return 0
    raise SystemExit(f"unknown journal command {args.journal_command!r}")


def _perf_command(args) -> int:
    """Dispatch ``repro perf record|compare|report``.

    ``compare`` exits 1 when anything regressed past the noise-tolerant
    thresholds or an acceptance floor was violated — the shape a CI gate
    needs — and 0 otherwise, including for new benches with no baseline
    entry yet.
    """
    import json

    from .obs.perf import (
        build_baseline,
        compare_records,
        comparison_tables,
        load_baseline,
        load_floors,
        load_records,
        trajectory_table,
    )

    try:
        records = load_records(args.records)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"repro: {exc}") from None
    if not records:
        # Zero records is an everyday state (fresh clone, cleaned output
        # dir), matching the journal-CLI convention: a friendly one-liner
        # and exit 0 for the read-only commands, never an empty table.
        message = (
            f"no BENCH_*.json records under {args.records} — run the "
            f"benchmark suite (pytest benchmarks/) to produce some"
        )
        if args.perf_command == "record":
            raise SystemExit(f"repro: {message}")
        print(f"nothing to {args.perf_command}: {message}")
        return 0

    if args.perf_command == "record":
        baseline = build_baseline(records, note=args.note)
        Path(args.output).write_text(
            json.dumps(baseline, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        print(f"baseline: {len(records)} benches -> {args.output}")
        return 0
    if args.perf_command == "compare":
        try:
            baseline = load_baseline(args.baseline)
            floors = load_floors(args.floors) if args.floors else {}
        except (OSError, ValueError) as exc:
            raise SystemExit(f"repro: {exc}") from None
        overrides = {}
        if args.wall_tolerance is not None:
            overrides["wall_tolerance"] = args.wall_tolerance
        if args.rss_tolerance is not None:
            overrides["rss_tolerance"] = args.rss_tolerance
        comparison = compare_records(records, baseline, floors, **overrides)
        for position, (title, headers, rows) in enumerate(
            comparison_tables(comparison)
        ):
            if position:
                print()
            print(format_table(headers, rows, title=title))
        print()
        if comparison.ok:
            skipped = len(comparison.skipped_floors)
            suffix = f" ({skipped} floors skipped)" if skipped else ""
            print(f"perf: ok — {len(records)} benches within tolerance{suffix}")
            return 0
        for delta in comparison.regressions:
            print(f"perf: REGRESSION {delta.bench_id}: {delta.detail}")
        for check in comparison.violations:
            print(f"perf: FLOOR VIOLATION {check.describe()}")
        return 1
    if args.perf_command == "report":
        baseline = None
        if args.baseline and Path(args.baseline).exists():
            try:
                baseline = load_baseline(args.baseline)
            except ValueError as exc:
                raise SystemExit(f"repro: {exc}") from None
        title, headers, rows = trajectory_table(records, baseline)
        print(format_table(headers, rows, title=title))
        return 0
    raise SystemExit(f"unknown perf command {args.perf_command!r}")


if __name__ == "__main__":
    sys.exit(main())
