"""k-core decomposition (experiment F6).

The k-core of a graph is the maximal subgraph in which every node has degree
at least k inside the subgraph; a node's *coreness* is the largest k for
which it survives.  The AS map shows an unusually deep core hierarchy
(coreness ≈ 25 at year-2001 scale), which shallow growth models (plain BA:
coreness = m) fail to reproduce — making the core profile one of the
strongest discriminating measurements.

Implementation: the Batagelj–Zaveršnik bucket-peeling algorithm, O(N + E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

import numpy as np

from .csr import resolve_backend
from .graph import Graph

__all__ = ["core_numbers", "k_core", "CoreProfile", "core_profile", "degeneracy"]

Node = Hashable


def _core_numbers_csr(graph: Graph) -> Dict[Node, int]:
    """Bucket peeling on the CSR view: whole degree-≤k shells are peeled
    per pass with array masks, and the neighbor-degree decrements land via
    one ``np.bincount`` per cascade step.  Coreness is unique, so this
    agrees with the dict implementation exactly."""
    view = graph.csr()
    n = view.num_nodes
    if n == 0:
        return {}
    degrees = view.degrees.copy()
    core = np.zeros(n, dtype=np.int64)
    alive = np.ones(n, dtype=bool)
    remaining = n
    level = 0
    while remaining:
        level = max(level, int(degrees[alive].min()))
        while True:
            peel = np.nonzero(alive & (degrees <= level))[0]
            if peel.size == 0:
                break
            core[peel] = level
            alive[peel] = False
            remaining -= peel.size
            block = view.neighbor_block(peel)
            block = block[alive[block]]
            if block.size:
                degrees -= np.bincount(block, minlength=n)
    return {node: int(core[i]) for i, node in enumerate(view.nodes)}


def core_numbers(graph: Graph, backend: str = "auto") -> Dict[Node, int]:
    """Coreness of every node via bucket peeling."""
    if resolve_backend(backend, graph.num_nodes) == "csr":
        return _core_numbers_csr(graph)
    degrees = dict(graph.degrees())
    if not degrees:
        return {}
    max_degree = max(degrees.values())
    # Bucket nodes by current degree.
    buckets: List[List[Node]] = [[] for _ in range(max_degree + 1)]
    for node, k in degrees.items():
        buckets[k].append(node)
    core: Dict[Node, int] = {}
    current = 0
    remaining = dict(degrees)
    removed = set()
    for k in range(max_degree + 1):
        bucket = buckets[k]
        while bucket:
            node = bucket.pop()
            if node in removed or remaining[node] != k:
                continue  # stale entry: the node moved buckets already
            current = max(current, k)
            core[node] = current
            removed.add(node)
            for nbr in graph.neighbors(node):
                if nbr in removed:
                    continue
                d = remaining[nbr]
                if d > k:
                    remaining[nbr] = d - 1
                    buckets[d - 1].append(nbr)
    return core


def k_core(graph: Graph, k: int, backend: str = "auto") -> Graph:
    """Subgraph induced on nodes of coreness >= k."""
    if k < 0:
        raise ValueError("k must be non-negative")
    cores = core_numbers(graph, backend=backend)
    return graph.subgraph(node for node, c in cores.items() if c >= k)


def degeneracy(graph: Graph, backend: str = "auto") -> int:
    """Maximum coreness over all nodes (0 on an empty graph)."""
    cores = core_numbers(graph, backend=backend)
    return max(cores.values()) if cores else 0


@dataclass(frozen=True)
class CoreProfile:
    """Summary of the k-core hierarchy.

    ``shell_sizes[k]`` — nodes whose coreness is exactly k;
    ``core_sizes[k]`` — nodes whose coreness is at least k (k-core order);
    ``degeneracy`` — deepest non-empty core.
    """

    shell_sizes: Dict[int, int]
    core_sizes: Dict[int, int]
    degeneracy: int

    def rows(self) -> List[Tuple[int, int, int]]:
        """(k, shell size, core size) rows, ascending in k."""
        ks = sorted(set(self.shell_sizes) | set(self.core_sizes))
        return [(k, self.shell_sizes.get(k, 0), self.core_sizes.get(k, 0)) for k in ks]


def core_profile(graph: Graph, backend: str = "auto") -> CoreProfile:
    """Compute the full shell/core size profile of *graph*."""
    cores = core_numbers(graph, backend=backend)
    shell_sizes: Dict[int, int] = {}
    for c in cores.values():
        shell_sizes[c] = shell_sizes.get(c, 0) + 1
    max_core = max(shell_sizes) if shell_sizes else 0
    core_sizes: Dict[int, int] = {}
    running = 0
    for k in range(max_core, -1, -1):
        running += shell_sizes.get(k, 0)
        core_sizes[k] = running
    return CoreProfile(
        shell_sizes=dict(sorted(shell_sizes.items())),
        core_sizes=dict(sorted(core_sizes.items())),
        degeneracy=max_core,
    )
