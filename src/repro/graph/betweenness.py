"""Betweenness centrality (experiment F5).

Freeman betweenness measures how much shortest-path traffic a node would
carry; on the AS map its distribution is heavy-tailed with exponent ≈ 2.
Exact computation uses Brandes' algorithm, O(N·E) on unweighted graphs.
For harness-scale graphs a pivot-sampled estimator (Brandes–Pich) keeps
runtime proportional to the number of sampled sources while remaining an
unbiased estimator of the exact values.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional

from ..stats.rng import SeedLike, make_rng
from .graph import Graph

__all__ = ["betweenness_centrality", "approximate_betweenness"]

Node = Hashable


def _accumulate_from_source(graph: Graph, source: Node, scores: Dict[Node, float]) -> None:
    """One Brandes source iteration: BFS + dependency back-propagation."""
    sigma: Dict[Node, float] = {source: 1.0}
    distance: Dict[Node, int] = {source: 0}
    predecessors: Dict[Node, List[Node]] = {source: []}
    order: List[Node] = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = distance[u] + 1
                sigma[v] = 0.0
                predecessors[v] = []
                queue.append(v)
            if distance[v] == distance[u] + 1:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    delta: Dict[Node, float] = {u: 0.0 for u in order}
    for u in reversed(order):
        for p in predecessors[u]:
            delta[p] += sigma[p] / sigma[u] * (1.0 + delta[u])
        if u != source:
            scores[u] += delta[u]


def betweenness_centrality(
    graph: Graph, normalized: bool = True
) -> Dict[Node, float]:
    """Exact Freeman betweenness of every node (Brandes' algorithm).

    Undirected convention: raw pair counts are halved; with *normalized*
    they are further divided by ``(N-1)(N-2)/2``, the number of pairs a node
    could possibly sit between.
    """
    scores: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    for source in graph.nodes():
        _accumulate_from_source(graph, source, scores)
    n = graph.num_nodes
    scale = 0.5
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return {node: score * scale for node, score in scores.items()}


def approximate_betweenness(
    graph: Graph,
    num_pivots: int,
    seed: SeedLike = None,
    normalized: bool = True,
) -> Dict[Node, float]:
    """Pivot-sampled betweenness (Brandes–Pich estimator).

    Runs Brandes accumulation from *num_pivots* uniformly sampled sources
    and rescales by ``N / num_pivots``, giving an unbiased estimate of the
    exact score.  Matches :func:`betweenness_centrality` exactly when
    ``num_pivots >= N``.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    if num_pivots <= 0:
        raise ValueError("num_pivots must be positive")
    if num_pivots >= len(nodes):
        return betweenness_centrality(graph, normalized=normalized)
    rng = make_rng(seed)
    pivots = rng.sample(nodes, num_pivots)
    scores: Dict[Node, float] = {node: 0.0 for node in nodes}
    for source in pivots:
        _accumulate_from_source(graph, source, scores)
    n = len(nodes)
    scale = 0.5 * n / num_pivots
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return {node: score * scale for node, score in scores.items()}
