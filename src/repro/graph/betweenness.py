"""Betweenness centrality (experiment F5).

Freeman betweenness measures how much shortest-path traffic a node would
carry; on the AS map its distribution is heavy-tailed with exponent ≈ 2.
Exact computation uses Brandes' algorithm, O(N·E) on unweighted graphs.
For harness-scale graphs a pivot-sampled estimator (Brandes–Pich) keeps
runtime proportional to the number of sampled sources while remaining an
unbiased estimator of the exact values.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

import numpy as np

from ..stats.rng import SeedLike, make_rng
from .csr import resolve_backend
from .graph import Graph

__all__ = ["betweenness_centrality", "approximate_betweenness"]

Node = Hashable


def _accumulate_from_source(graph: Graph, source: Node, scores: Dict[Node, float]) -> None:
    """One Brandes source iteration: BFS + dependency back-propagation."""
    sigma: Dict[Node, float] = {source: 1.0}
    distance: Dict[Node, int] = {source: 0}
    predecessors: Dict[Node, List[Node]] = {source: []}
    order: List[Node] = []
    queue = deque([source])
    while queue:
        u = queue.popleft()
        order.append(u)
        for v in graph.neighbors(u):
            if v not in distance:
                distance[v] = distance[u] + 1
                sigma[v] = 0.0
                predecessors[v] = []
                queue.append(v)
            if distance[v] == distance[u] + 1:
                sigma[v] += sigma[u]
                predecessors[v].append(u)
    delta: Dict[Node, float] = {u: 0.0 for u in order}
    for u in reversed(order):
        for p in predecessors[u]:
            delta[p] += sigma[p] / sigma[u] * (1.0 + delta[u])
        if u != source:
            scores[u] += delta[u]


#: Sources per batched-Brandes chunk; bounds the dense (n, batch) workspaces.
_BRANDES_BATCH = 256


def _accumulate_csr(graph: Graph, sources: Sequence[Node]) -> np.ndarray:
    """Brandes accumulation from *sources* on the CSR view.

    Source-batched and level-synchronous: a whole chunk of sources runs
    together, with one sparse·dense matmul per BFS level propagating the
    path counts sigma forward (``A @ (sigma · level-mask)``) and one per
    level propagating the dependencies delta backward — the per-level
    array overhead is amortized over the batch instead of paid per
    source.  Sigma values are integer path counts (exact in float64);
    delta accumulates floats in a different order than the dict
    reference, so scores agree to ~1e-12 relative, not bit-for-bit.
    """
    view = graph.csr()
    n = view.num_nodes
    scores = np.zeros(n, dtype=np.float64)
    if n == 0 or not sources:
        return scores
    adjacency = view.unweighted_sparse()
    index = view.index
    positions = np.fromiter(
        (index[s] for s in sources), dtype=np.int64, count=len(sources)
    )
    for start in range(0, positions.size, _BRANDES_BATCH):
        chunk = positions[start : start + _BRANDES_BATCH]
        batch = chunk.size
        cols = np.arange(batch)
        distances = np.full((n, batch), -1, dtype=np.int32)
        sigma = np.zeros((n, batch), dtype=np.float64)
        distances[chunk, cols] = 0
        sigma[chunk, cols] = 1.0
        depth = 0
        while True:
            # Propagate path counts: for every node first reached at
            # depth+1, sigma is the sum of sigma over its depth-level
            # neighbors (all of which are BFS-tree parents).
            forward = adjacency @ np.where(distances == depth, sigma, 0.0)
            fresh = (forward > 0) & (distances < 0)
            if not fresh.any():
                break
            depth += 1
            distances[fresh] = depth
            sigma[fresh] = forward[fresh]
        delta = np.zeros((n, batch), dtype=np.float64)
        for level in range(depth, 0, -1):
            on_level = distances == level
            # delta[w] += sigma[w]/sigma[v] * (1 + delta[v]) summed over
            # the level's nodes v adjacent to w one level up; masking the
            # matmul result to level-1 keeps only BFS-tree edges.
            ratio = np.zeros((n, batch), dtype=np.float64)
            np.divide(1.0 + delta, sigma, out=ratio, where=on_level)
            contrib = (adjacency @ ratio) * sigma
            delta += np.where(distances == level - 1, contrib, 0.0)
        scores += delta.sum(axis=1)
        # The python reference never credits a source with its own delta.
        np.subtract.at(scores, chunk, delta[chunk, cols])
    return scores


def _scored(graph: Graph, sources: Sequence[Node], scale: float, backend: str):
    """Run Brandes from *sources* on the selected backend, scaled."""
    if resolve_backend(backend, graph.num_nodes) == "csr":
        raw = _accumulate_csr(graph, sources)
        view = graph.csr()
        return {
            node: float(raw[i]) * scale for i, node in enumerate(view.nodes)
        }
    scores: Dict[Node, float] = {node: 0.0 for node in graph.nodes()}
    for source in sources:
        _accumulate_from_source(graph, source, scores)
    return {node: score * scale for node, score in scores.items()}


def betweenness_centrality(
    graph: Graph, normalized: bool = True, backend: str = "auto"
) -> Dict[Node, float]:
    """Exact Freeman betweenness of every node (Brandes' algorithm).

    Undirected convention: raw pair counts are halved; with *normalized*
    they are further divided by ``(N-1)(N-2)/2``, the number of pairs a node
    could possibly sit between.
    """
    n = graph.num_nodes
    scale = 0.5
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return _scored(graph, list(graph.nodes()), scale, backend)


def approximate_betweenness(
    graph: Graph,
    num_pivots: int,
    seed: SeedLike = None,
    normalized: bool = True,
    backend: str = "auto",
) -> Dict[Node, float]:
    """Pivot-sampled betweenness (Brandes–Pich estimator).

    Runs Brandes accumulation from *num_pivots* uniformly sampled sources
    and rescales by ``N / num_pivots``, giving an unbiased estimate of the
    exact score.  Matches :func:`betweenness_centrality` exactly when
    ``num_pivots >= N``.  Pivots are sampled in node-id space before the
    backend split, so both backends estimate from the same sources.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return {}
    if num_pivots <= 0:
        raise ValueError("num_pivots must be positive")
    if num_pivots >= len(nodes):
        return betweenness_centrality(graph, normalized=normalized, backend=backend)
    rng = make_rng(seed)
    pivots = rng.sample(nodes, num_pivots)
    n = len(nodes)
    scale = 0.5 * n / num_pivots
    if normalized and n > 2:
        scale /= (n - 1) * (n - 2) / 2.0
    return _scored(graph, pivots, scale, backend)
