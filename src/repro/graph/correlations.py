"""Degree–degree correlations (experiment F4).

The AS map is *disassortative*: high-degree providers connect mostly to
low-degree customers, so the average nearest-neighbor degree k̄_nn(k) decays
with k (roughly k^-0.5) and the Pearson assortativity r is around -0.19.
Degree-driven growth models without extra mechanisms come out neutral, which
is one of the distinguishing metrics in the comparison table T1.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

from ..stats.distributions import binned_spectrum
from .graph import Graph

__all__ = [
    "average_neighbor_degree",
    "knn_by_degree",
    "knn_spectrum",
    "normalized_knn_spectrum",
    "degree_assortativity",
]

Node = Hashable


def average_neighbor_degree(graph: Graph) -> Dict[Node, float]:
    """Mean degree of each node's neighbors (0 for isolated nodes)."""
    out: Dict[Node, float] = {}
    for node in graph.nodes():
        k = graph.degree(node)
        if k == 0:
            out[node] = 0.0
            continue
        out[node] = sum(graph.degree(v) for v in graph.neighbors(node)) / k
    return out


def knn_by_degree(graph: Graph) -> Dict[int, float]:
    """k̄_nn(k): mean neighbor degree averaged over nodes of exact degree k."""
    per_node = average_neighbor_degree(graph)
    sums: Dict[int, List[float]] = {}
    for node, knn in per_node.items():
        k = graph.degree(node)
        if k >= 1:
            sums.setdefault(k, []).append(knn)
    return {k: sum(vals) / len(vals) for k, vals in sorted(sums.items())}


def knn_spectrum(
    graph: Graph, log_bins: bool = True, bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """k̄_nn(k) as a log-binned spectrum for plotting/reporting."""
    per_node = average_neighbor_degree(graph)
    pairs = [
        (float(graph.degree(node)), knn)
        for node, knn in per_node.items()
        if graph.degree(node) >= 1
    ]
    return binned_spectrum(pairs, log_bins=log_bins, bins_per_decade=bins_per_decade)


def normalized_knn_spectrum(
    graph: Graph, log_bins: bool = True, bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """k̄_nn(k)·⟨k⟩/⟨k²⟩ — the normalization used in the AS-map literature.

    In an uncorrelated network this quantity is flat at 1, so deviations read
    directly as correlation structure.
    """
    degrees = list(graph.degrees().values())
    if not degrees:
        return []
    mean_k = sum(degrees) / len(degrees)
    mean_k2 = sum(k * k for k in degrees) / len(degrees)
    if mean_k2 == 0:
        return []
    factor = mean_k / mean_k2
    return [(k, knn * factor) for k, knn in knn_spectrum(graph, log_bins, bins_per_decade)]


def degree_assortativity(graph: Graph) -> float:
    """Pearson correlation of degrees across edges (Newman's r).

    Computed over edge endpoint pairs, each undirected edge contributing
    both orientations.  Returns 0.0 when the variance vanishes (e.g. a
    regular graph), where r is undefined.
    """
    sum_x = sum_x2 = sum_xy = 0.0
    count = 0
    for u, v in graph.edges():
        ku = graph.degree(u)
        kv = graph.degree(v)
        # Both orientations: (ku, kv) and (kv, ku).
        sum_x += ku + kv
        sum_x2 += ku * ku + kv * kv
        sum_xy += 2.0 * ku * kv
        count += 2
    if count == 0:
        return 0.0
    mean_x = sum_x / count
    var_x = sum_x2 / count - mean_x * mean_x
    if var_x <= 0:
        return 0.0
    cov = sum_xy / count - mean_x * mean_x
    return cov / var_x
