"""Degree–degree correlations (experiment F4).

The AS map is *disassortative*: high-degree providers connect mostly to
low-degree customers, so the average nearest-neighbor degree k̄_nn(k) decays
with k (roughly k^-0.5) and the Pearson assortativity r is around -0.19.
Degree-driven growth models without extra mechanisms come out neutral, which
is one of the distinguishing metrics in the comparison table T1.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Tuple

import numpy as np

from ..stats.distributions import binned_spectrum
from .csr import resolve_backend
from .graph import Graph

__all__ = [
    "average_neighbor_degree",
    "knn_by_degree",
    "knn_spectrum",
    "normalized_knn_spectrum",
    "degree_assortativity",
]

Node = Hashable


def average_neighbor_degree(graph: Graph, backend: str = "auto") -> Dict[Node, float]:
    """Mean degree of each node's neighbors (0 for isolated nodes).

    The CSR backend sums neighbor degrees with one ``np.bincount`` over the
    flat adjacency; the sums are integer-valued (exact in float64), so both
    backends divide identical numerators by identical degrees.
    """
    if resolve_backend(backend, graph.num_nodes) == "csr":
        view = graph.csr()
        n = view.num_nodes
        degrees = view.degrees
        rows = np.repeat(np.arange(n, dtype=np.int64), degrees)
        sums = np.bincount(
            rows, weights=degrees[view.indices].astype(np.float64), minlength=n
        )
        return {
            node: (float(sums[i]) / int(degrees[i]) if degrees[i] else 0.0)
            for i, node in enumerate(view.nodes)
        }
    out: Dict[Node, float] = {}
    for node in graph.nodes():
        k = graph.degree(node)
        if k == 0:
            out[node] = 0.0
            continue
        out[node] = sum(graph.degree(v) for v in graph.neighbors(node)) / k
    return out


def knn_by_degree(graph: Graph, backend: str = "auto") -> Dict[int, float]:
    """k̄_nn(k): mean neighbor degree averaged over nodes of exact degree k."""
    per_node = average_neighbor_degree(graph, backend=backend)
    sums: Dict[int, List[float]] = {}
    for node, knn in per_node.items():
        k = graph.degree(node)
        if k >= 1:
            sums.setdefault(k, []).append(knn)
    return {k: sum(vals) / len(vals) for k, vals in sorted(sums.items())}


def knn_spectrum(
    graph: Graph,
    log_bins: bool = True,
    bins_per_decade: int = 10,
    backend: str = "auto",
) -> List[Tuple[float, float]]:
    """k̄_nn(k) as a log-binned spectrum for plotting/reporting."""
    per_node = average_neighbor_degree(graph, backend=backend)
    pairs = [
        (float(graph.degree(node)), knn)
        for node, knn in per_node.items()
        if graph.degree(node) >= 1
    ]
    return binned_spectrum(pairs, log_bins=log_bins, bins_per_decade=bins_per_decade)


def normalized_knn_spectrum(
    graph: Graph,
    log_bins: bool = True,
    bins_per_decade: int = 10,
    backend: str = "auto",
) -> List[Tuple[float, float]]:
    """k̄_nn(k)·⟨k⟩/⟨k²⟩ — the normalization used in the AS-map literature.

    In an uncorrelated network this quantity is flat at 1, so deviations read
    directly as correlation structure.
    """
    degrees = list(graph.degrees().values())
    if not degrees:
        return []
    mean_k = sum(degrees) / len(degrees)
    mean_k2 = sum(k * k for k in degrees) / len(degrees)
    if mean_k2 == 0:
        return []
    factor = mean_k / mean_k2
    return [
        (k, knn * factor)
        for k, knn in knn_spectrum(graph, log_bins, bins_per_decade, backend=backend)
    ]


def degree_assortativity(graph: Graph, backend: str = "auto") -> float:
    """Pearson correlation of degrees across edges (Newman's r).

    Computed over edge endpoint pairs, each undirected edge contributing
    both orientations.  Returns 0.0 when the variance vanishes (e.g. a
    regular graph), where r is undefined.

    Every accumulated sum is integer-valued, so the CSR backend's int64
    reductions reproduce the python float accumulation exactly and the two
    backends agree bit-for-bit.
    """
    if resolve_backend(backend, graph.num_nodes) == "csr":
        view = graph.csr()
        u, v, _ = view.edge_arrays()
        if u.size == 0:
            return 0.0
        ku = view.degrees[u]
        kv = view.degrees[v]
        sum_x = float(int(ku.sum()) + int(kv.sum()))
        sum_x2 = float(int((ku * ku).sum()) + int((kv * kv).sum()))
        sum_xy = float(2 * int((ku * kv).sum()))
        count = 2 * int(u.size)
    else:
        sum_x = sum_x2 = sum_xy = 0.0
        count = 0
        for u, v in graph.edges():
            ku = graph.degree(u)
            kv = graph.degree(v)
            # Both orientations: (ku, kv) and (kv, ku).
            sum_x += ku + kv
            sum_x2 += ku * ku + kv * kv
            sum_xy += 2.0 * ku * kv
            count += 2
    if count == 0:
        return 0.0
    mean_x = sum_x / count
    var_x = sum_x2 / count - mean_x * mean_x
    if var_x <= 0:
        return 0.0
    cov = sum_xy / count - mean_x * mean_x
    return cov / var_x
