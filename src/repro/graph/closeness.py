"""Closeness centrality.

The inverse mean distance to everything else — the "how central is this
AS for latency" view, complementing betweenness's "how much load" view.
Uses the Wasserman–Faust component correction so disconnected graphs get
sensible values, matching the networkx convention (our oracle).
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from ..stats.rng import SeedLike, make_rng
from .graph import Graph
from .traversal import bfs_distances

__all__ = ["closeness_centrality", "approximate_closeness"]

Node = Hashable


def _closeness_of(graph: Graph, node: Node, n: int) -> float:
    distances = bfs_distances(graph, node)
    reachable = len(distances) - 1
    if reachable <= 0:
        return 0.0
    total = sum(distances.values())
    closeness = reachable / total
    # Wasserman-Faust: scale by the reachable fraction so small fragments
    # do not outrank the giant component's core.
    return closeness * (reachable / (n - 1))


def closeness_centrality(graph: Graph) -> Dict[Node, float]:
    """Exact closeness for every node (one BFS per node)."""
    n = graph.num_nodes
    if n < 2:
        return {node: 0.0 for node in graph.nodes()}
    return {node: _closeness_of(graph, node, n) for node in graph.nodes()}


def approximate_closeness(
    graph: Graph, sample: int, seed: SeedLike = None
) -> Dict[Node, float]:
    """Closeness for a uniform node *sample* only (others omitted).

    For top-k queries on large graphs: compute exactly on the sample and
    rank within it, avoiding the full O(N·E).
    """
    nodes = list(graph.nodes())
    if sample < 1:
        raise ValueError("sample must be >= 1")
    if sample >= len(nodes):
        return closeness_centrality(graph)
    rng = make_rng(seed)
    chosen = rng.sample(nodes, sample)
    n = len(nodes)
    return {node: _closeness_of(graph, node, n) for node in chosen}
