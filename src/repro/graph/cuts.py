"""Cut structure: bridges and articulation points (Tarjan).

Single points of failure in a topology: an *articulation point* is a node
whose removal disconnects its component; a *bridge* is such an edge.  Real
AS maps are bridge-heavy at the edge (stub links) and bridge-free in the
core — counting both per model is a cheap, sharp resilience fingerprint
that complements the removal sweeps in :mod:`repro.resilience`.

Iterative Tarjan lowlink DFS, O(N + E), recursion-free so harness-scale
graphs do not hit Python's stack limit.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Set, Tuple

from .graph import Graph

__all__ = ["bridges", "articulation_points", "two_edge_connected_core"]

Node = Hashable


def _lowlink_dfs(graph: Graph):
    """Shared iterative DFS computing discovery and low times.

    Yields (parent map, discovery, low, roots, root child counts).
    """
    discovery: Dict[Node, int] = {}
    low: Dict[Node, int] = {}
    parent: Dict[Node, Node] = {}
    root_children: Dict[Node, int] = {}
    roots: List[Node] = []
    counter = 0
    for start in graph.nodes():
        if start in discovery:
            continue
        roots.append(start)
        root_children[start] = 0
        # Stack holds (node, iterator over its neighbors).
        stack = [(start, iter(graph.neighbor_weights(start)))]
        discovery[start] = low[start] = counter
        counter += 1
        while stack:
            node, neighbors = stack[-1]
            advanced = False
            for neighbor in neighbors:
                if neighbor not in discovery:
                    parent[neighbor] = node
                    if node == start:
                        root_children[start] += 1
                    discovery[neighbor] = low[neighbor] = counter
                    counter += 1
                    stack.append(
                        (neighbor, iter(graph.neighbor_weights(neighbor)))
                    )
                    advanced = True
                    break
                if neighbor != parent.get(node):
                    low[node] = min(low[node], discovery[neighbor])
            if not advanced:
                stack.pop()
                if stack:
                    above = stack[-1][0]
                    low[above] = min(low[above], low[node])
    return parent, discovery, low, roots, root_children


def bridges(graph: Graph) -> Set[frozenset]:
    """All bridge edges, as frozenset pairs."""
    parent, discovery, low, _, _ = _lowlink_dfs(graph)
    out: Set[frozenset] = set()
    for child, above in parent.items():
        if low[child] > discovery[above]:
            out.add(frozenset((above, child)))
    return out


def articulation_points(graph: Graph) -> Set[Node]:
    """All articulation points (cut vertices)."""
    parent, discovery, low, roots, root_children = _lowlink_dfs(graph)
    out: Set[Node] = set()
    for child, above in parent.items():
        if above in roots:
            continue
        if low[child] >= discovery[above]:
            out.add(above)
    for root in roots:
        if root_children.get(root, 0) >= 2:
            out.add(root)
    return out


def two_edge_connected_core(graph: Graph) -> Graph:
    """Largest component of the graph with all bridges removed.

    The "core that survives any single link failure" — on AS-like maps
    this strips the stub fringe and leaves the meshy provider middle.
    """
    from .traversal import giant_component

    stripped = graph.copy()
    for edge in bridges(graph):
        u, v = tuple(edge)
        stripped.remove_edge(u, v)
    return giant_component(stripped)
