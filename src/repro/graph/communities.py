"""Community structure: label propagation and modularity.

AS maps organize into geographic/business clusters well before they
organize into k-cores; community structure is the standard lens for it.
Two pieces ship here:

* **label propagation** (Raghavan et al.) — near-linear-time community
  detection: every node repeatedly adopts its neighborhood's most common
  label until labels are stable;
* **modularity** (Newman) — the quality score
  ``Q = Σ_c (e_c/m − (d_c/2m)²)`` comparing intra-community edge mass
  against the degree-preserving expectation.

Both operate on the simple topology (weights ignored), matching the
community literature's treatment of AS maps.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, List, Set

from ..stats.rng import SeedLike, make_rng
from .graph import Graph

__all__ = ["label_propagation_communities", "modularity", "partition_from_labels"]

Node = Hashable


def label_propagation_communities(
    graph: Graph, max_rounds: int = 100, seed: SeedLike = 0
) -> List[Set[Node]]:
    """Detect communities by synchronousish label propagation.

    Nodes are visited in a new random order each round and adopt the most
    frequent label among their neighbors (ties broken randomly, which is
    the algorithm's standard symmetry-breaking).  Converges when a full
    round changes nothing; isolated nodes form singleton communities.
    """
    if max_rounds < 1:
        raise ValueError("max_rounds must be >= 1")
    rng = make_rng(seed)
    labels: Dict[Node, int] = {node: i for i, node in enumerate(graph.nodes())}
    nodes = list(graph.nodes())
    for _ in range(max_rounds):
        rng.shuffle(nodes)
        changed = False
        for node in nodes:
            neighbor_labels = Counter(
                labels[neighbor] for neighbor in graph.neighbors(node)
            )
            if not neighbor_labels:
                continue
            top_count = max(neighbor_labels.values())
            candidates = [
                label for label, count in neighbor_labels.items()
                if count == top_count
            ]
            new_label = candidates[rng.randrange(len(candidates))]
            if new_label != labels[node]:
                labels[node] = new_label
                changed = True
        if not changed:
            break
    return partition_from_labels(labels)


def partition_from_labels(labels: Dict[Node, int]) -> List[Set[Node]]:
    """Group a node → label mapping into communities, largest first."""
    groups: Dict[int, Set[Node]] = {}
    for node, label in labels.items():
        groups.setdefault(label, set()).add(node)
    return sorted(groups.values(), key=len, reverse=True)


def modularity(graph: Graph, communities: List[Set[Node]]) -> float:
    """Newman modularity Q of a partition.

    The partition must cover every node exactly once (raises otherwise) —
    a silent partial cover would inflate Q.
    """
    seen: Set[Node] = set()
    for community in communities:
        overlap = seen & community
        if overlap:
            raise ValueError(f"nodes in multiple communities: {sorted(map(str, overlap))[:3]}")
        seen |= community
    missing = set(graph.nodes()) - seen
    if missing:
        raise ValueError(f"partition misses nodes: {sorted(map(str, missing))[:3]}")
    m = graph.num_edges
    if m == 0:
        return 0.0
    score = 0.0
    membership = {
        node: index for index, community in enumerate(communities) for node in community
    }
    internal = [0] * len(communities)
    degree_sum = [0] * len(communities)
    for node in graph.nodes():
        degree_sum[membership[node]] += graph.degree(node)
    for u, v in graph.edges():
        if membership[u] == membership[v]:
            internal[membership[u]] += 1
    for c in range(len(communities)):
        score += internal[c] / m - (degree_sum[c] / (2.0 * m)) ** 2
    return score
