"""Weighted undirected graph engine.

All generators and metrics in :mod:`repro` operate on :class:`Graph`, a
dictionary-of-dictionaries adjacency structure tailored to AS-level topology
work:

* **undirected** — AS adjacencies are symmetric at the topology level;
* **weighted** — an edge weight models link *bandwidth* in discretized units:
  weighted-growth models reinforce existing links, which increments the
  weight (the paper-world "multiple connections between the same nodes");
* **no self-loops** — an AS does not peer with itself in any published map;
* integer-friendly node ids, but any hashable id works.

The *topological degree* ``degree(u)`` counts distinct neighbors; the
*strength* ``strength(u)`` sums incident edge weights (total bandwidth).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

__all__ = ["Graph"]

Node = Hashable


class Graph:
    """Undirected weighted graph with O(1) edge lookup.

    >>> g = Graph()
    >>> g.add_edge(1, 2)
    >>> g.add_edge(1, 2)          # reinforce: weight becomes 2
    >>> g.degree(1), g.strength(1)
    (1, 2.0)
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._adj: Dict[Node, Dict[Node, float]] = {}
        self._num_edges = 0
        self._total_weight = 0.0
        # Monotonic mutation counter: every node/edge/weight change bumps
        # it, invalidating the cached CSR view and fingerprint below.
        self._version = 0
        self._csr_cache: Optional[Tuple[int, object]] = None
        self._fingerprint_cache: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ nodes

    def add_node(self, node: Node) -> None:
        """Insert an isolated node (no-op if already present)."""
        if node not in self._adj:
            self._adj[node] = {}
            self._version += 1

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        """Insert many nodes."""
        for node in nodes:
            self.add_node(node)

    def has_node(self, node: Node) -> bool:
        """Whether *node* is in the graph."""
        return node in self._adj

    def remove_node(self, node: Node) -> None:
        """Delete *node* and all incident edges."""
        if node not in self._adj:
            raise KeyError(f"node {node!r} not in graph")
        for neighbor in list(self._adj[node]):
            self.remove_edge(node, neighbor)
        del self._adj[node]
        self._version += 1

    def nodes(self) -> Iterator[Node]:
        """Iterate over node ids."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        """Number of nodes."""
        return len(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    # ------------------------------------------------------------------ edges

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Add the edge (u, v) or reinforce it by *weight*.

        Creating endpoints as needed.  Adding an existing edge accumulates
        weight rather than replacing it — this is the bandwidth-reinforcement
        semantics weighted growth models rely on.
        """
        if u == v:
            raise ValueError(f"self-loops are not allowed (node {u!r})")
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            self._adj[u][v] += weight
            self._adj[v][u] += weight
        else:
            self._adj[u][v] = weight
            self._adj[v][u] = weight
            self._num_edges += 1
        self._total_weight += weight
        self._version += 1

    def add_edges(self, edges: Iterable[Tuple]) -> None:
        """Bulk :meth:`add_edge`: each item is ``(u, v)`` or ``(u, v, weight)``.

        Same semantics per edge (endpoint creation, weight reinforcement on
        repeats, no self-loops), but the whole batch pays one version bump —
        the path the vector growth engines and dataset loaders commit their
        edge blocks through.
        """
        adj = self._adj
        num_edges = self._num_edges
        total_weight = self._total_weight
        mutated = False
        try:
            for item in edges:
                if len(item) == 3:
                    u, v, weight = item
                    weight = float(weight)
                else:
                    u, v = item
                    weight = 1.0
                if u == v:
                    raise ValueError(f"self-loops are not allowed (node {u!r})")
                if weight <= 0:
                    raise ValueError(f"edge weight must be positive, got {weight}")
                nbrs_u = adj.get(u)
                if nbrs_u is None:
                    nbrs_u = adj[u] = {}
                    mutated = True
                nbrs_v = adj.get(v)
                if nbrs_v is None:
                    nbrs_v = adj[v] = {}
                    mutated = True
                if v in nbrs_u:
                    nbrs_u[v] += weight
                    nbrs_v[u] += weight
                else:
                    nbrs_u[v] = weight
                    nbrs_v[u] = weight
                    num_edges += 1
                total_weight += weight
                mutated = True
        finally:
            self._num_edges = num_edges
            self._total_weight = total_weight
            if mutated:
                self._version += 1

    def set_edge_weight(self, u: Node, v: Node, weight: float) -> None:
        """Overwrite the weight of an existing edge."""
        if weight <= 0:
            raise ValueError(f"edge weight must be positive, got {weight}")
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._total_weight += weight - self._adj[u][v]
        self._adj[u][v] = weight
        self._adj[v][u] = weight
        self._version += 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge (u, v) entirely, whatever its weight."""
        if not self.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) not in graph")
        self._total_weight -= self._adj[u][v]
        del self._adj[u][v]
        del self._adj[v][u]
        self._num_edges -= 1
        self._version += 1

    def has_edge(self, u: Node, v: Node) -> bool:
        """Whether the edge (u, v) exists."""
        return u in self._adj and v in self._adj[u]

    def edge_weight(self, u: Node, v: Node, default: Optional[float] = None) -> float:
        """Weight of edge (u, v); *default* if absent (raises if no default)."""
        if self.has_edge(u, v):
            return self._adj[u][v]
        if default is not None:
            return default
        raise KeyError(f"edge ({u!r}, {v!r}) not in graph")

    def edges(self) -> Iterator[Tuple[Node, Node]]:
        """Iterate over each undirected edge exactly once."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    def weighted_edges(self) -> Iterator[Tuple[Node, Node, float]]:
        """Iterate (u, v, weight) over each undirected edge exactly once."""
        seen = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                if v not in seen:
                    yield (u, v, w)
            seen.add(u)

    @property
    def num_edges(self) -> int:
        """Number of distinct edges (pairs), ignoring weights."""
        return self._num_edges

    @property
    def total_weight(self) -> float:
        """Sum of all edge weights — total network bandwidth."""
        return self._total_weight

    # ------------------------------------------------------------- adjacency

    def neighbors(self, node: Node) -> Iterator[Node]:
        """Iterate over the neighbors of *node*."""
        return iter(self._adj[node])

    def neighbor_weights(self, node: Node) -> Dict[Node, float]:
        """Read-only view of neighbor → weight for *node*.

        The returned mapping is the live adjacency dict; callers must not
        mutate it (use :meth:`add_edge` / :meth:`remove_edge`).
        """
        return self._adj[node]

    def degree(self, node: Node) -> int:
        """Topological degree: number of distinct neighbors."""
        return len(self._adj[node])

    def strength(self, node: Node) -> float:
        """Weighted degree: total bandwidth incident to *node*."""
        return float(sum(self._adj[node].values()))

    def degrees(self) -> Dict[Node, int]:
        """Mapping node → degree."""
        return {u: len(nbrs) for u, nbrs in self._adj.items()}

    def degree_sequence(self) -> List[int]:
        """Sorted (descending) list of degrees."""
        return sorted((len(nbrs) for nbrs in self._adj.values()), reverse=True)

    def strengths(self) -> Dict[Node, float]:
        """Mapping node → strength (weighted degree)."""
        return {u: float(sum(nbrs.values())) for u, nbrs in self._adj.items()}

    @property
    def average_degree(self) -> float:
        """Mean topological degree ⟨k⟩ = 2E/N."""
        if not self._adj:
            return 0.0
        return 2.0 * self._num_edges / len(self._adj)

    @property
    def max_degree(self) -> int:
        """Largest topological degree in the graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------- CSR view

    def csr(self):
        """Cached :class:`~repro.graph.csr.CSRView` of this graph.

        Built in one adjacency pass on first call, then reused until the
        graph mutates: every :meth:`add_node` / :meth:`add_edge` /
        :meth:`set_edge_weight` / :meth:`remove_edge` / :meth:`remove_node`
        bumps an internal version counter that invalidates the cache, so a
        stale view can never be observed through this method.  The view
        itself is immutable — mutating the graph after ``csr()`` leaves
        previously returned views untouched.
        """
        cached = self._csr_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        from .csr import CSRView

        view = CSRView.from_graph(self)
        self._csr_cache = (self._version, view)
        return view

    # ----------------------------------------------------------- persistence

    def to_store(self, path, checkpoint_every=None, snapshot: bool = True):
        """Persist this graph to a :class:`~repro.store.store.GraphStore`.

        Convenience front for ``GraphStore(path).save(self, ...)``; returns
        the store's :meth:`~repro.store.store.GraphStore.info` dict.
        """
        from ..store import GraphStore

        return GraphStore(path).save(
            self, checkpoint_every=checkpoint_every, snapshot=snapshot
        )

    @classmethod
    def from_store(cls, path, name: str = "") -> "Graph":
        """Load a graph persisted with :meth:`to_store` (or the CLI)."""
        from ..store import GraphStore

        return GraphStore.open(path).load(name=name)

    # ------------------------------------------------------------- derived

    def copy(self) -> "Graph":
        """Deep copy of the graph."""
        out = Graph(name=self.name)
        out._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        out._num_edges = self._num_edges
        out._total_weight = self._total_weight
        return out

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Graph induced on *nodes* (edges with both endpoints inside).

        Nodes are inserted in this graph's iteration order — not the order
        (or set-iteration order) of *nodes* — so the result is identical no
        matter how the kept set was assembled.  Seeded algorithms that
        sample from a subgraph's node list depend on this.
        """
        keep = set(nodes)
        ordered = [u for u in self._adj if u in keep]
        out = Graph(name=self.name)
        for u in ordered:
            out.add_node(u)
        for u in ordered:
            for v, w in self._adj[u].items():
                if v in keep and not out.has_edge(u, v):
                    out.add_edge(u, v, weight=w)
        return out

    def relabeled(self) -> "Graph":
        """Copy with nodes relabeled to consecutive integers 0..N-1.

        Order follows the current node iteration order, so the relabeling is
        deterministic for a deterministically built graph.
        """
        mapping = {node: i for i, node in enumerate(self._adj)}
        out = Graph(name=self.name)
        out.add_nodes(range(len(mapping)))
        for u, v, w in self.weighted_edges():
            out.add_edge(mapping[u], mapping[v], weight=w)
        return out

    def fingerprint(self) -> int:
        """Stable 62-bit content hash of the node set and weighted edge set.

        Pure function of the graph's content — independent of insertion
        order, process, and Python's randomized string hashing — so it can
        identify a topology in cache keys and derived seeds (e.g. the
        template of a null-model generator).  The name is excluded: two
        graphs with identical structure fingerprint identically.  Weights
        are canonicalized through ``float``, so an integer weight 1 and a
        float weight 1.0 describe the same structure.

        The value is memoized against the mutation counter, and when a
        :meth:`csr` view is already cached the edge walk reads the view's
        contiguous arrays instead of re-traversing the adjacency dicts —
        repeated cache probes on an unchanged topology cost a dict lookup.
        """
        cached = self._fingerprint_cache
        if cached is not None and cached[0] == self._version:
            return cached[1]
        if self._csr_cache is not None and self._csr_cache[0] == self._version:
            view = self._csr_cache[1]
            ids = view.nodes
            us, vs, ws = view.edge_arrays()
            triples = zip(
                (ids[i] for i in us.tolist()),
                (ids[i] for i in vs.tolist()),
                ws.tolist(),
            )
        else:
            triples = self.weighted_edges()
        nodes = sorted(repr(node) for node in self._adj)
        edges = sorted(
            "|".join((min(ru, rv), max(ru, rv), repr(float(w))))
            for ru, rv, w in (
                (repr(u), repr(v), w) for u, v, w in triples
            )
        )
        canon = ";".join(nodes) + "#" + ";".join(edges)
        digest = hashlib.sha256(canon.encode("utf-8")).digest()
        value = int.from_bytes(digest[:8], "big") & ((1 << 62) - 1)
        self._fingerprint_cache = (self._version, value)
        return value

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<Graph{label}: {self.num_nodes} nodes, {self.num_edges} edges, weight {self.total_weight:g}>"
