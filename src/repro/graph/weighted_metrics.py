"""Weighted-network metrics (Barrat–Barthélemy–Pastor-Satorras–Vespignani).

The weighted counterparts of the classic battery, defined for graphs whose
edge weights mean capacity/traffic (exactly our bandwidth semantics):

* **weighted clustering** c^w — like local clustering, but each closed
  triangle is credited by the weight of the two adjacent edges; comparing
  c^w(k) to c(k) reveals whether triangles ride the fat links or the thin
  ones;
* **weighted average nearest-neighbors degree** k̄^w_nn — neighbor degrees
  weighted by the connecting link's bandwidth; its gap from the unweighted
  k̄_nn measures whether big pipes point at big nodes;
* **disparity** Y₂ — how concentrated a node's strength is across its
  links: Y₂ ≈ 1/k means even spreading, Y₂ → 1 means one dominant link.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..stats.distributions import binned_spectrum
from .graph import Graph

__all__ = [
    "weighted_clustering",
    "average_weighted_clustering",
    "weighted_average_neighbor_degree",
    "disparity",
    "disparity_spectrum",
]

Node = Hashable


def weighted_clustering(graph: Graph) -> Dict[Node, float]:
    """Barrat's weighted clustering coefficient per node.

    ``c^w_i = 1/(s_i (k_i - 1)) * Σ_{(j,h)} (w_ij + w_ih)/2 * a_ij a_ih a_jh``

    Equals the unweighted coefficient when all weights are 1; nodes with
    degree < 2 get 0.
    """
    out: Dict[Node, float] = {}
    for i in graph.nodes():
        k = graph.degree(i)
        if k < 2:
            out[i] = 0.0
            continue
        strength = graph.strength(i)
        neighbors = list(graph.neighbors(i))
        acc = 0.0
        # Barrat's sum runs over ordered neighbor pairs; iterating the
        # unordered pairs, each contributes (w_ij + w_ih)/2 twice.
        for a in range(len(neighbors)):
            for b in range(a + 1, len(neighbors)):
                j, h = neighbors[a], neighbors[b]
                if graph.has_edge(j, h):
                    acc += graph.edge_weight(i, j) + graph.edge_weight(i, h)
        out[i] = acc / (strength * (k - 1))
    return out


def average_weighted_clustering(graph: Graph) -> float:
    """Mean of the per-node weighted clustering coefficients."""
    values = weighted_clustering(graph)
    if not values:
        return 0.0
    return sum(values.values()) / len(values)


def weighted_average_neighbor_degree(graph: Graph) -> Dict[Node, float]:
    """k̄^w_nn per node: neighbor degrees weighted by link bandwidth.

    ``k̄^w_nn(i) = (1/s_i) Σ_j w_ij k_j``; 0 for isolated nodes.
    """
    out: Dict[Node, float] = {}
    for i in graph.nodes():
        strength = graph.strength(i)
        if strength <= 0:
            out[i] = 0.0
            continue
        acc = sum(
            w * graph.degree(j) for j, w in graph.neighbor_weights(i).items()
        )
        out[i] = acc / strength
    return out


def disparity(graph: Graph) -> Dict[Node, float]:
    """Y₂ per node: ``Σ_j (w_ij / s_i)²`` (0 for isolated nodes)."""
    out: Dict[Node, float] = {}
    for i in graph.nodes():
        strength = graph.strength(i)
        if strength <= 0:
            out[i] = 0.0
            continue
        out[i] = sum(
            (w / strength) ** 2 for w in graph.neighbor_weights(i).values()
        )
    return out


def disparity_spectrum(
    graph: Graph, log_bins: bool = True, bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """k·Y₂(k) spectrum: flat at 1 means even spreading at every scale,
    growth with k means hubs concentrate bandwidth on few partners."""
    values = disparity(graph)
    pairs = [
        (float(graph.degree(i)), graph.degree(i) * y)
        for i, y in values.items()
        if graph.degree(i) >= 2
    ]
    return binned_spectrum(pairs, log_bins=log_bins, bins_per_decade=bins_per_decade)
