"""Graph engine and the metric battery's algorithms.

Everything is implemented from scratch on :class:`repro.graph.Graph`;
networkx appears only in the optional :mod:`repro.graph.convert` bridge.
"""

from .betweenness import approximate_betweenness, betweenness_centrality
from .clustering import (
    average_clustering,
    clustering_by_degree,
    clustering_spectrum,
    local_clustering,
    total_triangles,
    transitivity,
    triangles_per_node,
)
from .cores import CoreProfile, core_numbers, core_profile, degeneracy, k_core
from .closeness import approximate_closeness, closeness_centrality
from .communities import (
    label_propagation_communities,
    modularity,
    partition_from_labels,
)
from .cuts import articulation_points, bridges, two_edge_connected_core
from .correlations import (
    average_neighbor_degree,
    degree_assortativity,
    knn_by_degree,
    knn_spectrum,
    normalized_knn_spectrum,
)
from .csr import BACKENDS, CSRView, resolve_backend
from .cycles import adjacency_matrix, count_cycles, cycle_counts_3_4_5
from .graph import Graph
from .io import (
    edge_list_lines,
    parse_edge_list_lines,
    read_edge_list,
    read_json,
    write_edge_list,
    write_json,
)
from .richclub import normalized_rich_club, rich_club_coefficient, rich_club_spectrum
from .similarity import (
    clustering_spectrum_distance,
    core_profile_distance,
    degree_distribution_distance,
    path_length_distance,
    similarity_report,
)
from .spectral import (
    algebraic_connectivity,
    epidemic_threshold,
    laplacian_matrix,
    normalized_spectral_gap,
    spectral_radius,
)
from .shortest_paths import (
    PathLengthStats,
    average_path_length,
    diameter,
    eccentricities,
    path_length_distribution,
)
from .weighted_metrics import (
    average_weighted_clustering,
    disparity,
    disparity_spectrum,
    weighted_average_neighbor_degree,
    weighted_clustering,
)
from .traversal import (
    bfs_distances,
    bfs_tree,
    connected_components,
    giant_component,
    is_connected,
)

__all__ = [
    "Graph",
    "CSRView",
    "BACKENDS",
    "resolve_backend",
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "is_connected",
    "giant_component",
    "PathLengthStats",
    "path_length_distribution",
    "average_path_length",
    "eccentricities",
    "diameter",
    "triangles_per_node",
    "total_triangles",
    "local_clustering",
    "average_clustering",
    "transitivity",
    "clustering_spectrum",
    "clustering_by_degree",
    "average_neighbor_degree",
    "knn_by_degree",
    "knn_spectrum",
    "normalized_knn_spectrum",
    "degree_assortativity",
    "core_numbers",
    "k_core",
    "CoreProfile",
    "core_profile",
    "degeneracy",
    "betweenness_centrality",
    "approximate_betweenness",
    "closeness_centrality",
    "approximate_closeness",
    "label_propagation_communities",
    "modularity",
    "partition_from_labels",
    "rich_club_coefficient",
    "normalized_rich_club",
    "rich_club_spectrum",
    "count_cycles",
    "cycle_counts_3_4_5",
    "adjacency_matrix",
    "spectral_radius",
    "algebraic_connectivity",
    "laplacian_matrix",
    "normalized_spectral_gap",
    "epidemic_threshold",
    "degree_distribution_distance",
    "clustering_spectrum_distance",
    "path_length_distance",
    "core_profile_distance",
    "similarity_report",
    "bridges",
    "articulation_points",
    "two_edge_connected_core",
    "weighted_clustering",
    "average_weighted_clustering",
    "weighted_average_neighbor_degree",
    "disparity",
    "disparity_spectrum",
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "edge_list_lines",
    "parse_edge_list_lines",
]
