"""Rich-club structure (experiment F7).

The rich-club coefficient φ(k) is the edge density among nodes of degree
greater than k.  The AS map's top providers form a dense interconnected
club; whether a model reproduces that is only meaningful after normalizing
by a degree-preserving random reference (Colizza et al. 2006), since heavy
tails alone inflate φ(k).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from ..stats.rng import SeedLike, make_rng
from .graph import Graph

__all__ = ["rich_club_coefficient", "normalized_rich_club", "rich_club_spectrum"]

Node = Hashable


def rich_club_coefficient(graph: Graph) -> Dict[int, float]:
    """φ(k) for every degree k present: density among nodes with degree > k.

    Computed incrementally from high k downward in O(E + N log N): for each
    threshold k, ``φ(k) = 2 E_{>k} / (N_{>k} (N_{>k} - 1))``.  Thresholds
    where fewer than two nodes qualify are omitted.
    """
    degrees = graph.degrees()
    if not degrees:
        return {}
    # Sort thresholds descending; sweep nodes into the club as k decreases.
    max_k = max(degrees.values())
    nodes_by_degree: Dict[int, List[Node]] = {}
    for node, k in degrees.items():
        nodes_by_degree.setdefault(k, []).append(node)
    club: set = set()
    edges_inside = 0
    phi: Dict[int, float] = {}
    for k in range(max_k - 1, -1, -1):
        # Nodes of degree k+1 enter the club when the threshold drops to k.
        for node in nodes_by_degree.get(k + 1, ()):
            for nbr in graph.neighbors(node):
                if nbr in club:
                    edges_inside += 1
            club.add(node)
        size = len(club)
        if size >= 2:
            phi[k] = 2.0 * edges_inside / (size * (size - 1))
    return dict(sorted(phi.items()))


def normalized_rich_club(
    graph: Graph,
    reference: Graph,
) -> Dict[int, float]:
    """ρ(k) = φ(k) / φ_ref(k) against a degree-preserving *reference*.

    Thresholds missing from either spectrum, or where the reference density
    is zero, are omitted.  Use
    :func:`repro.generators.random_reference.rewired_reference` to build the
    null model.
    """
    phi = rich_club_coefficient(graph)
    phi_ref = rich_club_coefficient(reference)
    out: Dict[int, float] = {}
    for k, value in phi.items():
        ref = phi_ref.get(k)
        if ref:
            out[k] = value / ref
    return out


def rich_club_spectrum(
    graph: Graph, reference: Optional[Graph] = None
) -> List[Tuple[int, float]]:
    """(k, φ(k)) — or (k, ρ(k)) when *reference* is given — as sorted rows."""
    if reference is None:
        return sorted(rich_club_coefficient(graph).items())
    return sorted(normalized_rich_club(graph, reference).items())
