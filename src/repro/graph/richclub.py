"""Rich-club structure (experiment F7).

The rich-club coefficient φ(k) is the edge density among nodes of degree
greater than k.  The AS map's top providers form a dense interconnected
club; whether a model reproduces that is only meaningful after normalizing
by a degree-preserving random reference (Colizza et al. 2006), since heavy
tails alone inflate φ(k).
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..stats.rng import SeedLike, make_rng
from .csr import resolve_backend
from .graph import Graph

__all__ = ["rich_club_coefficient", "normalized_rich_club", "rich_club_spectrum"]

Node = Hashable


def _rich_club_csr(graph: Graph) -> Dict[int, float]:
    """φ(k) via degree-sorted cumulative sums on the CSR view.

    ``E_{>k}`` is the suffix sum of a histogram of per-edge min endpoint
    degrees and ``N_{>k}`` the suffix sum of the degree histogram — two
    ``np.bincount`` calls and two reversed cumsums replace the club sweep.
    Every count is an exact integer, so the densities match the python
    backend bit-for-bit.
    """
    view = graph.csr()
    degrees = view.degrees
    if view.num_nodes == 0:
        return {}
    max_k = int(degrees.max())
    if max_k == 0:
        return {}
    u, v, _ = view.edge_arrays()
    edge_min = np.minimum(degrees[u], degrees[v])
    edge_hist = np.bincount(edge_min, minlength=max_k + 1)
    node_hist = np.bincount(degrees, minlength=max_k + 1)
    # suffix[k] == count of entries with value > k (sentinel 0 at max_k).
    edges_above = np.concatenate(
        (np.cumsum(edge_hist[::-1])[::-1][1:], [0])
    )
    nodes_above = np.concatenate(
        (np.cumsum(node_hist[::-1])[::-1][1:], [0])
    )
    phi: Dict[int, float] = {}
    for k in range(max_k):
        size = int(nodes_above[k])
        if size >= 2:
            phi[k] = 2.0 * int(edges_above[k]) / (size * (size - 1))
    return phi


def rich_club_coefficient(graph: Graph, backend: str = "auto") -> Dict[int, float]:
    """φ(k) for every degree k present: density among nodes with degree > k.

    Computed incrementally from high k downward in O(E + N log N): for each
    threshold k, ``φ(k) = 2 E_{>k} / (N_{>k} (N_{>k} - 1))``.  Thresholds
    where fewer than two nodes qualify are omitted.
    """
    if resolve_backend(backend, graph.num_nodes) == "csr":
        return _rich_club_csr(graph)
    degrees = graph.degrees()
    if not degrees:
        return {}
    # Sort thresholds descending; sweep nodes into the club as k decreases.
    max_k = max(degrees.values())
    nodes_by_degree: Dict[int, List[Node]] = {}
    for node, k in degrees.items():
        nodes_by_degree.setdefault(k, []).append(node)
    club: set = set()
    edges_inside = 0
    phi: Dict[int, float] = {}
    for k in range(max_k - 1, -1, -1):
        # Nodes of degree k+1 enter the club when the threshold drops to k.
        for node in nodes_by_degree.get(k + 1, ()):
            for nbr in graph.neighbors(node):
                if nbr in club:
                    edges_inside += 1
            club.add(node)
        size = len(club)
        if size >= 2:
            phi[k] = 2.0 * edges_inside / (size * (size - 1))
    return dict(sorted(phi.items()))


def normalized_rich_club(
    graph: Graph,
    reference: Graph,
    backend: str = "auto",
) -> Dict[int, float]:
    """ρ(k) = φ(k) / φ_ref(k) against a degree-preserving *reference*.

    Thresholds missing from either spectrum, or where the reference density
    is zero, are omitted.  Use
    :func:`repro.generators.random_reference.rewired_reference` to build the
    null model.
    """
    phi = rich_club_coefficient(graph, backend=backend)
    phi_ref = rich_club_coefficient(reference, backend=backend)
    out: Dict[int, float] = {}
    for k, value in phi.items():
        ref = phi_ref.get(k)
        if ref:
            out[k] = value / ref
    return out


def rich_club_spectrum(
    graph: Graph, reference: Optional[Graph] = None, backend: str = "auto"
) -> List[Tuple[int, float]]:
    """(k, φ(k)) — or (k, ρ(k)) when *reference* is given — as sorted rows."""
    if reference is None:
        return sorted(rich_club_coefficient(graph, backend=backend).items())
    return sorted(normalized_rich_club(graph, reference, backend=backend).items())
