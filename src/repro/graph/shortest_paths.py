"""Shortest-path-length statistics (experiment F8).

The small-world property of the AS map shows up as a sharply peaked
hop-count distribution with mean ≈ 3.5–4.  Exact all-pairs BFS costs
O(N·E); for graphs beyond a few thousand nodes the functions here switch to
uniform source sampling, which estimates the distribution with controlled
error while keeping harness runtimes bounded.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

import numpy as np

from ..stats.rng import SeedLike, make_rng
from .csr import resolve_backend
from .graph import Graph
from .traversal import bfs_distances

__all__ = [
    "PathLengthStats",
    "path_length_distribution",
    "average_path_length",
    "eccentricities",
    "diameter",
]

Node = Hashable


@dataclass(frozen=True)
class PathLengthStats:
    """Hop-count distribution over (sampled) connected pairs.

    ``counts[d]`` is the number of ordered source→target observations at
    distance ``d >= 1``; ``sources`` records how many BFS roots were used and
    ``exact`` whether every node served as a root.
    """

    counts: Dict[int, int]
    sources: int
    exact: bool

    @property
    def total_pairs(self) -> int:
        """Number of distance observations."""
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        """Average shortest path length ⟨ℓ⟩."""
        total = self.total_pairs
        if total == 0:
            return 0.0
        return sum(d * c for d, c in self.counts.items()) / total

    @property
    def max_observed(self) -> int:
        """Largest distance seen (the diameter when ``exact``)."""
        return max(self.counts) if self.counts else 0

    def probabilities(self) -> List[Tuple[int, float]]:
        """(distance, probability) pairs, normalized over observations."""
        total = self.total_pairs
        if total == 0:
            return []
        return [(d, self.counts[d] / total) for d in sorted(self.counts)]


def path_length_distribution(
    graph: Graph,
    max_sources: Optional[int] = None,
    seed: SeedLike = None,
    backend: str = "auto",
) -> PathLengthStats:
    """Distribution of shortest-path lengths within *graph*.

    With *max_sources* set and smaller than N, BFS roots are sampled
    uniformly without replacement; otherwise every node is a root and the
    counts are exact (each unordered pair contributes twice, which cancels
    in all normalized statistics).

    *backend* selects the implementation (see
    :func:`repro.graph.csr.resolve_backend`); sampling happens in node-id
    space before the backend split, so both backends observe identical
    counts for the same seed.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return PathLengthStats(counts={}, sources=0, exact=True)
    exact = max_sources is None or max_sources >= len(nodes)
    if exact:
        sources = nodes
    else:
        rng = make_rng(seed)
        sources = rng.sample(nodes, max_sources)
    if resolve_backend(backend, len(nodes)) == "csr":
        counts = _distance_counts_csr(graph, sources)
    else:
        counts = {}
        for source in sources:
            for distance in bfs_distances(graph, source).values():
                if distance > 0:
                    counts[distance] = counts.get(distance, 0) + 1
    return PathLengthStats(counts=counts, sources=len(sources), exact=exact)


#: Sources per batched-BFS chunk: large enough to amortize per-level array
#: overhead, small enough to keep the dense (n, batch) workspaces in cache.
_BFS_BATCH = 512


def _source_positions(view, sources) -> np.ndarray:
    index = view.index
    return np.fromiter(
        (index[s] for s in sources), dtype=np.int64, count=len(sources)
    )


def _distance_counts_csr(graph: Graph, sources) -> Dict[int, int]:
    """Aggregate positive BFS distance counts over *sources* (CSR path)."""
    view = graph.csr()
    positions = _source_positions(view, sources)
    totals = np.zeros(1, dtype=np.int64)
    for start in range(0, positions.size, _BFS_BATCH):
        distances = view.distance_batch(positions[start : start + _BFS_BATCH])
        reached = distances[distances > 0]
        if reached.size == 0:
            continue
        per_chunk = np.bincount(reached)
        if per_chunk.size > totals.size:
            grown = np.zeros(per_chunk.size, dtype=np.int64)
            grown[: totals.size] = totals
            totals = grown
        totals[: per_chunk.size] += per_chunk
    return {d: int(c) for d, c in enumerate(totals.tolist()) if c}


def average_path_length(
    graph: Graph,
    max_sources: Optional[int] = None,
    seed: SeedLike = None,
    backend: str = "auto",
) -> float:
    """Characteristic path length ⟨ℓ⟩ (sampled when *max_sources* is set)."""
    return path_length_distribution(
        graph, max_sources=max_sources, seed=seed, backend=backend
    ).mean


def eccentricities(graph: Graph, backend: str = "auto") -> Dict[Node, int]:
    """Eccentricity of every node (max distance to any reachable node).

    Requires a connected graph to be meaningful; on a disconnected graph the
    eccentricity is computed within each node's component.
    """
    if resolve_backend(backend, graph.num_nodes) == "csr":
        view = graph.csr()
        n = view.num_nodes
        out_csr: Dict[Node, int] = {}
        for start in range(0, n, _BFS_BATCH):
            positions = np.arange(start, min(start + _BFS_BATCH, n))
            # Unreachable entries are -1 < 0, so the column max is the
            # farthest reachable node (0 for an isolated source).
            maxima = view.distance_batch(positions).max(axis=0)
            for i, ecc in zip(positions.tolist(), maxima.tolist()):
                out_csr[view.nodes[i]] = int(ecc)
        return out_csr
    out: Dict[Node, int] = {}
    for node in graph.nodes():
        distances = bfs_distances(graph, node)
        out[node] = max(distances.values()) if len(distances) > 1 else 0
    return out


def diameter(graph: Graph, backend: str = "auto") -> int:
    """Exact diameter (longest shortest path) of the graph.

    Raises :class:`ValueError` on a disconnected graph, where the diameter
    is conventionally infinite.
    """
    nodes = list(graph.nodes())
    if not nodes:
        return 0
    best = 0
    n = len(nodes)
    if resolve_backend(backend, n) == "csr":
        view = graph.csr()
        for start in range(0, n, _BFS_BATCH):
            positions = np.arange(start, min(start + _BFS_BATCH, n))
            distances = view.distance_batch(positions)
            if int((distances >= 0).sum()) != n * positions.size:
                raise ValueError("diameter is undefined on a disconnected graph")
            best = max(best, int(distances.max()))
        return best
    for node in nodes:
        distances = bfs_distances(graph, node)
        if len(distances) != n:
            raise ValueError("diameter is undefined on a disconnected graph")
        best = max(best, max(distances.values()))
    return best
