"""Compressed-sparse-row fast path for the graph engine.

:class:`CSRView` is an immutable array snapshot of a :class:`~repro.graph.
graph.Graph`: contiguous ``indptr``/``indices``/``weights`` numpy arrays
plus the node↔index maps that tie array positions back to node ids.  The
hot metric kernels (BFS path lengths, Brandes betweenness, triangle
counting, k-core peeling, rich-club and correlation sweeps) have array
implementations operating on this view that produce values identical to
the pure-Python reference implementations — CSR is a *speed* choice, never
a *semantics* choice.

The view contract:

* **one-pass build** — :meth:`CSRView.from_graph` walks the adjacency
  exactly once; per-row neighbor indices are sorted so intersection-style
  kernels can rely on ordered adjacency;
* **immutable** — every array is marked read-only; a view never changes
  after construction;
* **never stale** — :meth:`Graph.csr` caches the view against a
  monotonically bumped mutation counter, so any ``add_edge`` /
  ``remove_edge`` / ``remove_node`` / ``set_edge_weight`` after the build
  makes the next ``csr()`` call rebuild.

Backend selection is centralized in :func:`resolve_backend`: an explicit
``backend="python"`` or ``"csr"`` always wins; ``"auto"`` consults the
``REPRO_BACKEND`` environment variable and otherwise picks CSR at or above
:data:`AUTO_CSR_THRESHOLD` nodes (array setup costs more than it saves on
tiny graphs).
"""

from __future__ import annotations

import os
from typing import Dict, Hashable, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "CSRView",
    "resolve_backend",
    "BACKENDS",
    "AUTO_CSR_THRESHOLD",
    "REPRO_BACKEND_ENV",
]

Node = Hashable

#: Accepted values for every kernel's ``backend`` parameter.
BACKENDS = ("auto", "python", "csr")

#: ``backend="auto"`` picks the CSR path at or above this many nodes.
AUTO_CSR_THRESHOLD = 300

#: Environment variable consulted by ``backend="auto"`` (values: ``python``,
#: ``csr``, or ``auto``); explicit backend arguments always override it.
REPRO_BACKEND_ENV = "REPRO_BACKEND"


def resolve_backend(backend: str = "auto", size: int = 0) -> str:
    """Resolve a ``backend`` argument to ``"python"`` or ``"csr"``.

    Explicit choices pass through (after validation).  ``"auto"`` defers
    first to the ``REPRO_BACKEND`` environment variable — which lets CI
    force the fast path across an unmodified test suite — and then to the
    size threshold: CSR at or above :data:`AUTO_CSR_THRESHOLD` nodes.
    """
    if backend not in BACKENDS:
        choices = ", ".join(BACKENDS)
        raise ValueError(f"unknown backend {backend!r}; choose one of: {choices}")
    if backend != "auto":
        return backend
    env = os.environ.get(REPRO_BACKEND_ENV, "").strip().lower()
    if env in ("python", "csr"):
        return env
    if env not in ("", "auto"):
        choices = ", ".join(BACKENDS)
        raise ValueError(
            f"invalid {REPRO_BACKEND_ENV}={env!r}; choose one of: {choices}"
        )
    return "csr" if size >= AUTO_CSR_THRESHOLD else "python"


class CSRView:
    """Immutable CSR snapshot of an undirected weighted graph.

    ``indices[indptr[i]:indptr[i+1]]`` are the (sorted) neighbor indices of
    the node at position ``i``; ``weights`` aligns with ``indices``.  Each
    undirected edge appears twice (once per endpoint), so
    ``len(indices) == 2 * num_edges``.  ``nodes[i]`` recovers the node id
    at position ``i`` and ``index[node]`` the position of a node id;
    positions follow the graph's node iteration order, so isolated nodes
    are present (as empty rows).

    ``nodes`` may be any indexable sequence — a tuple for in-memory
    builds, a ``range`` for stores whose ids are the positions themselves
    (so a million-node view does not materialize a million id objects).
    The ``index`` map is built lazily on first access for the same reason:
    array-only kernels on a memory-mapped snapshot never pay for it.
    """

    __slots__ = (
        "indptr",
        "indices",
        "weights",
        "nodes",
        "_index",
        "degrees",
        "_sparse",
        "_bfs_sparse",
    )

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        weights: np.ndarray,
        nodes: Sequence[Node],
    ):
        for array in (indptr, indices, weights):
            if array.flags.writeable:
                array.setflags(write=False)
        self.indptr = indptr
        self.indices = indices
        self.weights = weights
        self.nodes = nodes
        self._index: Optional[Dict[Node, int]] = None
        degrees = np.diff(indptr)
        degrees.setflags(write=False)
        self.degrees = degrees
        self._sparse = None
        self._bfs_sparse = None

    @property
    def index(self) -> Dict[Node, int]:
        """node id → array position (built lazily, then cached)."""
        if self._index is None:
            self._index = {node: i for i, node in enumerate(self.nodes)}
        return self._index

    @classmethod
    def from_graph(cls, graph) -> "CSRView":
        """Build a view from *graph* in one adjacency pass."""
        nodes = tuple(graph.nodes())
        n = len(nodes)
        index = {node: i for i, node in enumerate(nodes)}
        degrees = np.fromiter(
            (graph.degree(node) for node in nodes), dtype=np.int64, count=n
        )
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        total = int(indptr[-1])
        indices = np.empty(total, dtype=np.int64)
        weights = np.empty(total, dtype=np.float64)
        for i, node in enumerate(nodes):
            nbrs = graph.neighbor_weights(node)
            if not nbrs:
                continue
            start, stop = int(indptr[i]), int(indptr[i + 1])
            row = np.fromiter(
                (index[v] for v in nbrs), dtype=np.int64, count=len(nbrs)
            )
            row_weights = np.fromiter(
                nbrs.values(), dtype=np.float64, count=len(nbrs)
            )
            order = np.argsort(row, kind="stable")
            indices[start:stop] = row[order]
            weights[start:stop] = row_weights[order]
        return cls(indptr, indices, weights, nodes)

    @property
    def num_nodes(self) -> int:
        """Number of nodes (array positions), isolated nodes included."""
        return len(self.nodes)

    @property
    def num_edges(self) -> int:
        """Number of distinct undirected edges."""
        return len(self.indices) // 2

    def neighbor_slice(self, i: int) -> np.ndarray:
        """Sorted neighbor indices of the node at position *i*."""
        return self.indices[self.indptr[i] : self.indptr[i + 1]]

    # -------------------------------------------------------------- kernels

    def neighbor_block(self, frontier: np.ndarray) -> np.ndarray:
        """All neighbor indices of the *frontier* positions, concatenated
        (duplicates preserved) — the gather primitive behind the frontier
        BFS and peeling kernels."""
        block, _ = self.neighbor_block_with_sources(frontier)
        return block

    def neighbor_block_with_sources(
        self, frontier: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(neighbors, sources): concatenated neighbor indices of the
        *frontier* positions plus, aligned, the frontier position each
        neighbor was reached from (what Brandes accumulation needs)."""
        starts = self.indptr[frontier]
        counts = self.indptr[frontier + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        cum = np.cumsum(counts)
        # Per-element offset within its own row: 0..count-1 for each source.
        offsets = np.arange(total, dtype=np.int64) - np.repeat(cum - counts, counts)
        block = self.indices[np.repeat(starts, counts) + offsets]
        sources = np.repeat(frontier, counts)
        return block, sources

    def bfs_distances(self, source: int) -> np.ndarray:
        """Hop distances from position *source* (-1 for unreachable)."""
        distances = np.full(self.num_nodes, -1, dtype=np.int64)
        distances[source] = 0
        frontier = np.array([source], dtype=np.int64)
        depth = 0
        while frontier.size:
            block = self.neighbor_block(frontier)
            block = block[distances[block] < 0]
            if block.size == 0:
                break
            depth += 1
            distances[block] = depth
            frontier = np.unique(block)
        return distances

    def edge_arrays(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(u, v, w) position arrays with each undirected edge once (u < v)."""
        rows = np.repeat(np.arange(self.num_nodes, dtype=np.int64), self.degrees)
        mask = rows < self.indices
        return rows[mask], self.indices[mask], self.weights[mask]

    def unweighted_sparse(self):
        """The 0/1 adjacency as a ``scipy.sparse.csr_matrix`` with float64
        data (cached — the view is immutable, so this is always valid).

        Shares ``indptr``/``indices`` with the view (no copy); only the
        data array is fresh.  float64 keeps matmul-based kernels (triangle
        intersection, Brandes sigma propagation) exact: every accumulated
        value is an integer far below 2**53.
        """
        if self._sparse is None:
            from scipy.sparse import csr_matrix

            n = self.num_nodes
            data = np.ones(len(self.indices), dtype=np.float64)
            self._sparse = csr_matrix(
                (data, self.indices, self.indptr), shape=(n, n)
            )
        return self._sparse

    def _frontier_sparse(self):
        """float32 0/1 adjacency for distance-only frontier expansion,
        where values are just reachability counts bounded by the max
        degree (exact in float32) and bandwidth is the bottleneck."""
        if self._bfs_sparse is None:
            from scipy.sparse import csr_matrix

            n = self.num_nodes
            data = np.ones(len(self.indices), dtype=np.float32)
            self._bfs_sparse = csr_matrix(
                (data, self.indices, self.indptr), shape=(n, n)
            )
        return self._bfs_sparse

    def distance_batch(
        self, sources: np.ndarray, active: "np.ndarray | None" = None
    ) -> np.ndarray:
        """Hop distances from many sources at once: an ``(n, len(sources))``
        int32 matrix, -1 for unreachable.

        Level-synchronous expansion of all source frontiers together —
        one sparse·dense matmul per BFS level for the whole batch — which
        amortizes the per-level array overhead that makes one-source-at-a-
        time frontier BFS slow.  Column ``j`` equals
        ``bfs_distances(sources[j])``.

        *active*, when given, is a length-``n`` boolean mask restricting
        the BFS to the induced subgraph on the True positions: inactive
        positions are never visited, never expanded, and stay -1 in every
        column — what the percolation sweeps need to measure a partially
        removed graph without rebuilding the view.  All *sources* must be
        active.
        """
        n = self.num_nodes
        batch = int(sources.size)
        distances = np.full((n, batch), -1, dtype=np.int32)
        if n == 0 or batch == 0:
            return distances
        if active is not None and not active[sources].all():
            raise ValueError("all sources must be active positions")
        adjacency = self._frontier_sparse()
        cols = np.arange(batch)
        distances[sources, cols] = 0
        frontier = np.zeros((n, batch), dtype=np.float32)
        frontier[sources, cols] = 1.0
        depth = 0
        while True:
            reached = adjacency @ frontier
            fresh = (reached > 0) & (distances < 0)
            if active is not None:
                fresh &= active[:, None]
            if not fresh.any():
                return distances
            depth += 1
            distances[fresh] = depth
            frontier = fresh.astype(np.float32)

    def __repr__(self) -> str:
        return f"<CSRView: {self.num_nodes} nodes, {self.num_edges} edges>"
