"""Triangles and clustering coefficients (experiments F3, F5-right).

The AS map's clustering spectrum ``c(k)`` decays roughly as ``k^-0.75``, the
signature of its hierarchical structure; flat spectra (BA model) are the
classic failure mode the validation battery must expose.  All functions
operate on the *simple* topology — edge weights are ignored, which matches
how the literature measures clustering on multigraph-collapsed AS maps.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

import numpy as np

from ..stats.distributions import binned_spectrum
from .csr import resolve_backend
from .graph import Graph

__all__ = [
    "triangles_per_node",
    "total_triangles",
    "local_clustering",
    "average_clustering",
    "transitivity",
    "clustering_spectrum",
    "clustering_by_degree",
]

Node = Hashable


def _triangle_array_csr(graph: Graph) -> np.ndarray:
    """Per-position triangle counts on the CSR view.

    The view's rows are sorted, so ``A·A`` restricted to the nonzeros of
    ``A`` (sparse matmul + elementwise mask) counts, for every connected
    pair, their common neighbors — the sorted-adjacency intersection in
    array form.  Row-summing gives twice the per-node triangle count, all
    in exact int64 arithmetic.
    """
    view = graph.csr()
    if view.num_edges == 0:
        return np.zeros(view.num_nodes, dtype=np.int64)
    adjacency = view.unweighted_sparse()
    common = (adjacency @ adjacency).multiply(adjacency)
    doubled = np.asarray(common.sum(axis=1)).ravel().astype(np.int64)
    return doubled // 2


def triangles_per_node(graph: Graph, backend: str = "auto") -> Dict[Node, int]:
    """Number of triangles through each node.

    Neighbor-intersection counting: for each node, intersect the adjacency
    sets of neighbor pairs via hash lookups, iterating the smaller side.
    O(sum_e min(d_u, d_v)) overall.  The CSR backend computes the same
    integer counts via sparse-matrix intersection.
    """
    if resolve_backend(backend, graph.num_nodes) == "csr":
        per_position = _triangle_array_csr(graph)
        return {
            node: int(per_position[i])
            for i, node in enumerate(graph.csr().nodes)
        }
    counts: Dict[Node, int] = {node: 0 for node in graph.nodes()}
    adj = {node: graph.neighbor_weights(node) for node in graph.nodes()}
    for u in graph.nodes():
        nbrs_u = adj[u]
        for v in nbrs_u:
            if not _ordered_before(u, v):
                continue
            # Iterate the smaller adjacency to bound the intersection cost.
            small, large = (nbrs_u, adj[v]) if len(nbrs_u) <= len(adj[v]) else (adj[v], nbrs_u)
            for w in small:
                if w != u and w != v and w in large and _ordered_before(v, w):
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
    return counts


def _ordered_before(a: Node, b: Node) -> bool:
    """Stable ordering for arbitrary hashable ids (id() fallback for
    non-comparable mixes); node ids within one graph are homogeneous in
    practice, so the common path is a plain ``<``."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return id(a) < id(b)


def total_triangles(graph: Graph, backend: str = "auto") -> int:
    """Total number of distinct triangles in the graph."""
    if resolve_backend(backend, graph.num_nodes) == "csr":
        return int(_triangle_array_csr(graph).sum()) // 3
    return sum(triangles_per_node(graph, backend="python").values()) // 3


def local_clustering(graph: Graph, backend: str = "auto") -> Dict[Node, float]:
    """Watts–Strogatz local clustering coefficient per node.

    ``c_i = 2 T_i / (k_i (k_i - 1))``; nodes of degree < 2 get 0.

    Both backends evaluate the identical float expression from identical
    integer triangle counts in the same node order, so the values are
    bit-for-bit equal.
    """
    triangles = triangles_per_node(graph, backend=backend)
    out: Dict[Node, float] = {}
    for node in graph.nodes():
        k = graph.degree(node)
        if k < 2:
            out[node] = 0.0
        else:
            out[node] = 2.0 * triangles[node] / (k * (k - 1))
    return out


def average_clustering(
    graph: Graph, count_low_degree: bool = True, backend: str = "auto"
) -> float:
    """Mean of the local clustering coefficients.

    With ``count_low_degree`` False, degree-0/1 nodes are excluded from the
    average instead of contributing zeros (both conventions appear in the
    literature; the AS-map papers typically include them).
    """
    local = local_clustering(graph, backend=backend)
    if count_low_degree:
        values = list(local.values())
    else:
        values = [c for node, c in local.items() if graph.degree(node) >= 2]
    if not values:
        return 0.0
    return sum(values) / len(values)


def transitivity(graph: Graph, backend: str = "auto") -> float:
    """Global transitivity: 3 × triangles / connected triples."""
    triangles = total_triangles(graph, backend=backend)
    triples = sum(k * (k - 1) // 2 for k in graph.degrees().values())
    if triples == 0:
        return 0.0
    return 3.0 * triangles / triples


def clustering_by_degree(graph: Graph, backend: str = "auto") -> Dict[int, float]:
    """Mean local clustering of nodes at each exact degree k >= 2."""
    local = local_clustering(graph, backend=backend)
    sums: Dict[int, List[float]] = {}
    for node, c in local.items():
        k = graph.degree(node)
        if k >= 2:
            sums.setdefault(k, []).append(c)
    return {k: sum(cs) / len(cs) for k, cs in sorted(sums.items())}


def clustering_spectrum(
    graph: Graph,
    log_bins: bool = True,
    bins_per_decade: int = 10,
    backend: str = "auto",
) -> List[Tuple[float, float]]:
    """The c(k) spectrum: mean clustering vs degree, log-binned by default."""
    local = local_clustering(graph, backend=backend)
    pairs = [
        (float(graph.degree(node)), c)
        for node, c in local.items()
        if graph.degree(node) >= 2
    ]
    return binned_spectrum(pairs, log_bins=log_bins, bins_per_decade=bins_per_decade)
