"""Triangles and clustering coefficients (experiments F3, F5-right).

The AS map's clustering spectrum ``c(k)`` decays roughly as ``k^-0.75``, the
signature of its hierarchical structure; flat spectra (BA model) are the
classic failure mode the validation battery must expose.  All functions
operate on the *simple* topology — edge weights are ignored, which matches
how the literature measures clustering on multigraph-collapsed AS maps.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Tuple

from ..stats.distributions import binned_spectrum
from .graph import Graph

__all__ = [
    "triangles_per_node",
    "total_triangles",
    "local_clustering",
    "average_clustering",
    "transitivity",
    "clustering_spectrum",
    "clustering_by_degree",
]

Node = Hashable


def triangles_per_node(graph: Graph) -> Dict[Node, int]:
    """Number of triangles through each node.

    Neighbor-intersection counting: for each node, intersect the adjacency
    sets of neighbor pairs via hash lookups, iterating the smaller side.
    O(sum_e min(d_u, d_v)) overall.
    """
    counts: Dict[Node, int] = {node: 0 for node in graph.nodes()}
    adj = {node: graph.neighbor_weights(node) for node in graph.nodes()}
    for u in graph.nodes():
        nbrs_u = adj[u]
        for v in nbrs_u:
            if not _ordered_before(u, v):
                continue
            # Iterate the smaller adjacency to bound the intersection cost.
            small, large = (nbrs_u, adj[v]) if len(nbrs_u) <= len(adj[v]) else (adj[v], nbrs_u)
            for w in small:
                if w != u and w != v and w in large and _ordered_before(v, w):
                    counts[u] += 1
                    counts[v] += 1
                    counts[w] += 1
    return counts


def _ordered_before(a: Node, b: Node) -> bool:
    """Stable ordering for arbitrary hashable ids (id() fallback for
    non-comparable mixes); node ids within one graph are homogeneous in
    practice, so the common path is a plain ``<``."""
    try:
        return a < b  # type: ignore[operator]
    except TypeError:
        return id(a) < id(b)


def total_triangles(graph: Graph) -> int:
    """Total number of distinct triangles in the graph."""
    return sum(triangles_per_node(graph).values()) // 3


def local_clustering(graph: Graph) -> Dict[Node, float]:
    """Watts–Strogatz local clustering coefficient per node.

    ``c_i = 2 T_i / (k_i (k_i - 1))``; nodes of degree < 2 get 0.
    """
    triangles = triangles_per_node(graph)
    out: Dict[Node, float] = {}
    for node in graph.nodes():
        k = graph.degree(node)
        if k < 2:
            out[node] = 0.0
        else:
            out[node] = 2.0 * triangles[node] / (k * (k - 1))
    return out


def average_clustering(graph: Graph, count_low_degree: bool = True) -> float:
    """Mean of the local clustering coefficients.

    With ``count_low_degree`` False, degree-0/1 nodes are excluded from the
    average instead of contributing zeros (both conventions appear in the
    literature; the AS-map papers typically include them).
    """
    local = local_clustering(graph)
    if count_low_degree:
        values = list(local.values())
    else:
        values = [c for node, c in local.items() if graph.degree(node) >= 2]
    if not values:
        return 0.0
    return sum(values) / len(values)


def transitivity(graph: Graph) -> float:
    """Global transitivity: 3 × triangles / connected triples."""
    triangles = total_triangles(graph)
    triples = sum(k * (k - 1) // 2 for k in graph.degrees().values())
    if triples == 0:
        return 0.0
    return 3.0 * triangles / triples


def clustering_by_degree(graph: Graph) -> Dict[int, float]:
    """Mean local clustering of nodes at each exact degree k >= 2."""
    local = local_clustering(graph)
    sums: Dict[int, List[float]] = {}
    for node, c in local.items():
        k = graph.degree(node)
        if k >= 2:
            sums.setdefault(k, []).append(c)
    return {k: sum(cs) / len(cs) for k, cs in sorted(sums.items())}


def clustering_spectrum(
    graph: Graph, log_bins: bool = True, bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """The c(k) spectrum: mean clustering vs degree, log-binned by default."""
    local = local_clustering(graph)
    pairs = [
        (float(graph.degree(node)), c)
        for node, c in local.items()
        if graph.degree(node) >= 2
    ]
    return binned_spectrum(pairs, log_bins=log_bins, bins_per_decade=bins_per_decade)
