"""Spectral graph measurements.

Complements the combinatorial battery with three spectral quantities the
robustness/synchronization literature uses on internet graphs:

* **spectral radius** — largest adjacency eigenvalue λ₁; the epidemic
  threshold of a topology is 1/λ₁, and heavy-tailed graphs have λ₁ growing
  with sqrt(k_max), i.e. essentially no threshold;
* **algebraic connectivity** — second-smallest Laplacian eigenvalue λ₂(L);
  small values reveal bottleneck cuts;
* **normalized spectral gap** — 1 − μ₂ of the random-walk matrix, governing
  mixing time.

Eigenvalues come from sparse Lanczos (``scipy.sparse.linalg.eigsh``) so the
functions scale to harness-size graphs.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as sparse_linalg

from .cycles import adjacency_matrix
from .graph import Graph

__all__ = [
    "spectral_radius",
    "algebraic_connectivity",
    "laplacian_matrix",
    "normalized_spectral_gap",
    "epidemic_threshold",
]


def _require_size(graph: Graph, minimum: int) -> None:
    if graph.num_nodes < minimum:
        raise ValueError(f"need at least {minimum} nodes, got {graph.num_nodes}")


def laplacian_matrix(graph: Graph) -> sparse.csr_matrix:
    """Combinatorial Laplacian L = D − A of the simple topology."""
    a, _ = adjacency_matrix(graph)
    degrees = np.asarray(a.sum(axis=1)).ravel()
    return sparse.diags(degrees).tocsr() - a


def spectral_radius(graph: Graph) -> float:
    """Largest adjacency eigenvalue λ₁ (unweighted topology)."""
    _require_size(graph, 2)
    a, _ = adjacency_matrix(graph)
    if graph.num_nodes < 10:
        return float(np.max(np.linalg.eigvalsh(a.toarray())))
    values = sparse_linalg.eigsh(a, k=1, which="LA", return_eigenvectors=False)
    return float(values[0])


def algebraic_connectivity(graph: Graph) -> float:
    """Second-smallest Laplacian eigenvalue λ₂ (Fiedler value).

    Zero exactly when the graph is disconnected; larger means harder to
    partition.
    """
    _require_size(graph, 2)
    lap = laplacian_matrix(graph)
    if graph.num_nodes < 10:
        values = np.sort(np.linalg.eigvalsh(lap.toarray()))
        return float(max(values[1], 0.0))
    # Shift-invert around zero targets the smallest eigenvalues robustly.
    values = sparse_linalg.eigsh(
        lap, k=2, sigma=-1e-6, which="LM", return_eigenvectors=False
    )
    return float(max(np.sort(values)[1], 0.0))


def normalized_spectral_gap(graph: Graph) -> float:
    """Gap 1 − μ₂ of the lazy random-walk spectrum (0 = no mixing).

    Computed on the symmetric normalization D^{-1/2} A D^{-1/2}; isolated
    nodes are excluded (their walk never moves).
    """
    _require_size(graph, 2)
    a, index = adjacency_matrix(graph)
    degrees = np.asarray(a.sum(axis=1)).ravel()
    keep = degrees > 0
    if keep.sum() < 2:
        return 0.0
    a = a[keep][:, keep]
    degrees = degrees[keep]
    scale = sparse.diags(1.0 / np.sqrt(degrees))
    walk = (scale @ a @ scale).tocsr()
    n = walk.shape[0]
    if n < 10:
        values = np.sort(np.linalg.eigvalsh(walk.toarray()))[::-1]
    else:
        values = np.sort(
            sparse_linalg.eigsh(walk, k=2, which="LA", return_eigenvectors=False)
        )[::-1]
    return float(max(values[0] - values[1], 0.0))


def epidemic_threshold(graph: Graph) -> float:
    """SIS epidemic threshold 1/λ₁ — vanishing for heavy-tailed maps."""
    radius = spectral_radius(graph)
    if radius <= 0:
        raise ValueError("graph has no edges: threshold undefined")
    return 1.0 / radius
