"""Graph serialization.

Two plain-text formats cover the toolkit's needs:

* **edge list** — ``u v [weight]`` per line, the format Route Views-derived
  AS maps are customarily distributed in;
* **adjacency JSON** — a self-describing dict used for snapshot fixtures.

Lines starting with ``#`` are comments; blank lines are skipped.  Node ids
are parsed as integers when possible, otherwise kept as strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Union

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "edge_list_lines",
    "parse_edge_list_lines",
]

PathLike = Union[str, Path]


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def edge_list_lines(graph: Graph, weights: bool = True) -> Iterable[str]:
    """Yield edge-list lines for *graph* (without trailing newlines)."""
    for u, v, w in graph.weighted_edges():
        if weights and w != 1.0:
            yield f"{u} {v} {w:g}"
        elif weights:
            yield f"{u} {v} 1"
        else:
            yield f"{u} {v}"


def parse_edge_list_lines(lines: Iterable[str], name: str = "") -> Graph:
    """Build a graph from edge-list *lines* (comments/blanks ignored)."""
    graph = Graph(name=name)

    def triples():
        for lineno, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"line {lineno}: expected 'u v [weight]', got {line!r}"
                )
            u, v = _parse_node(parts[0]), _parse_node(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
            yield (u, v, weight)

    graph.add_edges(triples())
    return graph


def write_edge_list(graph: Graph, path: PathLike, weights: bool = True) -> None:
    """Write *graph* as an edge-list file with a descriptive header."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# repro edge list: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        for line in edge_list_lines(graph, weights=weights):
            handle.write(line + "\n")


def read_edge_list(path: PathLike, name: str = "") -> Graph:
    """Read an edge-list file into a :class:`Graph`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_edge_list_lines(handle, name=name or path.stem)


def write_json(graph: Graph, path: PathLike) -> None:
    """Write *graph* as adjacency JSON (stable key order)."""
    payload = {
        "name": graph.name,
        "nodes": sorted(graph.nodes(), key=str),
        "edges": sorted(
            ([str(u), str(v), w] if not isinstance(u, int) or not isinstance(v, int)
             else [u, v, w])
            for u, v, w in graph.weighted_edges()
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def read_json(path: PathLike) -> Graph:
    """Read adjacency JSON written by :func:`write_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    graph = Graph(name=payload.get("name", ""))
    for node in payload.get("nodes", ()):
        graph.add_node(node)
    graph.add_edges(
        (u, v, float(w)) for u, v, w in payload.get("edges", ())
    )
    return graph
