"""Graph serialization.

Two plain-text formats cover the toolkit's needs:

* **edge list** — ``u v [weight]`` per line, the format Route Views-derived
  AS maps are customarily distributed in;
* **adjacency JSON** — a self-describing dict used for snapshot fixtures.

Lines starting with ``#`` are comments; blank lines are skipped.  Node ids
are parsed as integers when possible, otherwise kept as strings.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable, Union

from .graph import Graph

__all__ = [
    "write_edge_list",
    "read_edge_list",
    "write_json",
    "read_json",
    "edge_list_lines",
    "parse_edge_list_lines",
]

PathLike = Union[str, Path]


def _parse_node(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def edge_list_lines(graph: Graph, weights: bool = True) -> Iterable[str]:
    """Yield edge-list lines for *graph* (without trailing newlines).

    Degree-zero nodes have no edge line to live on, so each one is carried
    by a ``# node <id>`` comment line — ignored by foreign edge-list
    readers, recovered by :func:`parse_edge_list_lines` — which keeps the
    write/read round trip fingerprint-identical for graphs with isolated
    nodes (real AS snapshots after filtering, percolation survivors).
    """
    for u in graph.nodes():
        if graph.degree(u) == 0:
            yield f"# node {u}"
    for u, v, w in graph.weighted_edges():
        if weights and w != 1.0:
            yield f"{u} {v} {w:g}"
        elif weights:
            yield f"{u} {v} 1"
        else:
            yield f"{u} {v}"


def parse_edge_list_lines(lines: Iterable[str], name: str = "") -> Graph:
    """Build a graph from edge-list *lines* (comments/blanks ignored).

    ``# node <id>`` comment lines (written for isolated nodes) register
    the node; all other comments are skipped.
    """
    graph = Graph(name=name)

    def triples():
        for lineno, raw in enumerate(lines, start=1):
            line = raw.strip()
            if not line:
                continue
            if line.startswith("#"):
                parts = line[1:].split()
                if len(parts) == 2 and parts[0] == "node":
                    graph.add_node(_parse_node(parts[1]))
                continue
            parts = line.split()
            if len(parts) not in (2, 3):
                raise ValueError(
                    f"line {lineno}: expected 'u v [weight]', got {line!r}"
                )
            u, v = _parse_node(parts[0]), _parse_node(parts[1])
            weight = float(parts[2]) if len(parts) == 3 else 1.0
            yield (u, v, weight)

    graph.add_edges(triples())
    return graph


def write_edge_list(graph: Graph, path: PathLike, weights: bool = True) -> None:
    """Write *graph* as an edge-list file with a descriptive header."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write(f"# repro edge list: {graph.num_nodes} nodes, {graph.num_edges} edges\n")
        for line in edge_list_lines(graph, weights=weights):
            handle.write(line + "\n")


def read_edge_list(path: PathLike, name: str = "") -> Graph:
    """Read an edge-list file into a :class:`Graph`."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        return parse_edge_list_lines(handle, name=name or path.stem)


def _json_id(node):
    """A node id as JSON stores it: ints stay ints, everything else str.

    Applied per endpoint — coercing *both* endpoints of a mixed int/str
    edge to str (as an earlier version did) desynchronized the edge list
    from the node list and broke round-trip fingerprints.
    """
    return node if isinstance(node, int) and not isinstance(node, bool) else str(node)


def write_json(graph: Graph, path: PathLike) -> None:
    """Write *graph* as adjacency JSON (stable key order)."""
    payload = {
        "name": graph.name,
        "nodes": sorted((_json_id(u) for u in graph.nodes()), key=str),
        "edges": sorted(
            ([_json_id(u), _json_id(v), w] for u, v, w in graph.weighted_edges()),
            key=lambda edge: (str(edge[0]), str(edge[1]), edge[2]),
        ),
    }
    Path(path).write_text(json.dumps(payload, indent=1), encoding="utf-8")


def read_json(path: PathLike) -> Graph:
    """Read adjacency JSON written by :func:`write_json`.

    An empty (or whitespace-only) file reads as an empty graph named
    after the file, matching :func:`read_edge_list` on a bare header.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    if not text.strip():
        return Graph(name=path.stem)
    payload = json.loads(text)
    graph = Graph(name=payload.get("name", ""))
    for node in payload.get("nodes", ()):
        graph.add_node(node)
    graph.add_edges(
        (u, v, float(w)) for u, v, w in payload.get("edges", ())
    )
    return graph
