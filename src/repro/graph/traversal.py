"""Breadth-first traversal and connectivity.

Foundation for the distance-based metrics: single-source BFS levels,
connected components, and giant-component extraction (every validation
metric in the literature is computed on the giant component of the map).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set

from .graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "is_connected",
    "giant_component",
]

Node = Hashable


def bfs_distances(graph: Graph, source: Node, cutoff: Optional[int] = None) -> Dict[Node, int]:
    """Hop distances from *source* to every reachable node.

    *cutoff* bounds the search depth (distances beyond it are omitted),
    which keeps neighborhood queries cheap on large graphs.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    distances: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d = distances[u]
        if cutoff is not None and d >= cutoff:
            continue
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = d + 1
                queue.append(v)
    return distances


def bfs_tree(graph: Graph, source: Node) -> Dict[Node, Node]:
    """BFS predecessor map: child → parent, rooted at *source*.

    The source itself is absent from the mapping.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    parent: Dict[Node, Node] = {}
    visited: Set[Node] = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in visited:
                visited.add(v)
                parent[v] = u
                queue.append(v)
    return parent


def connected_components(graph: Graph) -> List[Set[Node]]:
    """Connected components, largest first."""
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: Set[Node] = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in component:
                    component.add(v)
                    queue.append(v)
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.num_nodes == 0:
        return True
    first = next(iter(graph.nodes()))
    return len(bfs_distances(graph, first)) == graph.num_nodes


def giant_component(graph: Graph) -> Graph:
    """Subgraph induced on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return Graph(name=graph.name)
    return graph.subgraph(components[0])
