"""Breadth-first traversal and connectivity.

Foundation for the distance-based metrics: single-source BFS levels,
connected components, and giant-component extraction (every validation
metric in the literature is computed on the giant component of the map).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set

import numpy as np

from .csr import resolve_backend
from .graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_tree",
    "connected_components",
    "is_connected",
    "giant_component",
]

Node = Hashable


def bfs_distances(graph: Graph, source: Node, cutoff: Optional[int] = None) -> Dict[Node, int]:
    """Hop distances from *source* to every reachable node.

    *cutoff* bounds the search depth (distances beyond it are omitted),
    which keeps neighborhood queries cheap on large graphs.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    distances: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        d = distances[u]
        if cutoff is not None and d >= cutoff:
            continue
        for v in graph.neighbors(u):
            if v not in distances:
                distances[v] = d + 1
                queue.append(v)
    return distances


def bfs_tree(graph: Graph, source: Node) -> Dict[Node, Node]:
    """BFS predecessor map: child → parent, rooted at *source*.

    The source itself is absent from the mapping.
    """
    if not graph.has_node(source):
        raise KeyError(f"source {source!r} not in graph")
    parent: Dict[Node, Node] = {}
    visited: Set[Node] = {source}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in graph.neighbors(u):
            if v not in visited:
                visited.add(v)
                parent[v] = u
                queue.append(v)
    return parent


def _components_csr(graph: Graph) -> List[Set[Node]]:
    """Component sets via frontier-array BFS sweeps over the CSR view.

    Seeds are visited in node-iteration order (like the dict BFS), so the
    discovery order — and therefore the stable largest-first sort — matches
    the python backend.
    """
    view = graph.csr()
    n = view.num_nodes
    labels = np.full(n, -1, dtype=np.int64)
    components: List[Set[Node]] = []
    nodes = view.nodes
    for start in range(n):
        if labels[start] >= 0:
            continue
        label = len(components)
        labels[start] = label
        frontier = np.array([start], dtype=np.int64)
        member_ids: Set[Node] = {nodes[start]}
        while frontier.size:
            block = view.neighbor_block(frontier)
            block = block[labels[block] < 0]
            if block.size == 0:
                break
            labels[block] = label
            frontier = np.unique(block)
            member_ids.update(nodes[i] for i in frontier.tolist())
        components.append(member_ids)
    components.sort(key=len, reverse=True)
    return components


def connected_components(graph: Graph, backend: str = "auto") -> List[Set[Node]]:
    """Connected components, largest first."""
    if resolve_backend(backend, graph.num_nodes) == "csr":
        return _components_csr(graph)
    seen: Set[Node] = set()
    components: List[Set[Node]] = []
    for start in graph.nodes():
        if start in seen:
            continue
        component: Set[Node] = {start}
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v not in component:
                    component.add(v)
                    queue.append(v)
        seen |= component
        components.append(component)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: Graph, backend: str = "auto") -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    if graph.num_nodes == 0:
        return True
    if resolve_backend(backend, graph.num_nodes) == "csr":
        view = graph.csr()
        return int((view.bfs_distances(0) >= 0).sum()) == view.num_nodes
    first = next(iter(graph.nodes()))
    return len(bfs_distances(graph, first)) == graph.num_nodes


def giant_component(graph: Graph, backend: str = "auto") -> Graph:
    """Subgraph induced on the largest connected component."""
    components = connected_components(graph, backend=backend)
    if not components:
        return Graph(name=graph.name)
    return graph.subgraph(components[0])
