"""Interoperability with networkx.

The toolkit's own algorithms never depend on networkx, but downstream users
often want to hand a generated topology to the wider ecosystem, and our test
suite uses networkx as an independent oracle.  Import of networkx is
deferred so :mod:`repro` works without it installed.
"""

from __future__ import annotations

from .graph import Graph

__all__ = ["to_networkx", "from_networkx"]


def to_networkx(graph: Graph):
    """Convert to a ``networkx.Graph`` with ``weight`` edge attributes."""
    import networkx as nx

    out = nx.Graph(name=graph.name)
    out.add_nodes_from(graph.nodes())
    out.add_weighted_edges_from(graph.weighted_edges())
    return out


def from_networkx(nx_graph, name: str = "") -> Graph:
    """Convert a ``networkx.Graph`` (or MultiGraph) into a :class:`Graph`.

    Parallel edges in a MultiGraph accumulate weight, matching the
    bandwidth-reinforcement semantics; self-loops are rejected because
    :class:`Graph` forbids them.
    """
    graph = Graph(name=name or str(getattr(nx_graph, "name", "")))
    for node in nx_graph.nodes():
        graph.add_node(node)
    if nx_graph.is_multigraph():
        edge_iter = ((u, v, data) for u, v, data in nx_graph.edges(data=True))
    else:
        edge_iter = nx_graph.edges(data=True)
    for u, v, data in edge_iter:
        weight = float(data.get("weight", 1.0)) if data else 1.0
        graph.add_edge(u, v, weight=weight)
    return graph
