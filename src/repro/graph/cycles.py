"""Short-cycle counting (experiment T2).

Bianconi–Caldarelli–Capocci measured how the number of cycles of length
h = 3, 4, 5 in the AS map scales with network size, ``N_h ~ N^{ξ(h)}``, with
ξ(3) ≈ 1.45, ξ(4) ≈ 2.07, ξ(5) ≈ 2.45.  Reproducing those exponents is a
stringent test of a model's higher-order loop structure.

Counting uses closed-walk trace identities over the sparse adjacency matrix
(exact, no sampling):

* ``C3 = tr(A³)/6``
* ``C4 = [tr(A⁴) − 2m − 2 Σ_i d_i(d_i−1)] / 8``
* ``C5 = [tr(A⁵) − 30·C3 − 10 Σ_i t_i (d_i − 2)] / 10``

where ``m`` is the edge count, ``d_i`` the degree and ``t_i`` the number of
triangles through node i.  The identities hold on simple undirected graphs;
edge weights are ignored.
"""

from __future__ import annotations

from typing import Dict, Hashable, Tuple

import numpy as np
from scipy import sparse

from .graph import Graph

__all__ = ["count_cycles", "cycle_counts_3_4_5", "adjacency_matrix"]

Node = Hashable


def adjacency_matrix(graph: Graph) -> Tuple[sparse.csr_matrix, Dict[Node, int]]:
    """Sparse 0/1 adjacency matrix of the simple topology plus the node→row map."""
    index = {node: i for i, node in enumerate(graph.nodes())}
    n = len(index)
    rows = []
    cols = []
    for u, v in graph.edges():
        i, j = index[u], index[v]
        rows.extend((i, j))
        cols.extend((j, i))
    data = np.ones(len(rows), dtype=np.float64)
    matrix = sparse.csr_matrix((data, (rows, cols)), shape=(n, n))
    return matrix, index


def cycle_counts_3_4_5(graph: Graph) -> Dict[int, int]:
    """Exact counts of 3-, 4-, and 5-cycles in *graph*.

    Returns ``{3: C3, 4: C4, 5: C5}``.  Cost is dominated by one sparse
    matrix square and one sparse product, fine up to a few tens of
    thousands of edges.
    """
    n = graph.num_nodes
    if n == 0:
        return {3: 0, 4: 0, 5: 0}
    a, _ = adjacency_matrix(graph)
    m = graph.num_edges
    degrees = np.asarray(a.sum(axis=1)).ravel()

    a2 = (a @ a).tocsr()
    # tr(A³) = Σ_ij A_ij (A²)_ij — avoids forming A³ explicitly.
    tr_a3 = float(a.multiply(a2).sum())
    c3 = round(tr_a3 / 6.0)

    # tr(A⁴) = ‖A²‖_F² because A is symmetric.
    tr_a4 = float(a2.multiply(a2).sum())
    path2 = float(np.sum(degrees * (degrees - 1.0)))
    c4 = round((tr_a4 - 2.0 * m - 2.0 * path2) / 8.0)

    # tr(A⁵) = Σ_ij (A²)_ij (A³)_ij = Σ_ij (A²)_ij (A²·A)_ij.
    a3 = (a2 @ a).tocsr()
    tr_a5 = float(a2.multiply(a3).sum())
    # Triangles through node i: (A³)_ii / 2.
    t_i = a3.diagonal() / 2.0
    correction = float(np.sum(t_i * (degrees - 2.0)))
    c5 = round((tr_a5 - 30.0 * c3 - 10.0 * correction) / 10.0)

    return {3: int(c3), 4: int(c4), 5: int(max(c5, 0))}


def count_cycles(graph: Graph, length: int) -> int:
    """Exact count of simple cycles of the given *length* (3, 4, or 5)."""
    if length not in (3, 4, 5):
        raise ValueError("only cycle lengths 3, 4 and 5 are supported")
    return cycle_counts_3_4_5(graph)[length]
