"""Distributional distances between two topologies.

The scalar battery (``repro.core.metrics``) compares point statistics; the
functions here compare whole *distributions*, the finer-grained instrument
used when two models score similarly:

* degree-distribution KS distance;
* clustering-spectrum distance (mean |Δc(k)| over shared log bins);
* path-length distribution total-variation distance;
* core-profile distance (L1 over shell occupancies, normalized).

All distances are in [0, 1]-ish ranges and 0 for identical graphs, so they
compose into dashboards without per-metric scaling.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from ..stats.distributions import ks_distance
from ..stats.rng import SeedLike
from .clustering import clustering_by_degree
from .cores import core_profile
from .graph import Graph
from .shortest_paths import path_length_distribution
from .traversal import giant_component

__all__ = [
    "degree_distribution_distance",
    "clustering_spectrum_distance",
    "path_length_distance",
    "core_profile_distance",
    "similarity_report",
]


def degree_distribution_distance(a: Graph, b: Graph) -> float:
    """Two-sample KS distance between the degree distributions."""
    degrees_a = list(a.degrees().values())
    degrees_b = list(b.degrees().values())
    return ks_distance(degrees_a, degrees_b)


def clustering_spectrum_distance(a: Graph, b: Graph) -> float:
    """Mean |c_a(k) − c_b(k)| over degrees present in both graphs.

    Returns NaN when the graphs share no degree with ≥ 2 (nothing to
    compare) — callers should treat that as incomparable, not as zero.
    """
    spec_a = clustering_by_degree(a)
    spec_b = clustering_by_degree(b)
    shared = sorted(set(spec_a) & set(spec_b))
    if not shared:
        return float("nan")
    return sum(abs(spec_a[k] - spec_b[k]) for k in shared) / len(shared)


def path_length_distance(
    a: Graph, b: Graph, max_sources: Optional[int] = 300, seed: SeedLike = 0
) -> float:
    """Total-variation distance between hop-count distributions.

    Measured on giant components with sampled BFS roots for scalability.
    """
    dist_a = dict(path_length_distribution(giant_component(a), max_sources, seed).probabilities())
    dist_b = dict(path_length_distribution(giant_component(b), max_sources, seed).probabilities())
    support = set(dist_a) | set(dist_b)
    if not support:
        return 0.0
    return 0.5 * sum(abs(dist_a.get(d, 0.0) - dist_b.get(d, 0.0)) for d in support)


def core_profile_distance(a: Graph, b: Graph) -> float:
    """Normalized L1 distance between k-shell occupancy profiles."""
    prof_a = core_profile(a)
    prof_b = core_profile(b)
    n_a = max(sum(prof_a.shell_sizes.values()), 1)
    n_b = max(sum(prof_b.shell_sizes.values()), 1)
    shells = set(prof_a.shell_sizes) | set(prof_b.shell_sizes)
    return 0.5 * sum(
        abs(prof_a.shell_sizes.get(k, 0) / n_a - prof_b.shell_sizes.get(k, 0) / n_b)
        for k in shells
    )


def similarity_report(
    a: Graph, b: Graph, max_sources: Optional[int] = 300, seed: SeedLike = 0
) -> Dict[str, float]:
    """All four distances as one name → value dict."""
    return {
        "degree_ks": degree_distribution_distance(a, b),
        "clustering_spectrum": clustering_spectrum_distance(a, b),
        "path_length_tv": path_length_distance(a, b, max_sources=max_sources, seed=seed),
        "core_profile_l1": core_profile_distance(a, b),
    }
