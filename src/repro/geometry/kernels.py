"""Distance kernels: the probability factors geography contributes to link
formation.

Two families cover the geographic generators in the suite:

* :class:`WaxmanKernel` — ``P(d) = beta * exp(-d / (alpha * L))`` with L the
  plane's maximum distance (Waxman 1988);
* :class:`SizeScaledKernel` — ``P(d) = exp(-d / d_c)`` with a cutoff
  ``d_c = w_i * w_j / (kappa * W)`` that grows with the two endpoints'
  resources, so only large ASes afford long-haul links (the Serrano et al.
  form).
"""

from __future__ import annotations

import math
from typing import Protocol

__all__ = ["DistanceKernel", "WaxmanKernel", "SizeScaledKernel", "NullKernel"]


class DistanceKernel(Protocol):
    """Anything that maps a distance (plus context) to a probability."""

    def probability(self, distance: float) -> float:
        """Link-acceptance probability at *distance*."""
        ...


class NullKernel:
    """Geography-free kernel: always accepts.  Used for the "without
    distance constraints" arms of ablations."""

    def probability(self, distance: float) -> float:
        """Always 1."""
        return 1.0


class WaxmanKernel:
    """Classic Waxman kernel ``beta * exp(-d / (alpha * L))``.

    *alpha* controls the decay length relative to the plane scale *L*;
    *beta* scales overall density.  Both must be in (0, 1].
    """

    def __init__(self, alpha: float = 0.15, beta: float = 0.4, scale: float = math.sqrt(2.0)):
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if not 0 < beta <= 1:
            raise ValueError("beta must be in (0, 1]")
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.alpha = alpha
        self.beta = beta
        self.scale = scale

    def probability(self, distance: float) -> float:
        """``beta * exp(-d / (alpha * scale))``."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        return self.beta * math.exp(-distance / (self.alpha * self.scale))


class SizeScaledKernel:
    """Resource-scaled exponential kernel ``exp(-d / d_c)`` with
    ``d_c = w_i * w_j / (kappa * W_total)``.

    Small peers see a tiny cutoff and are confined to local links; a pair of
    giants can span the plane.  *kappa* is the cost of users per unit
    distance — higher kappa makes every link shorter.
    """

    def __init__(self, kappa: float):
        if kappa <= 0:
            raise ValueError("kappa must be positive")
        self.kappa = kappa

    def cutoff(self, w_i: float, w_j: float, w_total: float) -> float:
        """Characteristic distance d_c for endpoint sizes w_i, w_j."""
        if w_total <= 0:
            raise ValueError("w_total must be positive")
        return w_i * w_j / (self.kappa * w_total)

    def probability_for(
        self, distance: float, w_i: float, w_j: float, w_total: float
    ) -> float:
        """``exp(-d / d_c(w_i, w_j))``; 0 when the cutoff underflows."""
        if distance < 0:
            raise ValueError("distance must be non-negative")
        d_c = self.cutoff(w_i, w_j, w_total)
        if d_c <= 0:
            return 0.0
        exponent = -distance / d_c
        if exponent < -700.0:  # exp underflow guard
            return 0.0
        return math.exp(exponent)

    def probability(self, distance: float) -> float:
        """Context-free form is undefined for this kernel — use
        :meth:`probability_for`."""
        raise TypeError("SizeScaledKernel needs endpoint sizes; call probability_for")
