"""2-D embedding plane for distance-constrained generators.

Router- and AS-level generators with geography (Waxman, BRITE-style,
Serrano-with-distance) place nodes on a bounded square and weight candidate
links by Euclidean distance.  :class:`Plane` owns the point store and the
distance conventions so every generator treats geometry identically.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..stats.rng import SeedLike, make_rng

__all__ = ["Point", "Plane"]

Node = Hashable


@dataclass(frozen=True)
class Point:
    """A position on the plane."""

    x: float
    y: float

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance."""
        return math.hypot(self.x - other.x, self.y - other.y)


class Plane:
    """Square [0, side]² holding node positions.

    ``torus=True`` wraps distances around the edges, removing boundary
    artifacts in scaling studies (each coordinate difference is reduced
    modulo side/2).
    """

    def __init__(self, side: float = 1.0, torus: bool = False):
        if side <= 0:
            raise ValueError("side must be positive")
        self.side = float(side)
        self.torus = torus
        self._positions: Dict[Node, Point] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, node: Node) -> bool:
        return node in self._positions

    def place(self, node: Node, x: float, y: float) -> None:
        """Pin *node* at (x, y); coordinates must lie inside the square."""
        if not (0 <= x <= self.side and 0 <= y <= self.side):
            raise ValueError(f"({x}, {y}) outside [0, {self.side}]²")
        self._positions[node] = Point(x, y)

    def place_uniform(self, node: Node, rng_seed: SeedLike = None) -> Point:
        """Place *node* uniformly at random; returns the point."""
        rng = make_rng(rng_seed)
        point = Point(rng.random() * self.side, rng.random() * self.side)
        self._positions[node] = point
        return point

    def position(self, node: Node) -> Point:
        """Position of *node* (KeyError if never placed)."""
        return self._positions[node]

    def positions(self) -> Dict[Node, Point]:
        """Copy of the node → point mapping."""
        return dict(self._positions)

    def distance(self, u: Node, v: Node) -> float:
        """Distance between two placed nodes under the plane's metric."""
        a = self._positions[u]
        b = self._positions[v]
        dx = abs(a.x - b.x)
        dy = abs(a.y - b.y)
        if self.torus:
            dx = min(dx, self.side - dx)
            dy = min(dy, self.side - dy)
        return math.hypot(dx, dy)

    @property
    def max_distance(self) -> float:
        """Largest possible distance between two points on this plane."""
        if self.torus:
            return self.side * math.sqrt(2.0) / 2.0
        return self.side * math.sqrt(2.0)

    def nearest(self, node: Node, candidates: Iterable[Node]) -> Optional[Node]:
        """Closest candidate to *node* (None when candidates is empty)."""
        best: Optional[Node] = None
        best_distance = math.inf
        for other in candidates:
            d = self.distance(node, other)
            if d < best_distance:
                best, best_distance = other, d
        return best
