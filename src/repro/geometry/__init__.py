"""Spatial substrate: the embedding plane, fractal point sets and distance
kernels used by geography-aware generators."""

from .fractal import (
    FractalBoxSet,
    box_counting_dimension,
    fractal_points,
    uniform_points,
)
from .kernels import DistanceKernel, NullKernel, SizeScaledKernel, WaxmanKernel
from .plane import Plane, Point

__all__ = [
    "Plane",
    "Point",
    "FractalBoxSet",
    "fractal_points",
    "uniform_points",
    "box_counting_dimension",
    "DistanceKernel",
    "NullKernel",
    "WaxmanKernel",
    "SizeScaledKernel",
]
