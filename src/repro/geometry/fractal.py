"""Fractal point sets.

Yook–Jeong–Barabási measured that internet routers are laid out on a fractal
set of dimension D_f ≈ 1.5, and geography-aware AS models inherit that
placement.  This module generates such sets with a stochastic box fractal
(multiplicative cascade): the square is recursively split into 2×2 child
boxes, each child independently survives with probability ``p = 2^(D_f - 2)``
(at least one survivor is forced so the cascade never dies), and sample
points descend the surviving tree uniformly before being jittered inside
their final box.

The expected box-counting dimension of the limiting set is
``D = 2 + log2(p)``, so ``p = 2^(D-2)`` yields dimension D; tests verify the
box-counting slope empirically.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..stats.rng import SeedLike, make_rng
from .plane import Plane, Point

__all__ = ["FractalBoxSet", "fractal_points", "uniform_points", "box_counting_dimension"]

BoxPath = Tuple[int, ...]


class FractalBoxSet:
    """Lazy stochastic box-fractal over the unit square, scaled to *side*.

    The surviving-children decision for each visited box is drawn once and
    memoized, so all sampled points share one consistent fractal support.
    """

    def __init__(
        self,
        dimension: float = 1.5,
        side: float = 1.0,
        levels: int = 8,
        seed: SeedLike = None,
    ):
        if not 0.0 < dimension <= 2.0:
            raise ValueError("dimension must be in (0, 2]")
        if levels < 1:
            raise ValueError("levels must be >= 1")
        self.dimension = dimension
        self.side = float(side)
        self.levels = levels
        self._rng = make_rng(seed)
        self._survival = 2.0 ** (dimension - 2.0)
        self._children: Dict[BoxPath, List[int]] = {}

    def _surviving_children(self, path: BoxPath) -> List[int]:
        """Memoized surviving child quadrants (0..3) for the box at *path*."""
        cached = self._children.get(path)
        if cached is not None:
            return cached
        kept = [q for q in range(4) if self._rng.random() < self._survival]
        if not kept:  # force survival so the cascade never goes extinct
            kept = [self._rng.randrange(4)]
        self._children[path] = kept
        return kept

    def sample_point(self) -> Point:
        """Draw one point on the fractal support."""
        x0, y0, size = 0.0, 0.0, self.side
        path: BoxPath = ()
        for _ in range(self.levels):
            kept = self._surviving_children(path)
            quadrant = kept[self._rng.randrange(len(kept))]
            size /= 2.0
            if quadrant & 1:
                x0 += size
            if quadrant & 2:
                y0 += size
            path = path + (quadrant,)
        # Uniform jitter inside the terminal box keeps points distinct.
        return Point(x0 + self._rng.random() * size, y0 + self._rng.random() * size)

    def sample(self, count: int) -> List[Point]:
        """Draw *count* points on the fractal support."""
        return [self.sample_point() for _ in range(count)]


def fractal_points(
    count: int,
    dimension: float = 1.5,
    side: float = 1.0,
    levels: int = 8,
    seed: SeedLike = None,
) -> List[Point]:
    """Convenience wrapper: *count* points from a fresh :class:`FractalBoxSet`."""
    return FractalBoxSet(dimension=dimension, side=side, levels=levels, seed=seed).sample(count)


def uniform_points(count: int, side: float = 1.0, seed: SeedLike = None) -> List[Point]:
    """*count* points uniform on the square — the D_f = 2 baseline."""
    rng = make_rng(seed)
    return [Point(rng.random() * side, rng.random() * side) for _ in range(count)]


def box_counting_dimension(
    points: Sequence[Point], side: float = 1.0, min_level: int = 1, max_level: int = 6
) -> float:
    """Empirical box-counting dimension of *points*.

    Counts occupied boxes at dyadic scales ``side / 2^level`` and fits the
    slope of log(count) against log(1/scale) by least squares.
    """
    if len(points) < 2:
        raise ValueError("need at least two points")
    if not 0 < min_level < max_level:
        raise ValueError("need 0 < min_level < max_level")
    xs: List[float] = []
    ys: List[float] = []
    for level in range(min_level, max_level + 1):
        boxes = 1 << level
        cell = side / boxes
        occupied = {
            (min(int(p.x / cell), boxes - 1), min(int(p.y / cell), boxes - 1))
            for p in points
        }
        xs.append(math.log(boxes))
        ys.append(math.log(len(occupied)))
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx
