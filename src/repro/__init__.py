"""repro — an internet topology modeling toolkit.

Generate AS-level topologies with every classic model family, measure them
with the full validation battery, compare them against a reference map, and
run inter-domain economics on top.

Quickstart::

    import repro

    graph = repro.generate("glp", n=3000, seed=7)
    print(repro.summarize(graph))
    result = repro.compare(graph, repro.reference_as_map(3000))
    print(result)

Subpackages:

* :mod:`repro.graph` — graph engine and metric algorithms (from scratch);
* :mod:`repro.stats` — power-law fitting, growth fitting, sampling;
* :mod:`repro.geometry` — planes, fractal point sets, distance kernels;
* :mod:`repro.environment` — user pools and growth schedules;
* :mod:`repro.generators` — the 12-family topology generator suite;
* :mod:`repro.economics` — relationships, valley-free routing, markets;
* :mod:`repro.datasets` — frozen reference AS map and growth timeline;
* :mod:`repro.core` — metric battery, comparison, calibration, registry.
"""

from __future__ import annotations

from .core.compare import ComparisonResult, compare_graphs, compare_summaries
from .core.metrics import TopologySummary, summarize
from .core.registry import available_models, make_generator
from .datasets.asmap import reference_as_map
from .graph.graph import Graph
from .stats.rng import SeedLike

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Graph",
    "generate",
    "summarize",
    "compare",
    "available_models",
    "make_generator",
    "reference_as_map",
    "TopologySummary",
    "ComparisonResult",
    "compare_summaries",
    "compare_graphs",
]


def generate(model: str, n: int, seed: SeedLike = None, **params) -> Graph:
    """Generate a topology from a registered *model* name.

    >>> g = generate("barabasi-albert", n=100, seed=1, m=2)
    >>> g.num_nodes
    100
    """
    return make_generator(model, **params).generate(n, seed=seed)


def compare(model_graph: Graph, target_graph: Graph, seed: int = 0) -> ComparisonResult:
    """Compare a model topology against a target over the default battery."""
    return compare_graphs(model_graph, target_graph, seed=seed)
