"""A small stdlib client for the topology service.

Wraps :mod:`urllib.request` with JSON encode/decode and error mapping:
non-2xx responses raise :class:`ServeClientError` carrying the HTTP
status and the server's ``error`` message, so callers (CLI, load
generator, tests) never parse bodies twice.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Sequence

__all__ = ["ServeClient", "ServeClientError"]


class ServeClientError(RuntimeError):
    """A non-2xx response from the service."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """Typed calls against a running :class:`~repro.serve.TopologyServer`."""

    def __init__(self, base_url: str, timeout: float = 120.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------ transport

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[Dict[str, Any]] = None,
    ) -> Any:
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                raw = response.read().decode("utf-8")
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                message = json.loads(raw).get("error", raw)
            except (json.JSONDecodeError, AttributeError):
                message = raw
            raise ServeClientError(exc.code, str(message))
        except urllib.error.URLError as exc:
            raise ServeClientError(0, f"cannot reach {self.base_url}: {exc.reason}")
        if content_type.startswith("application/json"):
            return json.loads(raw)
        return raw

    # -------------------------------------------------------------- service

    def health(self) -> Dict[str, Any]:
        """``GET /health``."""
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, Any]:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics_text(self) -> str:
        """``GET /metrics`` — Prometheus text exposition."""
        return self._request("GET", "/metrics")

    # ------------------------------------------------------------- requests

    def summarize(
        self,
        model: str,
        n: int,
        seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
        groups: Optional[Sequence[str]] = None,
        replicate: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``POST /summarize`` — metric-group values for one topology."""
        body: Dict[str, Any] = {"model": model, "n": n}
        if replicate is not None:
            body["replicate"] = replicate
        else:
            body["seed"] = seed
        if params:
            body["params"] = params
        if groups:
            body["groups"] = list(groups)
        return self._request("POST", "/summarize", body)

    def generate(
        self,
        model: str,
        n: int,
        seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """``POST /generate`` — publish (or probe) the shared snapshot."""
        body: Dict[str, Any] = {"model": model, "n": n, "seed": seed}
        if params:
            body["params"] = params
        return self._request("POST", "/generate", body)

    def compare(
        self,
        model: str,
        n: int,
        seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """``POST /compare`` — full-battery score vs the reference map."""
        body: Dict[str, Any] = {"model": model, "n": n, "seed": seed}
        if params:
            body["params"] = params
        return self._request("POST", "/compare", body)

    # --------------------------------------------------------------- worlds

    def put_world(
        self,
        world: str,
        model: str,
        n: int,
        seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
        checkpoint_every: Optional[int] = None,
    ) -> Dict[str, Any]:
        """``PUT /worlds/<id>`` — grow a named world into its store."""
        body: Dict[str, Any] = {"model": model, "n": n, "seed": seed}
        if params:
            body["params"] = params
        if checkpoint_every is not None:
            body["checkpoint_every"] = checkpoint_every
        return self._request("PUT", f"/worlds/{world}", body)

    def worlds(self) -> Dict[str, Any]:
        """``GET /worlds`` — list named worlds."""
        return self._request("GET", "/worlds")

    def world_info(self, world: str) -> Dict[str, Any]:
        """``GET /worlds/<id>`` — one world's store info."""
        return self._request("GET", f"/worlds/{world}")

    def world_summary(self, world: str) -> Dict[str, Any]:
        """``GET /worlds/<id>/summary`` — the size group from the mmap view."""
        return self._request("GET", f"/worlds/{world}/summary")

    def world_summarize(
        self, world: str, seed: int = 0, groups: Optional[Sequence[str]] = None
    ) -> Dict[str, Any]:
        """``GET /worlds/<id>/summarize`` — full metric groups on the warm pool."""
        path = f"/worlds/{world}/summarize?seed={seed}"
        if groups:
            path += "&groups=" + ",".join(groups)
        return self._request("GET", path)
