"""Batching dispatcher: the serving layer's perf core.

A :class:`ServeDispatcher` owns everything long-lived about the service:

* a **warm** :class:`~repro.core.battery.WorkerPool` — spawned once at
  startup and reused for every request, so each worker process keeps its
  per-process transport attach cache hot and a steady-state request never
  re-imports, re-forks, or re-pickles anything but its task dict;
* a persistent :class:`~repro.core.cache.ResultCache` and
  :class:`~repro.core.transport.SnapshotSpool` under one service root, so
  repeat requests are cache reads and repeat topologies are mmap attaches
  with **zero generations**;
* a bounded job queue drained by dispatcher threads, which rejects
  excess load (:class:`ServeBusy` → HTTP 503) instead of building an
  unbounded backlog;
* a **request coalescer**: in-flight requests are content-addressed on
  the same canonical payloads as battery cache cells
  (:func:`repro.core.battery.cell_payload`), so a thundering herd of
  identical ``summarize(model, n, seed)`` calls collapses onto one
  computation whose result fans out to every waiter
  (``serve.coalesce.hits`` counts the collapsed arrivals);
* a second, finer coalescer on topology **generations**
  (:func:`repro.core.battery.generation_payload` keys), so two distinct
  requests needing the same not-yet-spooled topology trigger one
  generation, not two.

Work reaching the pool is micro-batched: all of a request's pending
metric groups ride one ``measure`` task against one shared attached
view, never one task per group.

Startup calls :meth:`SnapshotSpool.reap_staging`, so staging directories
orphaned by a killed server process are removed the next time the
service starts (not only on mid-run pool rebuilds).
"""

from __future__ import annotations

import queue
import re
import shutil
import tempfile
import threading
import time
from concurrent.futures import BrokenExecutor, Future
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..core.battery import (
    WorkerPool,
    _identity,
    _summarize_target,
    cell_payload,
    generation_payload,
)
from ..core.cache import ResultCache, canonical_key
from ..core.compare import compare_summaries
from ..core.journal import resolve_journal
from ..core.metrics import ALL_METRIC_GROUPS, METRIC_GROUPS, TopologySummary
from ..core.registry import make_generator
from ..core.transport import SnapshotSpool, handle_for_snapshot, resolve_mp_context
from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer
from ..stats.rng import derive_seed
from ..store.sqlite import StoreError
from ..store.store import GraphStore
from ..store.world import StoredTopologyGenerator

__all__ = ["ServeDispatcher", "ServeBusy", "ServeError", "WORLD_ID_PATTERN"]


class ServeError(ValueError):
    """A request the service understood enough to reject (HTTP 400)."""


class ServeBusy(RuntimeError):
    """The bounded job queue is full; shed load (HTTP 503)."""


#: Valid world ids: path-safe, no traversal, at most 64 characters.
WORLD_ID_PATTERN = re.compile(r"[A-Za-z0-9][A-Za-z0-9._-]{0,63}")

#: Battery summarize defaults, mirrored so served cells are bit- and
#: key-identical with ``run_battery`` cells for the same inputs.
DEFAULT_SUM_PARAMS = {
    "path_sample_threshold": 1500,
    "path_samples": 400,
    "min_tail": 50,
}

DEFAULT_QUEUE_LIMIT = 64


class _Flight:
    """One in-flight request; later identical arrivals share the future."""

    __slots__ = ("future", "waiters")

    def __init__(self) -> None:
        self.future: Future = Future()
        self.waiters = 1


@dataclass
class _SummarizePlan:
    """A normalized summarize request: resolved generator plus the exact
    cache-cell keys the battery would use for the same inputs."""

    label: str
    generator: Any
    identity: str
    cache_params: Dict[str, Any]
    n: int
    seed: int
    groups: Tuple[str, ...]
    cells: Dict[str, Tuple[str, Dict[str, Any]]] = field(default_factory=dict)


def _coerce_int(value: Any, name: str) -> int:
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServeError(f"{name} must be an integer, got {value!r}")


class ServeDispatcher:
    """The service's request broker (see module docstring).

    Parameters
    ----------
    jobs:
        Warm worker-pool size (processes, spawned once at startup).
    root:
        Service state directory — result cache cells under ``cells/``,
        snapshot spool under ``snapshots/``, named worlds under
        ``worlds/``.  A private temp directory (removed at shutdown) when
        omitted.
    queue_limit:
        Bounded job-queue depth; submits beyond it raise
        :class:`ServeBusy`.
    threads:
        Dispatcher threads draining the queue (default: ``jobs``).
    unit_timeout / retries:
        Per-task containment, as in the battery runner: a hung or broken
        pool is rebuilt (reaping spool staging) and the task retried.
    """

    def __init__(
        self,
        jobs: int = 2,
        root: Union[None, str, Path] = None,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        threads: Optional[int] = None,
        mp_context=None,
        journal=None,
        backend: str = "auto",
        engine: str = "auto",
        unit_timeout: Optional[float] = None,
        retries: int = 1,
        start: bool = True,
        prewarm: bool = True,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        self._owns_root = root is None
        self.root = Path(
            tempfile.mkdtemp(prefix="repro-serve-") if root is None else root
        )
        self.cache = ResultCache(self.root / "cells")
        self.spool = SnapshotSpool(self.root / "snapshots")
        # Satellite of ISSUE 10: a killed server leaves half-published
        # staging dirs behind; reap them at every service start, not only
        # on mid-run pool rebuilds.
        self.reaped_at_start = self.spool.reap_staging()
        self.worlds_dir = self.root / "worlds"
        self.worlds_dir.mkdir(parents=True, exist_ok=True)
        self.backend = backend
        self.engine = engine
        self.unit_timeout = unit_timeout
        self.retries = retries
        self._sum_params = dict(DEFAULT_SUM_PARAMS, backend=backend)
        self.pool = WorkerPool(jobs, resolve_mp_context(mp_context))
        self.journal = resolve_journal(journal)
        self.run_id = self.journal.begin_run(
            {"serve": True, "jobs": jobs, "root": str(self.root)}
        )
        self.journal.emit(
            "serve_start", jobs=jobs, queue_limit=queue_limit,
            reaped_staging=self.reaped_at_start,
        )
        self.started = time.monotonic()
        self._lock = threading.Lock()
        self._inflight: Dict[str, _Flight] = {}
        self._gen_inflight: Dict[str, Future] = {}
        self._queue: "queue.Queue" = queue.Queue(maxsize=queue_limit)
        self._threads: List[threading.Thread] = []
        self._stopped = False
        thread_count = threads if threads is not None else max(2, jobs)
        if prewarm:
            self._prewarm()
        if start:
            self.start(thread_count)
        else:
            self._thread_count = thread_count

    # ------------------------------------------------------------ lifecycle

    def _prewarm(self) -> None:
        """Force the pool's worker processes to exist before traffic.

        Spawning here — before any dispatcher or HTTP thread runs — keeps
        process creation off the request path entirely; ``import os`` has
        already happened in the parent, so the submitted probe is free.
        """
        import os

        futures = [self.pool.executor.submit(os.getpid) for _ in range(self.pool.jobs)]
        workers = {f.result() for f in futures}
        get_registry().gauge("serve.workers").set(len(workers))

    def start(self, threads: Optional[int] = None) -> None:
        """Start the dispatcher threads (idempotent)."""
        if self._threads:
            return
        count = threads if threads is not None else getattr(self, "_thread_count", 2)
        for i in range(count):
            thread = threading.Thread(
                target=self._drain, name=f"serve-dispatch-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def shutdown(self) -> None:
        """Stop dispatcher threads, release the pool, close the journal."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=5)
        self.pool.shutdown(wait=True)
        self.journal.emit("serve_stop", uptime=round(self.uptime, 3))
        self.journal.close()
        if self._owns_root:
            shutil.rmtree(self.root, ignore_errors=True)

    @property
    def uptime(self) -> float:
        """Seconds since the dispatcher started."""
        return time.monotonic() - self.started

    # ----------------------------------------------------- submit / coalesce

    def submit(self, op: str, params: Optional[Mapping[str, Any]] = None) -> Future:
        """Enqueue one request; returns the (possibly shared) future.

        Normalization (model resolution, cell-key derivation) happens
        here, synchronously, so a malformed request fails fast with
        :class:`ServeError` and never occupies queue space.  An identical
        in-flight request absorbs this one: the caller gets the existing
        future and ``serve.coalesce.hits`` is incremented.
        """
        plan = self._plan(op, dict(params or {}))
        key = plan["key"]
        registry = get_registry()
        with self._lock:
            if self._stopped:
                raise ServeBusy("service is shutting down")
            flight = self._inflight.get(key)
            if flight is not None:
                flight.waiters += 1
                registry.counter("serve.coalesce.hits").inc()
                return flight.future
            flight = _Flight()
            self._inflight[key] = flight
        try:
            self._queue.put_nowait((key, plan, flight))
        except queue.Full:
            with self._lock:
                self._inflight.pop(key, None)
            registry.counter("serve.rejected").inc()
            raise ServeBusy(
                f"job queue full ({self._queue.maxsize} pending); retry later"
            )
        registry.counter("serve.enqueued").inc()
        registry.gauge("serve.queue.depth").set(self._queue.qsize())
        return flight.future

    def call(
        self,
        op: str,
        params: Optional[Mapping[str, Any]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Synchronous :meth:`submit` + wait."""
        return self.submit(op, params).result(timeout)

    def _drain(self) -> None:
        registry = get_registry()
        tracer = get_tracer()
        while True:
            item = self._queue.get()
            if item is None:
                return
            key, plan, flight = item
            registry.gauge("serve.queue.depth").set(self._queue.qsize())
            started = time.perf_counter()
            with tracer.span("serve.request", op=plan["op"], key=key[:12]):
                try:
                    result = self._execute(plan)
                except Exception as exc:
                    registry.counter("serve.errors").inc()
                    self.journal.emit(
                        "serve_request_fail", op=plan["op"], error=repr(exc)
                    )
                    flight.future.set_exception(exc)
                else:
                    elapsed = time.perf_counter() - started
                    registry.counter("serve.requests").inc()
                    registry.counter(f"serve.requests.{plan['op']}").inc()
                    registry.histogram("serve.request.seconds").observe(elapsed)
                    self.journal.emit(
                        "serve_request", op=plan["op"], seconds=round(elapsed, 6),
                        waiters=flight.waiters,
                    )
                    flight.future.set_result(result)
            # Pop only after the future resolves: identical arrivals in
            # the window between resolution and pop still coalesce onto
            # the already-resolved future (an immediate hit).
            with self._lock:
                self._inflight.pop(key, None)

    # -------------------------------------------------------------- planning

    def _plan(self, op: str, params: Dict[str, Any]) -> Dict[str, Any]:
        """Validate and normalize a request into an executable plan whose
        coalescing key is content-addressed on battery cell keys."""
        if op in ("summarize", "generate", "compare"):
            groups = params.get("groups")
            if op == "compare" and groups:
                raise ServeError("compare scores the full battery; omit groups")
            plan = self._summarize_plan(params, groups)
            if op == "generate":
                gen_key = canonical_key(
                    generation_payload(
                        plan.identity, plan.cache_params, plan.n, plan.seed
                    )
                )
                body = {"generation": gen_key}
            else:
                body = {"cells": sorted(k for k, _ in plan.cells.values())}
            return {
                "op": op,
                "plan": plan,
                "key": canonical_key(dict(body, kind="serve-request", op=op)),
            }
        if op == "world_save":
            world = self._world_id(params)
            spec = {
                "model": str(params.get("model", "")),
                "n": _coerce_int(params.get("n", 0), "n"),
                "seed": _coerce_int(params.get("seed", 0), "seed"),
                "params": dict(params.get("params") or {}),
                "checkpoint_every": params.get("checkpoint_every"),
            }
            if not spec["model"]:
                raise ServeError("world_save requires a model")
            if spec["n"] < 1:
                raise ServeError("world_save requires n >= 1")
            return {
                "op": op,
                "world": world,
                "spec": spec,
                "key": canonical_key(
                    {"kind": "serve-request", "op": op, "world": world, "spec": spec}
                ),
            }
        if op in ("world_info", "world_summary", "world_list", "world_summarize"):
            world = self._world_id(params) if op != "world_list" else ""
            seed = _coerce_int(params.get("seed", 0), "seed")
            return {
                "op": op,
                "world": world,
                "seed": seed,
                "groups": self._groups(params.get("groups")),
                "key": canonical_key(
                    {
                        "kind": "serve-request", "op": op, "world": world,
                        "seed": seed, "groups": list(self._groups(params.get("groups"))),
                    }
                ),
            }
        raise ServeError(f"unknown operation {op!r}")

    def _groups(self, groups: Optional[Sequence[str]]) -> Tuple[str, ...]:
        if groups is None or groups == "":
            return tuple(METRIC_GROUPS)
        if isinstance(groups, str):
            groups = [g for g in groups.split(",") if g]
        unknown = [g for g in groups if g not in ALL_METRIC_GROUPS]
        if unknown:
            known = ", ".join(ALL_METRIC_GROUPS)
            raise ServeError(f"unknown metric group(s) {unknown!r}; available: {known}")
        return tuple(groups)

    def _world_id(self, params: Mapping[str, Any]) -> str:
        world = str(params.get("world", ""))
        if not WORLD_ID_PATTERN.fullmatch(world):
            raise ServeError(
                f"invalid world id {world!r} (want {WORLD_ID_PATTERN.pattern})"
            )
        return world

    def _summarize_plan(
        self, params: Mapping[str, Any], groups: Optional[Sequence[str]]
    ) -> _SummarizePlan:
        model = params.get("model")
        if not model:
            raise ServeError("request requires a model")
        n = _coerce_int(params.get("n", 0), "n")
        if n < 1:
            raise ServeError("request requires n >= 1")
        gen_params = dict(params.get("params") or {})
        try:
            generator = make_generator(str(model), **gen_params)
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"cannot build model {model!r}: {exc}")
        if self.engine != "auto":
            generator.engine = self.engine
        identity, plain_params = _identity(generator)
        if "replicate" in params:
            # Battery-compatible addressing: the same derived seed the
            # battery would use for this replicate, so served cells and
            # battery cells are literally the same cache entries.
            seed = derive_seed(
                "battery-unit", identity, plain_params, n,
                _coerce_int(params.get("base_seed", 17), "base_seed"),
                _coerce_int(params["replicate"], "replicate"),
            )
        else:
            seed = _coerce_int(params.get("seed", 0), "seed")
        plan = _SummarizePlan(
            label=str(model),
            generator=generator,
            identity=identity,
            cache_params=generator.cache_params(n),
            n=n,
            seed=seed,
            groups=self._groups(groups),
        )
        for group in plan.groups:
            payload = cell_payload(
                plan.identity, plan.cache_params, plan.n, plan.seed, group,
                self._sum_params,
            )
            plan.cells[group] = (canonical_key(payload), payload)
        return plan

    # ------------------------------------------------------------- execution

    def _execute(self, plan: Dict[str, Any]) -> Dict[str, Any]:
        op = plan["op"]
        if op == "summarize":
            return self._execute_summarize(plan["plan"])
        if op == "generate":
            return self._execute_generate(plan["plan"])
        if op == "compare":
            return self._execute_compare(plan["plan"])
        if op == "world_save":
            return self._execute_world_save(plan["world"], plan["spec"])
        if op == "world_list":
            return self._execute_world_list()
        if op == "world_info":
            return self._execute_world_info(plan["world"])
        if op == "world_summary":
            return self._execute_world_summary(plan["world"])
        if op == "world_summarize":
            return self._execute_world_summarize(
                plan["world"], plan["seed"], plan["groups"]
            )
        raise ServeError(f"unknown operation {op!r}")  # pragma: no cover

    def _run_worker_task(self, task: Dict[str, Any]) -> Tuple[
        Dict[str, Dict[str, float]], Dict[str, float], float, Dict[str, Any]
    ]:
        """Run one battery task on the warm pool with containment.

        Worker exceptions propagate (the request fails, the pool lives);
        a hung or broken pool is rebuilt — reaping spool staging — and the
        task retried up to ``retries`` times.
        """
        registry = get_registry()
        last_error: Optional[str] = None
        for attempt in range(self.retries + 1):
            future = self.pool.submit(task)
            try:
                _, values, timings, gen_seconds, _, extras = future.result(
                    timeout=self.unit_timeout
                )
            except FuturesTimeout:
                future.cancel()
                last_error = (
                    f"unit did not finish within the {self.unit_timeout}s timeout"
                )
            except BrokenExecutor as exc:
                last_error = f"worker process died abruptly ({exc!r})"
            else:
                if extras.get("metrics"):
                    registry.merge(extras["metrics"])
                return values, timings, gen_seconds, extras
            registry.counter("serve.pool.rebuilds").inc()
            self.pool.rebuild()
            self.spool.reap_staging()
        raise RuntimeError(f"serve unit failed after {self.retries + 1} attempts: {last_error}")

    def _ensure_handle(self, plan: _SummarizePlan) -> Tuple[Any, bool]:
        """The plan's topology as a shared handle, generating at most once.

        Concurrent callers needing the same not-yet-spooled topology
        coalesce on the generation key; the loser(s) attach the winner's
        published snapshot.  Returns (handle, generated-by-this-call).
        """
        gen_key = canonical_key(
            generation_payload(plan.identity, plan.cache_params, plan.n, plan.seed)
        )
        registry = get_registry()
        with self._lock:
            flight = self._gen_inflight.get(gen_key)
            if flight is None:
                flight = Future()
                self._gen_inflight[gen_key] = flight
                leader = True
            else:
                leader = False
        if not leader:
            registry.counter("serve.coalesce.generations").inc()
            handle, _ = flight.result(self.unit_timeout)
            return handle, False
        try:
            handle = self.spool.probe(gen_key)
            if handle is not None:
                registry.counter("serve.generations.cached").inc()
                generated = False
            else:
                task = {
                    "index": 0,
                    "kind": "generate",
                    "generator": plan.generator,
                    "n": plan.n,
                    "seed": plan.seed,
                    "spool_path": str(self.spool.path_for(gen_key)),
                    "obs": {
                        "trace": False, "profile_dir": None,
                        "model": plan.label, "replicate": None,
                        "label": f"serve-{plan.label}-gen",
                    },
                }
                _, _, _, extras = self._run_worker_task(task)
                handle = extras.get("handle")
                if handle is None:
                    raise RuntimeError("generation returned no handle")
                self.spool.adopt(gen_key, handle)
                registry.counter("serve.generations.computed").inc()
                self.journal.emit(
                    "serve_generation", model=plan.label, n=plan.n,
                    seed=plan.seed, key=gen_key,
                )
                generated = True
            flight.set_result((handle, generated))
            return handle, generated
        except BaseException as exc:
            flight.set_exception(exc)
            raise
        finally:
            with self._lock:
                self._gen_inflight.pop(gen_key, None)

    def _measure(
        self,
        plan_label: str,
        handle: Any,
        seed: int,
        pending: Mapping[str, Tuple[str, Dict[str, Any]]],
    ) -> Dict[str, Dict[str, float]]:
        """One micro-batched measure task: every pending group of the
        request against one shared attached view."""
        task = {
            "index": 0,
            "kind": "measure",
            "handle": handle,
            "seed": seed,
            "groups": tuple(pending),
            "sum_params": self._sum_params,
            "obs": {
                "trace": False, "profile_dir": None, "model": plan_label,
                "replicate": None, "label": f"serve-{plan_label}-measure",
            },
        }
        values, _, _, _ = self._run_worker_task(task)
        get_registry().counter("serve.cells.computed").inc(len(pending))
        return values

    def _execute_summarize(self, plan: _SummarizePlan) -> Dict[str, Any]:
        registry = get_registry()
        values: Dict[str, Dict[str, float]] = {}
        cached: List[str] = []
        pending: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        for group in plan.groups:
            key, payload = plan.cells[group]
            hit = self.cache.get(key, payload)
            if hit is not None:
                values[group] = hit
                cached.append(group)
                registry.counter("serve.cells.cached").inc()
            else:
                pending[group] = (key, payload)
        generated = False
        if pending:
            handle, generated = self._ensure_handle(plan)
            computed = self._measure(plan.label, handle, plan.seed, pending)
            for group, (key, payload) in pending.items():
                self.cache.put(key, computed[group], payload)
                values[group] = computed[group]
        merged: Dict[str, float] = {}
        for group in plan.groups:
            merged.update(values[group])
        return {
            "model": plan.label,
            "n": plan.n,
            "seed": plan.seed,
            "groups": list(plan.groups),
            "cached_groups": cached,
            "computed_groups": sorted(pending),
            "generated": int(generated),
            "values": merged,
        }

    def _execute_generate(self, plan: _SummarizePlan) -> Dict[str, Any]:
        handle, generated = self._ensure_handle(plan)
        return {
            "model": plan.label,
            "n": plan.n,
            "seed": plan.seed,
            "generated": int(generated),
            "num_nodes": handle.num_nodes,
            "num_edges": handle.num_edges,
            "fingerprint": handle.fingerprint,
            "nbytes": handle.nbytes,
        }

    def _execute_compare(self, plan: _SummarizePlan) -> Dict[str, Any]:
        # The reference-map target caches through the same store as the
        # model cells (see _summarize_target), so a warm compare is pure
        # cache reads; the model summary runs inline here — never through
        # our own queue — so compare can't starve the dispatcher threads.
        with get_tracer().span("serve.target", n=plan.n):
            target = _summarize_target(None, plan.n, self.cache, self._sum_params)
        summary_result = self._execute_summarize(plan)
        summary = TopologySummary.from_dict(plan.label, summary_result["values"])
        comparison = compare_summaries(summary, target)
        return {
            "model": plan.label,
            "n": plan.n,
            "seed": plan.seed,
            "score": comparison.score,
            "target": target.name,
            "generated": summary_result["generated"],
            "rows": [
                {
                    "metric": row.metric,
                    "model": row.model_value,
                    "target": row.target_value,
                    "penalty": row.penalty,
                }
                for row in comparison.rows
            ],
        }

    # ---------------------------------------------------------------- worlds

    def _world_path(self, world: str) -> Path:
        return self.worlds_dir / f"{world}.db"

    def _execute_world_save(self, world: str, spec: Dict[str, Any]) -> Dict[str, Any]:
        try:
            generator = make_generator(spec["model"], **spec["params"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ServeError(f"cannot build model {spec['model']!r}: {exc}")
        if self.engine != "auto":
            generator.engine = self.engine
        path = self._world_path(world)
        report = generator.generate_to_store(
            spec["n"], path, seed=spec["seed"],
            checkpoint_every=spec["checkpoint_every"],
        )
        get_registry().counter("serve.worlds.saved").inc()
        self.journal.emit(
            "serve_world_save", world=world, model=spec["model"], n=spec["n"],
            regenerated=report.regenerated,
        )
        info = GraphStore.open(path).info()
        return {
            "world": world,
            "model": spec["model"],
            "regenerated": bool(report.regenerated),
            "chunks_written": report.chunks_written,
            "chunks_resumed": report.chunks_resumed,
            "info": info,
        }

    def _execute_world_list(self) -> Dict[str, Any]:
        worlds = []
        for path in sorted(self.worlds_dir.glob("*.db")):
            entry: Dict[str, Any] = {"world": path.stem}
            try:
                info = GraphStore.open(path).info()
                entry.update(
                    num_nodes=info.get("num_nodes"),
                    num_edges=info.get("num_edges"),
                    complete=info.get("complete"),
                    snapshot=info.get("snapshot"),
                )
            except StoreError as exc:
                entry["error"] = str(exc)
            worlds.append(entry)
        return {"worlds": worlds}

    def _open_world(self, world: str) -> GraphStore:
        path = self._world_path(world)
        if not path.is_file():
            raise KeyError(f"no world {world!r}")
        return GraphStore.open(path)

    def _execute_world_info(self, world: str) -> Dict[str, Any]:
        return {"world": world, "info": self._open_world(world).info()}

    def _execute_world_summary(self, world: str) -> Dict[str, Any]:
        # The out-of-core read path: the size group straight from the
        # store's mmap CSR view, no Graph materialized anywhere.
        values = self._open_world(world).measure()
        return {"world": world, "values": values}

    def _execute_world_summarize(
        self, world: str, seed: int, groups: Tuple[str, ...]
    ) -> Dict[str, Any]:
        """Full metric groups for a stored world on the warm pool.

        Cells are keyed on the stored graph's fingerprint (the
        :class:`StoredTopologyGenerator` identity), and the topology
        reaches the workers as the store's own mmap snapshot wrapped in a
        shared handle — zero copies, zero generations.
        """
        store = self._open_world(world)
        generator = StoredTopologyGenerator(store.path)
        identity, params = _identity(generator)
        n = generator.num_nodes
        registry = get_registry()
        values: Dict[str, Dict[str, float]] = {}
        cached: List[str] = []
        pending: Dict[str, Tuple[str, Dict[str, Any]]] = {}
        for group in groups:
            payload = cell_payload(identity, params, n, seed, group, self._sum_params)
            key = canonical_key(payload)
            hit = self.cache.get(key, payload)
            if hit is not None:
                values[group] = hit
                cached.append(group)
                registry.counter("serve.cells.cached").inc()
            else:
                pending[group] = (key, payload)
        if pending:
            store.csr()  # ensure the sidecar snapshot exists and is fresh
            handle = handle_for_snapshot(store.snapshot_path)
            computed = self._measure(f"world-{world}", handle, seed, pending)
            for group, (key, payload) in pending.items():
                self.cache.put(key, computed[group], payload)
                values[group] = computed[group]
        merged: Dict[str, float] = {}
        for group in groups:
            merged.update(values[group])
        return {
            "world": world,
            "n": n,
            "seed": seed,
            "groups": list(groups),
            "cached_groups": cached,
            "computed_groups": sorted(pending),
            "generated": 0,
            "values": merged,
        }

    # ----------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        """Service health: queue, coalescing, cache, pool, counters."""
        snapshot = get_registry().snapshot()
        counters = snapshot.get("counters", {})
        return {
            "uptime_seconds": round(self.uptime, 3),
            "jobs": self.pool.jobs,
            "queue_depth": self._queue.qsize(),
            "queue_limit": self._queue.maxsize,
            "inflight": len(self._inflight),
            "pool_rebuilds": self.pool.rebuilds,
            "reaped_at_start": self.reaped_at_start,
            "cache": self.cache.stats.as_dict(),
            "counters": {
                name: value
                for name, value in sorted(counters.items())
                if name.split(".")[0]
                in ("serve", "battery", "cache", "transport", "generator")
            },
        }
