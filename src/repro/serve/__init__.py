"""Topology-as-a-service: the long-running serving layer (ISSUE 10).

``repro.serve`` turns the batch substrate — parallel battery, result
cache, shared-graph transport, graph store — into sustained request
throughput:

* :class:`ServeDispatcher` — warm worker pool, bounded job queue,
  request coalescing on battery cache-cell keys, micro-batched metric
  work (:mod:`repro.serve.dispatcher`);
* :class:`TopologyServer` / :func:`running_server` — the stdlib
  threaded HTTP front with ``/metrics`` and named-world endpoints
  (:mod:`repro.serve.server`);
* :class:`ServeClient` — a urllib client (:mod:`repro.serve.client`);
* :func:`run_load` / :class:`LoadReport` — the heavy-tailed p50/p99
  load harness behind ``repro serve bench`` and
  ``benchmarks/bench_serve.py`` (:mod:`repro.serve.loadgen`).
"""

from .client import ServeClient, ServeClientError
from .dispatcher import ServeBusy, ServeDispatcher, ServeError
from .loadgen import LoadReport, percentile, run_load
from .server import TopologyServer, running_server

__all__ = [
    "ServeDispatcher",
    "ServeBusy",
    "ServeError",
    "TopologyServer",
    "running_server",
    "ServeClient",
    "ServeClientError",
    "LoadReport",
    "run_load",
    "percentile",
]
