"""Topology-as-a-service HTTP layer (stdlib only).

A thin, threaded front over :class:`~repro.serve.dispatcher.
ServeDispatcher`: every connection handler parses/serializes JSON and
blocks on the dispatcher's (possibly coalesced) future; all actual work
happens on the dispatcher threads and the warm worker pool.

Endpoints
---------
``GET /health``
    Liveness: uptime, pool size, queue depth.
``GET /metrics``
    The ambient metrics registry in Prometheus text exposition format.
``GET /stats``
    Dispatcher health as JSON (queue, coalescing, cache hit rate,
    filtered counters).
``POST /summarize`` ``{"model", "n", "seed"|"replicate", "params", "groups"}``
    Metric-group values for one (model, n, seed) topology — cache-first,
    coalesced, micro-batched on the warm pool.
``POST /generate``
    Publish (or probe) the topology's shared snapshot; returns handle
    metadata, no metrics.
``POST /compare``
    Full-battery score of the model against the frozen reference map.
``PUT /worlds/<id>`` ``{"model", "n", "seed", "params", "checkpoint_every"}``
    Grow a named world into its :class:`~repro.store.store.GraphStore`
    (checkpointed; an identical complete store is reused, not re-grown).
``GET /worlds`` · ``GET /worlds/<id>``
    List worlds / one world's store info.
``GET /worlds/<id>/summary``
    The ``size`` group straight from the store's mmap view.
``GET /worlds/<id>/summarize?seed=N&groups=a,b``
    Full metric groups for the stored world via the warm pool
    (fingerprint-keyed cells, zero generations).

Error mapping: malformed requests → 400, unknown paths/worlds → 404,
store conflicts → 409, a full job queue → 503 with ``Retry-After``.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs.exporters import render_prometheus
from ..obs.metrics import get_registry
from ..store.sqlite import StoreError
from .dispatcher import ServeBusy, ServeDispatcher, ServeError

__all__ = ["TopologyServer", "running_server"]

_MAX_BODY = 1 << 20  # 1 MiB of JSON is plenty for any request we accept


class TopologyServer(ThreadingHTTPServer):
    """A :class:`ThreadingHTTPServer` bound to one dispatcher."""

    daemon_threads = True

    def __init__(
        self,
        dispatcher: ServeDispatcher,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: Optional[float] = None,
    ):
        super().__init__((host, port), _Handler)
        self.dispatcher = dispatcher
        self.request_timeout = request_timeout

    @property
    def url(self) -> str:
        """The service's base URL (resolved host and bound port)."""
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------- plumbing

    def log_message(self, format: str, *args: Any) -> None:
        # Access logging is the journal's and /metrics' job; stderr noise
        # per request would drown the terminal the service runs in.
        pass

    def _send_json(self, status: int, body: Dict[str, Any], retry: bool = False) -> None:
        data = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        if retry:
            self.send_header("Retry-After", "1")
        self.end_headers()
        self.wfile.write(data)

    def _send_text(self, status: int, text: str, content_type: str) -> None:
        data = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def _body(self) -> Dict[str, Any]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY:
            raise ServeError(f"request body too large ({length} bytes)")
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServeError(f"request body is not valid JSON: {exc}")
        if not isinstance(body, dict):
            raise ServeError("request body must be a JSON object")
        return body

    def _dispatch(self, op: str, params: Dict[str, Any]) -> None:
        """Run one dispatcher op and map its failure modes onto HTTP."""
        server: TopologyServer = self.server  # type: ignore[assignment]
        try:
            result = server.dispatcher.call(
                op, params, timeout=server.request_timeout
            )
        except ServeBusy as exc:
            self._send_json(503, {"error": str(exc)}, retry=True)
        except ServeError as exc:
            self._send_json(400, {"error": str(exc)})
        except KeyError as exc:
            self._send_json(404, {"error": str(exc.args[0] if exc.args else exc)})
        except StoreError as exc:
            self._send_json(409, {"error": str(exc)})
        except Exception as exc:
            get_registry().counter("serve.http.errors").inc()
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
        else:
            self._send_json(200, result)

    def _route(self) -> Tuple[str, Dict[str, str]]:
        parsed = urlparse(self.path)
        query = {
            key: values[-1]
            for key, values in parse_qs(parsed.query).items()
            if values
        }
        return parsed.path.rstrip("/") or "/", query

    # -------------------------------------------------------------- methods

    def do_GET(self) -> None:  # noqa: N802 (http.server contract)
        path, query = self._route()
        server: TopologyServer = self.server  # type: ignore[assignment]
        if path == "/health":
            self._send_json(
                200,
                {
                    "status": "ok",
                    "uptime_seconds": round(server.dispatcher.uptime, 3),
                    "jobs": server.dispatcher.pool.jobs,
                    "queue_depth": server.dispatcher.stats()["queue_depth"],
                },
            )
            return
        if path == "/metrics":
            self._send_text(
                200, render_prometheus(get_registry()), "text/plain; version=0.0.4"
            )
            return
        if path == "/stats":
            self._send_json(200, server.dispatcher.stats())
            return
        if path == "/worlds":
            self._dispatch("world_list", {})
            return
        parts = path.strip("/").split("/")
        if parts[0] == "worlds" and len(parts) == 2:
            self._dispatch("world_info", {"world": parts[1]})
            return
        if parts[0] == "worlds" and len(parts) == 3 and parts[2] == "summary":
            self._dispatch("world_summary", {"world": parts[1]})
            return
        if parts[0] == "worlds" and len(parts) == 3 and parts[2] == "summarize":
            params: Dict[str, Any] = {"world": parts[1]}
            if "seed" in query:
                params["seed"] = query["seed"]
            if "groups" in query:
                params["groups"] = query["groups"]
            self._dispatch("world_summarize", params)
            return
        self._send_json(404, {"error": f"no route for GET {path}"})

    def do_POST(self) -> None:  # noqa: N802
        path, _ = self._route()
        try:
            body = self._body()
        except ServeError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        if path in ("/summarize", "/generate", "/compare"):
            self._dispatch(path.lstrip("/"), body)
            return
        self._send_json(404, {"error": f"no route for POST {path}"})

    def do_PUT(self) -> None:  # noqa: N802
        path, _ = self._route()
        try:
            body = self._body()
        except ServeError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        parts = path.strip("/").split("/")
        if parts[0] == "worlds" and len(parts) == 2:
            self._dispatch("world_save", dict(body, world=parts[1]))
            return
        self._send_json(404, {"error": f"no route for PUT {path}"})


@contextmanager
def running_server(
    dispatcher: ServeDispatcher,
    host: str = "127.0.0.1",
    port: int = 0,
    request_timeout: Optional[float] = None,
):
    """Serve *dispatcher* on a background thread; yields the base URL.

    Shuts the HTTP layer down on exit; the dispatcher's lifecycle stays
    with the caller (so one dispatcher can outlive several servers in
    tests, and ``serve run`` can own both).
    """
    server = TopologyServer(
        dispatcher, host=host, port=port, request_timeout=request_timeout
    )
    thread = threading.Thread(
        target=server.serve_forever, name="serve-http", daemon=True
    )
    thread.start()
    try:
        yield server.url
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
