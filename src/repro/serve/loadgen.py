"""Synthetic heavy-tailed load for the topology service.

The traffic model mirrors what a topology service actually sees: a small
set of popular ``(model, seed)`` keys absorbing most summarize calls
(Zipf-weighted repeats — the warm path the service optimizes), a long
tail of colder keys, and the occasional full-battery ``compare`` (the
heavy request class).  Interleaved **duplicate rounds** release a
barrier-synchronized burst of identical requests from every worker
thread at once, guaranteeing concurrent identical load so request
coalescing is exercised, not just possible.

:func:`run_load` returns a :class:`LoadReport` with per-op latency
percentiles, overall p50/p99 and requests/second, plus the service-side
deltas (coalesce hits, generations, cache hit rate) read from ``/stats``
before and after — the evidence the serve benchmark and the CI smoke job
gate on.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.report import format_table
from .client import ServeClient, ServeClientError

__all__ = ["LoadReport", "run_load", "percentile"]


def percentile(latencies: Sequence[float], q: float) -> float:
    """The *q*-th percentile (nearest-rank) of *latencies*; NaN if empty."""
    if not latencies:
        return float("nan")
    ordered = sorted(latencies)
    rank = max(1, int(-(-q / 100.0 * len(ordered) // 1)))  # ceil without math
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class LoadReport:
    """What one load run did and how the service held up."""

    requests: int
    errors: int
    elapsed: float
    latencies: Dict[str, List[float]] = field(default_factory=dict)
    coalesce_hits: float = 0.0
    generations: float = 0.0
    cache_hit_rate: float = 0.0
    stats_before: Dict[str, Any] = field(default_factory=dict)
    stats_after: Dict[str, Any] = field(default_factory=dict)

    @property
    def all_latencies(self) -> List[float]:
        """Every recorded latency, all ops merged."""
        merged: List[float] = []
        for values in self.latencies.values():
            merged.extend(values)
        return merged

    @property
    def rps(self) -> float:
        """Overall requests per second for the run."""
        return self.requests / self.elapsed if self.elapsed > 0 else 0.0

    def p(self, q: float, op: Optional[str] = None) -> float:
        """Latency percentile, overall or for one op."""
        values = self.latencies.get(op, []) if op else self.all_latencies
        return percentile(values, q)

    def table(self) -> str:
        """Per-op p50/p99/max table plus the service-side counter deltas."""
        rows = []
        for op in sorted(self.latencies):
            values = self.latencies[op]
            rows.append(
                [
                    op, len(values),
                    round(percentile(values, 50) * 1000, 2),
                    round(percentile(values, 99) * 1000, 2),
                    round(max(values) * 1000, 2) if values else float("nan"),
                ]
            )
        rows.append(
            [
                "(all)", self.requests,
                round(self.p(50) * 1000, 2),
                round(self.p(99) * 1000, 2),
                round(max(self.all_latencies) * 1000, 2)
                if self.all_latencies else float("nan"),
            ]
        )
        lines = [
            format_table(
                ["op", "requests", "p50 ms", "p99 ms", "max ms"], rows,
                title="serve load",
            ),
            (
                f"{self.rps:.1f} req/s over {self.elapsed:.2f}s; "
                f"errors={self.errors} coalesce_hits={self.coalesce_hits:.0f} "
                f"generations={self.generations:.0f} "
                f"cache_hit_rate={self.cache_hit_rate:.3f}"
            ),
        ]
        return "\n".join(lines)


def _counter_delta(report: LoadReport, name: str) -> float:
    before = report.stats_before.get("counters", {}).get(name, 0)
    after = report.stats_after.get("counters", {}).get(name, 0)
    return float(after) - float(before)


def run_load(
    client: ServeClient,
    requests: int = 100,
    threads: int = 8,
    models: Sequence[str] = ("albert-barabasi", "waxman"),
    n: int = 400,
    seeds: int = 2,
    compare_every: int = 0,
    duplicate_rounds: int = 3,
    groups: Optional[Sequence[str]] = None,
    rng_seed: int = 7,
) -> LoadReport:
    """Replay heavy-tailed synthetic traffic against *client*'s service.

    *requests* summarize/compare calls are Zipf-weighted over
    ``models × seeds`` keys and split across *threads* workers; every
    ``compare_every``-th scheduled call (0 = never) is a full-battery
    compare.  *duplicate_rounds* barrier-synchronized bursts of
    *threads* identical summarize calls are appended to exercise request
    coalescing under genuinely concurrent identical load.
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    rng = random.Random(rng_seed)
    keys: List[Tuple[str, int]] = [
        (model, seed) for model in models for seed in range(seeds)
    ]
    # Zipf-ish popularity: key k drawn with weight 1/(k+1).
    weights = [1.0 / (rank + 1) for rank in range(len(keys))]
    schedule: List[Tuple[str, str, int]] = []
    for i in range(requests):
        model, seed = rng.choices(keys, weights=weights)[0]
        op = "compare" if compare_every and (i + 1) % compare_every == 0 else "summarize"
        schedule.append((op, model, seed))

    lock = threading.Lock()
    latencies: Dict[str, List[float]] = {}
    errors = [0]
    cursor = [0]

    def record(op: str, seconds: float) -> None:
        with lock:
            latencies.setdefault(op, []).append(seconds)

    def one(op: str, model: str, seed: int) -> None:
        started = time.perf_counter()
        try:
            if op == "compare":
                client.compare(model, n, seed=seed)
            else:
                client.summarize(model, n, seed=seed, groups=groups)
        except ServeClientError:
            with lock:
                errors[0] += 1
        record(op, time.perf_counter() - started)

    def mixed_worker() -> None:
        while True:
            with lock:
                if cursor[0] >= len(schedule):
                    return
                op, model, seed = schedule[cursor[0]]
                cursor[0] += 1
            one(op, model, seed)

    stats_before = client.stats()
    started = time.perf_counter()

    pool = [threading.Thread(target=mixed_worker) for _ in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()

    # Duplicate rounds: every thread fires the SAME request through one
    # barrier, so identical requests are in flight simultaneously and the
    # dispatcher's coalescer must collapse them.
    burst_total = 0
    for round_index in range(duplicate_rounds):
        model, seed = keys[round_index % len(keys)]
        barrier = threading.Barrier(threads)

        def burst_worker() -> None:
            barrier.wait()
            one("summarize", model, seed)

        burst = [threading.Thread(target=burst_worker) for _ in range(threads)]
        for thread in burst:
            thread.start()
        for thread in burst:
            thread.join()
        burst_total += threads

    elapsed = time.perf_counter() - started
    stats_after = client.stats()
    report = LoadReport(
        requests=len(schedule) + burst_total,
        errors=errors[0],
        elapsed=elapsed,
        latencies=latencies,
        stats_before=stats_before,
        stats_after=stats_after,
    )
    report.coalesce_hits = _counter_delta(report, "serve.coalesce.hits")
    report.generations = _counter_delta(report, "serve.generations.computed")
    report.cache_hit_rate = float(
        stats_after.get("cache", {}).get("hit_rate", 0.0)
    )
    return report
