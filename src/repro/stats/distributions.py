"""Empirical distribution utilities.

The validation battery compares models to observed maps through
*distributions* (degree, betweenness, triangle counts, path lengths) and
*spectra* (clustering and neighbor degree as functions of k).  This module
provides the shared machinery: empirical CCDFs, logarithmic binning for
heavy-tailed data, binned spectrum averaging, and two-sample distances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

import numpy as np

__all__ = [
    "Ccdf",
    "empirical_ccdf",
    "log_bin_centers",
    "log_binned_histogram",
    "binned_spectrum",
    "ks_distance",
    "histogram",
    "frequency_counts",
]


@dataclass(frozen=True)
class Ccdf:
    """Empirical complementary CDF: ``P(X >= x)`` evaluated at sorted x.

    ``values`` holds the distinct sorted sample values and ``probabilities``
    the matching tail probabilities; both have equal length and
    ``probabilities[0] == 1.0``.
    """

    values: Tuple[float, ...]
    probabilities: Tuple[float, ...]

    def __len__(self) -> int:
        return len(self.values)

    def at(self, x: float) -> float:
        """Tail probability ``P(X >= x)`` for an arbitrary *x*."""
        # Find the first sample value >= x; its tail probability applies.
        lo, hi = 0, len(self.values)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.values[mid] < x:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self.values):
            return 0.0
        return self.probabilities[lo]

    def as_points(self) -> List[Tuple[float, float]]:
        """(value, tail probability) pairs, ready for plotting or printing."""
        return list(zip(self.values, self.probabilities))


def empirical_ccdf(samples: Iterable[float]) -> Ccdf:
    """Build the empirical CCDF of *samples*.

    Ties are merged, so the result has one point per distinct value.  Raises
    :class:`ValueError` on an empty sample.
    """
    data = sorted(samples)
    if not data:
        raise ValueError("cannot build a CCDF from an empty sample")
    n = len(data)
    values: List[float] = []
    probs: List[float] = []
    i = 0
    while i < n:
        values.append(data[i])
        probs.append((n - i) / n)
        j = i
        while j < n and data[j] == data[i]:
            j += 1
        i = j
    return Ccdf(tuple(values), tuple(probs))


def log_bin_centers(x_min: float, x_max: float, bins_per_decade: int = 10) -> List[float]:
    """Geometric bin centers covering [x_min, x_max]."""
    if x_min <= 0 or x_max < x_min:
        raise ValueError("need 0 < x_min <= x_max")
    ratio = 10 ** (1.0 / bins_per_decade)
    centers = []
    x = x_min
    while x <= x_max * math.sqrt(ratio):
        centers.append(x)
        x *= ratio
    return centers


def log_binned_histogram(
    samples: Sequence[float], bins_per_decade: int = 10
) -> List[Tuple[float, float]]:
    """Logarithmically binned probability density of positive *samples*.

    Returns (bin center, density) pairs with empty bins dropped — the
    standard way to render a heavy-tailed P(k) without tail noise.
    """
    data = [s for s in samples if s > 0]
    if not data:
        raise ValueError("log binning needs at least one positive sample")
    x_min, x_max = min(data), max(data)
    ratio = 10 ** (1.0 / bins_per_decade)
    edges = [x_min]
    while edges[-1] < x_max * (1 + 1e-12):
        edges.append(edges[-1] * ratio)
    counts = [0] * (len(edges) - 1)
    for s in data:
        # Locate the bin via logarithm; clamp the right edge into the last bin.
        idx = min(int(math.log(s / x_min) / math.log(ratio)), len(counts) - 1)
        counts[idx] += 1
    total = len(data)
    points: List[Tuple[float, float]] = []
    for i, c in enumerate(counts):
        if c == 0:
            continue
        width = edges[i + 1] - edges[i]
        center = math.sqrt(edges[i] * edges[i + 1])
        points.append((center, c / (total * width)))
    return points


def binned_spectrum(
    pairs: Iterable[Tuple[float, float]],
    log_bins: bool = True,
    bins_per_decade: int = 10,
) -> List[Tuple[float, float]]:
    """Average y over bins of x — e.g. the clustering spectrum c(k).

    *pairs* are (x, y) samples (one per node).  With ``log_bins`` the x axis
    is binned geometrically, which is what every heavy-tailed spectrum plot
    in the literature uses; otherwise each distinct x gets its own bin.
    """
    pair_list = [(x, y) for x, y in pairs if x > 0]
    if not pair_list:
        return []
    if not log_bins:
        sums: Dict[float, List[float]] = {}
        for x, y in pair_list:
            sums.setdefault(x, []).append(y)
        return sorted((x, sum(ys) / len(ys)) for x, ys in sums.items())
    x_min = min(x for x, _ in pair_list)
    ratio = 10 ** (1.0 / bins_per_decade)
    buckets: Dict[int, List[Tuple[float, float]]] = {}
    for x, y in pair_list:
        idx = int(math.log(x / x_min) / math.log(ratio))
        buckets.setdefault(idx, []).append((x, y))
    spectrum = []
    for idx in sorted(buckets):
        bucket = buckets[idx]
        mean_x = math.exp(sum(math.log(x) for x, _ in bucket) / len(bucket))
        mean_y = sum(y for _, y in bucket) / len(bucket)
        spectrum.append((mean_x, mean_y))
    return spectrum


def ks_distance(sample_a: Sequence[float], sample_b: Sequence[float]) -> float:
    """Two-sample Kolmogorov–Smirnov statistic ``sup_x |F_a(x) - F_b(x)|``."""
    a = np.sort(np.asarray(sample_a, dtype=float))
    b = np.sort(np.asarray(sample_b, dtype=float))
    if a.size == 0 or b.size == 0:
        raise ValueError("KS distance needs non-empty samples")
    grid = np.concatenate([a, b])
    cdf_a = np.searchsorted(a, grid, side="right") / a.size
    cdf_b = np.searchsorted(b, grid, side="right") / b.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


def histogram(samples: Iterable[float], bins: int = 20) -> List[Tuple[float, int]]:
    """Linear-bin histogram returning (bin center, count) pairs."""
    data = list(samples)
    if not data:
        raise ValueError("cannot histogram an empty sample")
    counts, edges = np.histogram(np.asarray(data, dtype=float), bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return [(float(c), int(n)) for c, n in zip(centers, counts)]


def frequency_counts(samples: Iterable[int]) -> Dict[int, int]:
    """Exact frequency table for integer-valued samples (e.g. degrees)."""
    counts: Dict[int, int] = {}
    for s in samples:
        counts[s] = counts.get(s, 0) + 1
    return counts
