"""Paired-sample correlation measures.

Experiments repeatedly correlate two per-node quantities (provisioned
bandwidth vs carried load, degree vs users, fitness vs final degree);
Pearson answers "linear on the raw scale", Spearman answers "monotone" —
the right question for heavy-tailed quantities, where a few hubs dominate
any raw-scale covariance.
"""

from __future__ import annotations

import math
from typing import List, Sequence

__all__ = ["pearson_correlation", "spearman_correlation", "rank_values"]


def pearson_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson's r; 0.0 when either side has zero variance."""
    if len(xs) != len(ys):
        raise ValueError("paired samples must have equal length")
    n = len(xs)
    if n < 3:
        raise ValueError("need at least three paired samples")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def rank_values(values: Sequence[float]) -> List[float]:
    """Fractional ranks (1-based, ties get the average of their span)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average = (i + j) / 2.0 + 1.0
        for k in range(i, j + 1):
            ranks[order[k]] = average
        i = j + 1
    return ranks


def spearman_correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman's rho: Pearson correlation of the fractional ranks."""
    if len(xs) != len(ys):
        raise ValueError("paired samples must have equal length")
    if len(xs) < 3:
        raise ValueError("need at least three paired samples")
    return pearson_correlation(rank_values(xs), rank_values(ys))
