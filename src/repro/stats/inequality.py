"""Inequality measurements: Gini coefficient and Lorenz curves.

Market experiments report *concentration*; the HHI captures the top of the
distribution, the Gini coefficient captures its whole shape.  Both degree
sequences ("link wealth") and revenue distributions are heavily unequal on
internet-like topologies, and the Lorenz curve is the standard picture.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

__all__ = ["gini_coefficient", "lorenz_curve"]


def gini_coefficient(values: Iterable[float]) -> float:
    """Gini coefficient in [0, 1): 0 = perfect equality.

    Uses the sorted-rank identity ``G = (2 Σ_i i·x_(i) / (n Σ x)) −
    (n+1)/n`` on non-negative values; an all-zero population is perfectly
    equal (0.0).
    """
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("gini of an empty population is undefined")
    if np.any(data < 0):
        raise ValueError("gini requires non-negative values")
    total = data.sum()
    if total == 0:
        return 0.0
    n = data.size
    ranks = np.arange(1, n + 1)
    return float(2.0 * np.sum(ranks * data) / (n * total) - (n + 1.0) / n)


def lorenz_curve(values: Iterable[float], points: int = 21) -> List[Tuple[float, float]]:
    """Lorenz curve: (population share, cumulative value share) pairs.

    Sampled at *points* evenly spaced population shares including the
    endpoints (0, 0) and (1, 1).
    """
    if points < 2:
        raise ValueError("need at least two curve points")
    data = np.sort(np.asarray(list(values), dtype=float))
    if data.size == 0:
        raise ValueError("lorenz of an empty population is undefined")
    if np.any(data < 0):
        raise ValueError("lorenz requires non-negative values")
    total = data.sum()
    cumulative = np.concatenate([[0.0], np.cumsum(data)])
    if total == 0:
        # Perfect equality convention: the diagonal.
        return [(i / (points - 1), i / (points - 1)) for i in range(points)]
    # The exact Lorenz curve is the piecewise-linear interpolation of the
    # cumulative sums of the sorted values; sampling it by interpolation
    # keeps every point on the true curve (and hence under the diagonal).
    n = data.size
    shares = np.linspace(0.0, 1.0, points)
    values_at = np.interp(shares * n, np.arange(n + 1), cumulative / total)
    return [(float(x), float(y)) for x, y in zip(shares, values_at)]
