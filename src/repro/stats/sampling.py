"""Weighted sampling structures.

Preferential-attachment generators repeatedly draw nodes with probability
proportional to a weight (degree, user count, fitness) that changes after
every draw.  A naive linear scan costs O(n) per draw; the structures here
bring that to O(log n) (:class:`FenwickSampler`) or O(1) after O(n) setup for
static weights (:class:`AliasSampler`).

Both samplers draw from the same conceptual distribution::

    P(i) = w_i / sum_j w_j

and raise :class:`ValueError` when the total weight is not positive.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from .rng import SeedLike, make_rng

__all__ = ["FenwickSampler", "AliasSampler", "weighted_choice"]


class FenwickSampler:
    """Dynamic weighted sampler backed by a Fenwick (binary indexed) tree.

    Supports O(log n) weight updates, appends, and draws, which makes it the
    workhorse for growing-network generators where the weight of a node
    changes every time it gains an edge or a user.

    Weights must be non-negative; zero-weight items are never drawn.
    """

    def __init__(self, weights: Iterable[float] = (), seed: SeedLike = None):
        self._rng = make_rng(seed)
        self._tree: List[float] = [0.0]  # 1-indexed Fenwick array
        self._weights: List[float] = []
        # Memoized total: generators read ``total`` before/after every draw,
        # and recomputing the root prefix sum dominated their hot loops.
        # Always the exact ``_prefix_sum(n)`` value (cached, not tracked
        # incrementally), so no float drift versus recomputation.
        self._total_cache: Optional[float] = None
        for w in weights:
            self.append(w)

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def total(self) -> float:
        """Sum of all weights currently in the sampler."""
        if self._total_cache is None:
            self._total_cache = self._prefix_sum(len(self._weights))
        return self._total_cache

    def weight(self, index: int) -> float:
        """Current weight of item *index*."""
        return self._weights[index]

    def append(self, weight: float) -> int:
        """Add a new item with *weight*; returns its index."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        index = len(self._weights)
        self._weights.append(0.0)
        self._tree.append(0.0)
        self._total_cache = None
        # Fold the lower Fenwick ranges this new slot covers into its cell.
        pos = index + 1
        low = pos - (pos & -pos) + 1
        self._tree[pos] = sum(self._weights[low - 1 : index])
        self.update(index, weight)
        return index

    def update(self, index: int, weight: float) -> None:
        """Set item *index* to *weight* (absolute, not incremental)."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.add(index, weight - self._weights[index])

    def add(self, index: int, delta: float) -> None:
        """Increase item *index* by *delta* (may be negative)."""
        if not 0 <= index < len(self._weights):
            raise IndexError(f"index {index} out of range")
        new_weight = self._weights[index] + delta
        if new_weight < -1e-9:
            raise ValueError(
                f"weight of item {index} would become negative ({new_weight})"
            )
        self._weights[index] = max(new_weight, 0.0)
        self._total_cache = None
        tree = self._tree
        size = len(tree)
        pos = index + 1
        while pos < size:
            tree[pos] += delta
            pos += pos & -pos

    def _prefix_sum(self, count: int) -> float:
        """Sum of the first *count* weights."""
        tree = self._tree
        acc = 0.0
        pos = count
        while pos > 0:
            acc += tree[pos]
            pos -= pos & -pos
        return acc

    def sample(self) -> int:
        """Draw one index with probability proportional to its weight."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot sample: total weight is zero")
        target = self._rng.random() * total
        # Descend the implicit Fenwick tree to find the smallest prefix
        # exceeding target.
        tree = self._tree
        weights = self._weights
        n = len(weights)
        index = 0
        bitmask = 1 << (n.bit_length() - 1) if n else 0
        while bitmask > 0:
            nxt = index + bitmask
            if nxt <= n:
                cell = tree[nxt]
                if cell <= target:
                    target -= cell
                    index = nxt
            bitmask >>= 1
        # ``index`` is now the count of items whose cumulative weight is
        # <= target, i.e. the 0-based index of the selected item.
        if index >= n:  # numerical edge at target == total
            index = n - 1
        # Skip over any zero-weight items the float descent may have landed on.
        while weights[index] == 0.0 and index + 1 < n:
            index += 1
        return index

    def sample_distinct(self, count: int, max_tries: int = 10_000) -> List[int]:
        """Draw *count* distinct indices by rejection.

        Suitable when *count* is small relative to the number of positive
        weights (the common preferential-attachment case of picking ``m``
        targets).  Raises :class:`ValueError` if not enough distinct items
        can be found within *max_tries* draws.
        """
        positive = sum(1 for w in self._weights if w > 0)
        if count > positive:
            raise ValueError(
                f"cannot draw {count} distinct items from {positive} with positive weight"
            )
        chosen: set = set()
        tries = 0
        while len(chosen) < count:
            if tries >= max_tries:
                raise ValueError("rejection sampling failed to find distinct items")
            chosen.add(self.sample())
            tries += 1
        return sorted(chosen)


class AliasSampler:
    """Static O(1) weighted sampler (Walker's alias method).

    Preprocesses a fixed weight vector in O(n); each draw then costs one
    uniform variate and one comparison.  Used for workloads that draw many
    samples from an unchanging distribution, e.g. gravity-model traffic
    matrices.
    """

    def __init__(self, weights: Sequence[float], seed: SeedLike = None):
        weights = list(weights)
        if not weights:
            raise ValueError("AliasSampler needs at least one weight")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("total weight must be positive")
        self._rng = make_rng(seed)
        n = len(weights)
        self._n = n
        scaled = [w * n / total for w in weights]
        self._prob = [0.0] * n
        self._alias = [0] * n
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for leftover in small + large:
            self._prob[leftover] = 1.0
            self._alias[leftover] = leftover

    def __len__(self) -> int:
        return self._n

    def sample(self) -> int:
        """Draw one index with probability proportional to its weight."""
        u = self._rng.random() * self._n
        index = int(u)
        if index >= self._n:  # guard against u == n on float edge
            index = self._n - 1
        frac = u - index
        if frac < self._prob[index]:
            return index
        return self._alias[index]

    def sample_many(self, count: int) -> List[int]:
        """Draw *count* independent indices."""
        return [self.sample() for _ in range(count)]


def weighted_choice(
    weights: Sequence[float], rng: Optional[random.Random] = None
) -> int:
    """One-shot linear-scan weighted draw.

    Convenience for callers that sample rarely; for hot loops use
    :class:`FenwickSampler` or :class:`AliasSampler`.
    """
    rng = rng if rng is not None else random
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    target = rng.random() * total
    acc = 0.0
    last_positive = -1
    for index, w in enumerate(weights):
        if w > 0:
            last_positive = index
        acc += w
        if target < acc:
            return index
    return last_positive
