"""Weighted sampling structures.

Preferential-attachment generators repeatedly draw nodes with probability
proportional to a weight (degree, user count, fitness) that changes after
every draw.  A naive linear scan costs O(n) per draw; the structures here
bring that to O(log n) (:class:`FenwickSampler`) or O(1) after O(n) setup for
static weights (:class:`AliasSampler`).

Both samplers draw from the same conceptual distribution::

    P(i) = w_i / sum_j w_j

and raise :class:`ValueError` when the total weight is not positive.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

import numpy as np

from .rng import SeedLike, make_rng

__all__ = [
    "FenwickSampler",
    "AliasSampler",
    "CumulativeSampler",
    "weighted_choice",
    "distinct_in_order",
]


class FenwickSampler:
    """Dynamic weighted sampler backed by a Fenwick (binary indexed) tree.

    Supports O(log n) weight updates, appends, and draws, which makes it the
    workhorse for growing-network generators where the weight of a node
    changes every time it gains an edge or a user.

    Weights must be non-negative; zero-weight items are never drawn.
    """

    def __init__(self, weights: Iterable[float] = (), seed: SeedLike = None):
        self._rng = make_rng(seed)
        # Memoized total: generators read ``total`` before/after every draw,
        # and recomputing the root prefix sum dominated their hot loops.
        # Always the exact ``_prefix_sum(n)`` value (cached, not tracked
        # incrementally), so no float drift versus recomputation.
        self._total_cache: Optional[float] = None
        # Count of positive-weight items, maintained incrementally so
        # ``sample_distinct`` never rescans the whole weight vector.
        self._num_positive = 0
        ws = [float(w) for w in weights]
        for w in ws:
            if w < 0:
                raise ValueError(f"weight must be non-negative, got {w}")
            if w > 0:
                self._num_positive += 1
        self._weights = ws
        # O(n) bulk build: seed each cell with its own weight, then fold
        # every cell into its parent in one left-to-right pass — each cell
        # is touched exactly once as a child and once as a parent.
        n = len(ws)
        tree = [0.0] * (n + 1)
        tree[1:] = ws
        for pos in range(1, n + 1):
            parent = pos + (pos & -pos)
            if parent <= n:
                tree[parent] += tree[pos]
        self._tree = tree

    def __len__(self) -> int:
        return len(self._weights)

    @property
    def total(self) -> float:
        """Sum of all weights currently in the sampler."""
        if self._total_cache is None:
            self._total_cache = self._prefix_sum(len(self._weights))
        return self._total_cache

    def weight(self, index: int) -> float:
        """Current weight of item *index*."""
        return self._weights[index]

    def append(self, weight: float) -> int:
        """Add a new item with *weight*; returns its index."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        index = len(self._weights)
        self._weights.append(0.0)
        self._tree.append(0.0)
        self._total_cache = None
        # Fold the lower Fenwick ranges this new slot covers into its cell.
        pos = index + 1
        low = pos - (pos & -pos) + 1
        self._tree[pos] = sum(self._weights[low - 1 : index])
        self.update(index, weight)
        return index

    def update(self, index: int, weight: float) -> None:
        """Set item *index* to *weight* (absolute, not incremental)."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        self.add(index, weight - self._weights[index])

    def add(self, index: int, delta: float) -> None:
        """Increase item *index* by *delta* (may be negative)."""
        if not 0 <= index < len(self._weights):
            raise IndexError(f"index {index} out of range")
        new_weight = self._weights[index] + delta
        if new_weight < -1e-9:
            raise ValueError(
                f"weight of item {index} would become negative ({new_weight})"
            )
        old_weight = self._weights[index]
        new_weight = max(new_weight, 0.0)
        if (old_weight > 0.0) != (new_weight > 0.0):
            self._num_positive += 1 if new_weight > 0.0 else -1
        self._weights[index] = new_weight
        self._total_cache = None
        tree = self._tree
        size = len(tree)
        pos = index + 1
        while pos < size:
            tree[pos] += delta
            pos += pos & -pos

    def _prefix_sum(self, count: int) -> float:
        """Sum of the first *count* weights."""
        tree = self._tree
        acc = 0.0
        pos = count
        while pos > 0:
            acc += tree[pos]
            pos -= pos & -pos
        return acc

    def sample(self) -> int:
        """Draw one index with probability proportional to its weight."""
        total = self.total
        if total <= 0:
            raise ValueError("cannot sample: total weight is zero")
        target = self._rng.random() * total
        # Descend the implicit Fenwick tree to find the smallest prefix
        # exceeding target.
        tree = self._tree
        weights = self._weights
        n = len(weights)
        index = 0
        bitmask = 1 << (n.bit_length() - 1) if n else 0
        while bitmask > 0:
            nxt = index + bitmask
            if nxt <= n:
                cell = tree[nxt]
                if cell <= target:
                    target -= cell
                    index = nxt
            bitmask >>= 1
        # ``index`` is now the count of items whose cumulative weight is
        # <= target, i.e. the 0-based index of the selected item.
        if index >= n:  # numerical edge at target == total
            index = n - 1
        # Skip over any zero-weight items the float descent may have landed on.
        while weights[index] == 0.0 and index + 1 < n:
            index += 1
        return index

    def sample_distinct(self, count: int, max_tries: int = 10_000) -> List[int]:
        """Draw *count* distinct indices by rejection.

        Suitable when *count* is small relative to the number of positive
        weights (the common preferential-attachment case of picking ``m``
        targets).  Raises :class:`ValueError` if not enough distinct items
        can be found within *max_tries* draws.
        """
        positive = self._num_positive
        if count > positive:
            raise ValueError(
                f"cannot draw {count} distinct items from {positive} with positive weight"
            )
        chosen: set = set()
        tries = 0
        while len(chosen) < count:
            if tries >= max_tries:
                raise ValueError("rejection sampling failed to find distinct items")
            chosen.add(self.sample())
            tries += 1
        return sorted(chosen)


class CumulativeSampler:
    """Batch weighted sampler over a numpy weight array.

    The vector growth engines draw attachment targets in blocks: one
    ``searchsorted`` over the cumulative weight array replaces thousands of
    Fenwick descents.  The cumsum is rebuilt lazily after weight updates, so
    the intended pattern is *update rarely, draw in batches* — e.g. rebuild
    once per growth step, then draw all of that step's targets at once.

    Draw semantics match :func:`weighted_choice` /
    :class:`FenwickSampler.sample`: ``target = u * total`` with
    ``u ~ U[0, 1)``, the selected index is the first whose cumulative weight
    exceeds the target, and zero-weight items are never returned.
    """

    def __init__(self, weights=None, capacity: int = 0):
        capacity = max(int(capacity), 8)
        self._weights = np.zeros(capacity, dtype=np.float64)
        self._size = 0
        self._cum: Optional[np.ndarray] = None
        if weights is not None:
            arr = np.asarray(list(weights), dtype=np.float64)
            if arr.size and float(arr.min()) < 0:
                raise ValueError("weights must be non-negative")
            self._ensure(arr.size)
            self._weights[: arr.size] = arr
            self._size = int(arr.size)

    def __len__(self) -> int:
        return self._size

    def _ensure(self, size: int) -> None:
        if size > self._weights.shape[0]:
            grown = np.zeros(max(size, 2 * self._weights.shape[0]), dtype=np.float64)
            grown[: self._size] = self._weights[: self._size]
            self._weights = grown

    def append(self, weight: float) -> int:
        """Add a new item with *weight*; returns its index."""
        if weight < 0:
            raise ValueError(f"weight must be non-negative, got {weight}")
        index = self._size
        self._ensure(index + 1)
        self._weights[index] = weight
        self._size = index + 1
        self._cum = None
        return index

    def add(self, index: int, delta: float) -> None:
        """Increase item *index* by *delta* (may be negative)."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range")
        new_weight = self._weights[index] + delta
        if new_weight < -1e-9:
            raise ValueError(
                f"weight of item {index} would become negative ({new_weight})"
            )
        self._weights[index] = max(new_weight, 0.0)
        self._cum = None

    def add_many(self, indices, deltas) -> None:
        """Apply ``weights[indices] += deltas`` in one shot.

        Repeated indices accumulate (``np.add.at`` semantics), which is what
        degree updates after a batch of edges need.
        """
        idx = np.asarray(indices, dtype=np.intp)
        np.add.at(self._weights, idx, deltas)
        self._cum = None

    def weight(self, index: int) -> float:
        """Current weight of item *index*."""
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range")
        return float(self._weights[index])

    @property
    def weights(self) -> np.ndarray:
        """Live view of the first ``len(self)`` weights (do not mutate)."""
        return self._weights[: self._size]

    @property
    def total(self) -> float:
        """Sum of all weights currently in the sampler."""
        return float(self._cumulative()[-1]) if self._size else 0.0

    def _cumulative(self) -> np.ndarray:
        if self._cum is None or self._cum.shape[0] != self._size:
            self._cum = np.cumsum(self._weights[: self._size])
        return self._cum

    def draw(self, count: int, rng) -> np.ndarray:
        """Draw *count* independent indices ∝ weight (with replacement).

        *rng* is a :class:`numpy.random.Generator`; one ``rng.random(count)``
        call feeds one ``searchsorted``, so a batch of draws consumes the
        uniform stream exactly like *count* sequential scalar draws would
        (numpy's generators are chunk-invariant).
        """
        cum = self._cumulative()
        total = float(cum[-1]) if cum.size else 0.0
        if total <= 0:
            raise ValueError("cannot sample: total weight is zero")
        targets = rng.random(count) * total
        idx = np.searchsorted(cum, targets, side="right")
        np.minimum(idx, self._size - 1, out=idx)
        # Zero-weight items have zero-width cumsum intervals and are never
        # selected by searchsorted except via the float edge clamped above.
        if self._weights[idx].min() <= 0.0:
            weights = self._weights
            for k in np.nonzero(weights[idx] <= 0.0)[0]:
                j = int(idx[k])
                while weights[j] == 0.0 and j + 1 < self._size:
                    j += 1
                idx[k] = j
        return idx

    def draw_distinct(
        self, count: int, rng, exclude=(), max_rounds: int = 64
    ) -> np.ndarray:
        """Draw *count* distinct indices ∝ weight, none in *exclude*.

        Batch rejection: oversample a block, keep first occurrences, repeat
        on the (rare) shortfall.  Matches the distribution of sequential
        rejection sampling, not its draw order.
        """
        excluded = set(exclude)
        weights = self._weights[: self._size]
        available = int(np.count_nonzero(weights > 0.0)) - sum(
            1 for j in excluded if 0 <= j < self._size and weights[j] > 0.0
        )
        if count > available:
            raise ValueError(
                f"cannot draw {count} distinct items from {available} with positive weight"
            )
        chosen: List[int] = []
        seen = set(excluded)
        for _ in range(max_rounds):
            block = self.draw(max(2 * count, 16), rng)
            for j in block.tolist():
                if j not in seen:
                    seen.add(j)
                    chosen.append(j)
                    if len(chosen) == count:
                        return np.asarray(chosen, dtype=np.intp)
        raise ValueError("rejection sampling failed to find distinct items")


def distinct_in_order(draws, count: int, exclude=()) -> List[int]:
    """First *count* distinct values of *draws*, skipping *exclude*.

    Shared post-processing for batch target draws: preserves the order in
    which values first appear, so callers that need the *earliest* distinct
    targets of an oversampled block get them.  Returns fewer than *count*
    values when the block runs dry (callers re-draw).
    """
    seen = set(exclude)
    out: List[int] = []
    for value in draws:
        value = int(value)
        if value not in seen:
            seen.add(value)
            out.append(value)
            if len(out) == count:
                break
    return out


class AliasSampler:
    """Static O(1) weighted sampler (Walker's alias method).

    Preprocesses a fixed weight vector in O(n); each draw then costs one
    uniform variate and one comparison.  Used for workloads that draw many
    samples from an unchanging distribution, e.g. gravity-model traffic
    matrices.
    """

    def __init__(self, weights: Sequence[float], seed: SeedLike = None):
        weights = list(weights)
        if not weights:
            raise ValueError("AliasSampler needs at least one weight")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        total = float(sum(weights))
        if total <= 0:
            raise ValueError("total weight must be positive")
        self._rng = make_rng(seed)
        n = len(weights)
        self._n = n
        scaled = [w * n / total for w in weights]
        self._prob = [0.0] * n
        self._alias = [0] * n
        small = [i for i, s in enumerate(scaled) if s < 1.0]
        large = [i for i, s in enumerate(scaled) if s >= 1.0]
        while small and large:
            s = small.pop()
            l = large.pop()
            self._prob[s] = scaled[s]
            self._alias[s] = l
            scaled[l] = scaled[l] + scaled[s] - 1.0
            if scaled[l] < 1.0:
                small.append(l)
            else:
                large.append(l)
        for leftover in small + large:
            self._prob[leftover] = 1.0
            self._alias[leftover] = leftover

    def __len__(self) -> int:
        return self._n

    def sample(self) -> int:
        """Draw one index with probability proportional to its weight."""
        u = self._rng.random() * self._n
        index = int(u)
        if index >= self._n:  # guard against u == n on float edge
            index = self._n - 1
        frac = u - index
        if frac < self._prob[index]:
            return index
        return self._alias[index]

    def sample_many(self, count: int) -> List[int]:
        """Draw *count* independent indices."""
        return [self.sample() for _ in range(count)]


def weighted_choice(
    weights: Sequence[float], rng: Optional[random.Random] = None
) -> int:
    """One-shot linear-scan weighted draw.

    Convenience for callers that sample rarely; for hot loops use
    :class:`FenwickSampler` or :class:`AliasSampler`.
    """
    rng = rng if rng is not None else random
    if any(w < 0 for w in weights):
        raise ValueError("weights must be non-negative")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    target = rng.random() * total
    acc = 0.0
    last_positive = -1
    for index, w in enumerate(weights):
        if w > 0:
            last_positive = index
        acc += w
        if target < acc:
            return index
    return last_positive
