"""Exponential growth fitting and scaling-exponent estimation.

Two recurring measurement tasks in internet modeling:

* fitting exponential growth rates to time series — hosts ``W(t) ≈ W0 e^{αt}``,
  ASes ``N(t) ≈ N0 e^{βt}``, links ``E(t) ≈ E0 e^{δt}`` (experiment F1);
* fitting scaling exponents to size sweeps — e.g. cycle counts
  ``N_h(N) ~ N^{ξ(h)}`` (experiment T2).

Both reduce to ordinary least squares in log space; the fitters here return
slope, intercept, standard errors, and an R² so harnesses can report error
bars the way the literature does.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ExponentialFit",
    "PowerFit",
    "fit_exponential_growth",
    "fit_power_scaling",
    "doubling_time",
]


@dataclass(frozen=True)
class ExponentialFit:
    """Fit of ``y(t) = y0 * exp(rate * t)``.

    ``rate_stderr`` is the OLS standard error of the rate in log space and
    ``r_squared`` the log-space coefficient of determination.
    """

    y0: float
    rate: float
    rate_stderr: float
    r_squared: float

    def predict(self, t: float) -> float:
        """Model value at time *t*."""
        return self.y0 * math.exp(self.rate * t)

    def __str__(self) -> str:
        return f"y0={self.y0:.4g}, rate={self.rate:.4f}±{self.rate_stderr:.4f} (R²={self.r_squared:.4f})"


@dataclass(frozen=True)
class PowerFit:
    """Fit of ``y(x) = c * x^exponent``."""

    c: float
    exponent: float
    exponent_stderr: float
    r_squared: float

    def predict(self, x: float) -> float:
        """Model value at *x*."""
        return self.c * x ** self.exponent

    def __str__(self) -> str:
        return f"c={self.c:.4g}, exponent={self.exponent:.3f}±{self.exponent_stderr:.3f} (R²={self.r_squared:.4f})"


def _log_ols(x: np.ndarray, log_y: np.ndarray) -> Tuple[float, float, float, float]:
    """OLS of log_y on x: returns (intercept, slope, slope stderr, R²)."""
    n = x.size
    if n < 2:
        raise ValueError("need at least two points to fit")
    x_mean = x.mean()
    y_mean = log_y.mean()
    sxx = float(np.sum((x - x_mean) ** 2))
    if sxx == 0:
        raise ValueError("x values are all identical")
    sxy = float(np.sum((x - x_mean) * (log_y - y_mean)))
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean
    residuals = log_y - (intercept + slope * x)
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((log_y - y_mean) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    if n > 2:
        stderr = math.sqrt(ss_res / (n - 2) / sxx)
    else:
        stderr = 0.0
    return intercept, slope, stderr, r_squared


def fit_exponential_growth(
    times: Sequence[float], values: Sequence[float]
) -> ExponentialFit:
    """Fit ``values ≈ y0 * exp(rate * times)`` by log-linear OLS."""
    t = np.asarray(times, dtype=float)
    y = np.asarray(values, dtype=float)
    if t.size != y.size:
        raise ValueError("times and values must have equal length")
    if np.any(y <= 0):
        raise ValueError("exponential fitting requires positive values")
    intercept, slope, stderr, r2 = _log_ols(t, np.log(y))
    return ExponentialFit(
        y0=math.exp(intercept), rate=slope, rate_stderr=stderr, r_squared=r2
    )


def fit_power_scaling(xs: Sequence[float], ys: Sequence[float]) -> PowerFit:
    """Fit ``ys ≈ c * xs^exponent`` by log-log OLS.

    Pairs where either coordinate is non-positive are rejected with a
    :class:`ValueError` rather than silently dropped, so harnesses notice
    degenerate sweeps (e.g. a cycle count of zero at small N).
    """
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.size != y.size:
        raise ValueError("xs and ys must have equal length")
    if np.any(x <= 0) or np.any(y <= 0):
        raise ValueError("power-law scaling fit requires positive coordinates")
    intercept, slope, stderr, r2 = _log_ols(np.log(x), np.log(y))
    return PowerFit(
        c=math.exp(intercept), exponent=slope, exponent_stderr=stderr, r_squared=r2
    )


def doubling_time(rate: float) -> float:
    """Time for an exponential process with *rate* to double."""
    if rate <= 0:
        raise ValueError("doubling time is only defined for positive rates")
    return math.log(2.0) / rate
