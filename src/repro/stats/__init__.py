"""Statistical substrate: seeding, weighted sampling, empirical
distributions, power-law fitting, and growth-rate estimation."""

from .distributions import (
    Ccdf,
    binned_spectrum,
    empirical_ccdf,
    frequency_counts,
    histogram,
    ks_distance,
    log_bin_centers,
    log_binned_histogram,
)
from .correlation import pearson_correlation, rank_values, spearman_correlation
from .inequality import gini_coefficient, lorenz_curve
from .growth import (
    ExponentialFit,
    PowerFit,
    doubling_time,
    fit_exponential_growth,
    fit_power_scaling,
)
from .powerlaw import (
    PowerLawFit,
    bootstrap_gamma,
    fit_discrete_powerlaw,
    fit_powerlaw_auto_xmin,
    hill_estimator,
    powerlaw_plausibility,
    sample_discrete_powerlaw,
)
from .rng import BufferedUniforms, make_numpy_rng, make_rng, spawn_seed
from .sampling import (
    AliasSampler,
    CumulativeSampler,
    FenwickSampler,
    distinct_in_order,
    weighted_choice,
)

__all__ = [
    "Ccdf",
    "empirical_ccdf",
    "log_bin_centers",
    "log_binned_histogram",
    "binned_spectrum",
    "ks_distance",
    "histogram",
    "frequency_counts",
    "ExponentialFit",
    "PowerFit",
    "fit_exponential_growth",
    "fit_power_scaling",
    "doubling_time",
    "PowerLawFit",
    "fit_discrete_powerlaw",
    "fit_powerlaw_auto_xmin",
    "hill_estimator",
    "bootstrap_gamma",
    "sample_discrete_powerlaw",
    "powerlaw_plausibility",
    "make_rng",
    "make_numpy_rng",
    "spawn_seed",
    "BufferedUniforms",
    "AliasSampler",
    "CumulativeSampler",
    "FenwickSampler",
    "weighted_choice",
    "distinct_in_order",
    "gini_coefficient",
    "lorenz_curve",
    "pearson_correlation",
    "spearman_correlation",
    "rank_values",
]
