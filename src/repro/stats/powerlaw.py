"""Power-law fitting for heavy-tailed distributions.

Degree distributions of AS-level internet maps follow ``P(k) ~ k^-gamma``
with gamma near 2.1–2.3.  Fitting gamma well is central to the validation
battery, so this module implements the standard discrete maximum-likelihood
estimator of Clauset–Shalizi–Newman (2009), automatic ``x_min`` selection by
Kolmogorov–Smirnov minimization, the Hill estimator as a cross-check, and a
bootstrap for confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .rng import NumpySeedLike, make_numpy_rng

__all__ = [
    "PowerLawFit",
    "fit_discrete_powerlaw",
    "fit_powerlaw_auto_xmin",
    "hill_estimator",
    "bootstrap_gamma",
    "sample_discrete_powerlaw",
    "powerlaw_plausibility",
]

# Truncation point for the generalized-zeta normalization sum; tails beyond
# this contribute less than float epsilon for gamma > 1.5.
_ZETA_TERMS = 100_000

# k-value arrays for the zeta head sum, keyed by (x_min, terms).  The MLE's
# golden-section search evaluates the zeta at one x_min for ~60 gammas per
# fit, and building the 100k-element arange dominated each call; float64
# holds these integers exactly, so reuse is bit-identical.
_ZETA_KS_CACHE: dict = {}


def _zeta_ks(x_min: int, terms: int) -> np.ndarray:
    key = (x_min, terms)
    ks = _ZETA_KS_CACHE.get(key)
    if ks is None:
        if len(_ZETA_KS_CACHE) >= 8:
            _ZETA_KS_CACHE.clear()
        ks = np.arange(x_min, x_min + terms, dtype=float)
        ks.setflags(write=False)
        _ZETA_KS_CACHE[key] = ks
    return ks


def _zeta_tail(gamma: float, upper: int) -> float:
    """Integral tail ∫_upper^∞ x^-gamma dx plus half the boundary term
    (Euler–Maclaurin leading correction)."""
    return upper ** (1.0 - gamma) / (gamma - 1.0) + 0.5 * upper ** -gamma


def _generalized_zeta(gamma: float, x_min: int, terms: int = _ZETA_TERMS) -> float:
    """Hurwitz zeta ``sum_{k=x_min}^inf k^-gamma`` by direct summation plus
    an integral tail correction."""
    if gamma <= 1.0:
        raise ValueError("zeta normalization diverges for gamma <= 1")
    head = float(np.sum(_zeta_ks(x_min, terms) ** -gamma))
    return head + _zeta_tail(gamma, x_min + terms)


@dataclass(frozen=True)
class PowerLawFit:
    """Result of a discrete power-law fit.

    ``gamma`` is the fitted exponent, ``x_min`` the smallest value the fit
    covers, ``ks`` the KS distance between the fitted model and the empirical
    tail, ``n_tail`` the number of samples at or above ``x_min`` and
    ``sigma`` the asymptotic standard error of gamma.
    """

    gamma: float
    x_min: int
    ks: float
    n_tail: int
    sigma: float

    def __str__(self) -> str:
        return (
            f"gamma={self.gamma:.3f}±{self.sigma:.3f} "
            f"(x_min={self.x_min}, n_tail={self.n_tail}, KS={self.ks:.4f})"
        )


def _tail(samples: Sequence[int], x_min: int) -> np.ndarray:
    data = np.asarray(samples, dtype=float)
    return data[data >= x_min]


def _mle_gamma(tail: np.ndarray, x_min: int) -> float:
    """Discrete MLE via the CSN approximation, refined by golden-section
    search on the exact discrete log-likelihood."""
    if tail.size < 2:
        raise ValueError("need at least two tail samples to fit gamma")
    # CSN closed-form approximation as the starting point.
    approx = 1.0 + tail.size / float(np.sum(np.log(tail / (x_min - 0.5))))

    log_sum = float(np.sum(np.log(tail)))

    def neg_loglike(gamma: float) -> float:
        return tail.size * math.log(_generalized_zeta(gamma, x_min)) + gamma * log_sum

    # Golden-section search around the approximation.
    lo = max(1.05, approx - 0.8)
    hi = approx + 0.8
    invphi = (math.sqrt(5.0) - 1.0) / 2.0
    a, b = lo, hi
    c = b - invphi * (b - a)
    d = a + invphi * (b - a)
    fc, fd = neg_loglike(c), neg_loglike(d)
    for _ in range(60):
        if fc < fd:
            b, d, fd = d, c, fc
            c = b - invphi * (b - a)
            fc = neg_loglike(c)
        else:
            a, c, fc = c, d, fd
            d = a + invphi * (b - a)
            fd = neg_loglike(d)
        if b - a < 1e-6:
            break
    return (a + b) / 2.0


def _model_ccdf(gamma: float, x_min: int, values: np.ndarray) -> np.ndarray:
    """Model tail probability P(X >= x) for each x in *values*.

    One shared power table covers every value's zeta head: the head for
    value ``x`` is the sum of a contiguous ``_ZETA_TERMS``-long slice, and
    numpy's pairwise summation over identical elementwise powers in the
    same order makes each slice sum bit-identical to a standalone
    ``_generalized_zeta(gamma, x)`` call — while computing the expensive
    ``k ** -gamma`` once instead of once per value.
    """
    norm = _generalized_zeta(gamma, x_min)
    out = np.empty(values.size, dtype=float)
    if not values.size:
        return out
    lo = int(values[0])
    powers = np.arange(lo, int(values[-1]) + _ZETA_TERMS, dtype=float) ** -gamma
    for i, x in enumerate(values):
        start = int(x) - lo
        head = float(np.sum(powers[start : start + _ZETA_TERMS]))
        out[i] = (head + _zeta_tail(gamma, int(x) + _ZETA_TERMS)) / norm
    return out


def _ks_statistic(tail: np.ndarray, gamma: float, x_min: int) -> float:
    values = np.unique(tail)
    model = _model_ccdf(gamma, x_min, values)
    n = tail.size
    ordered = np.sort(tail)
    empirical = (n - np.searchsorted(ordered, values, side="left")) / n
    return float(np.max(np.abs(empirical - model)))


def fit_discrete_powerlaw(samples: Iterable[int], x_min: int = 1) -> PowerLawFit:
    """Fit ``P(x) ∝ x^-gamma`` to integer *samples* with a fixed *x_min*."""
    if x_min < 1:
        raise ValueError("x_min must be >= 1")
    tail = _tail(list(samples), x_min)
    if tail.size < 2:
        raise ValueError(f"fewer than two samples >= x_min={x_min}")
    if np.unique(tail).size < 3:
        raise ValueError(
            "degenerate tail: a power-law fit needs at least three distinct values"
        )
    gamma = _mle_gamma(tail, x_min)
    ks = _ks_statistic(tail, gamma, x_min)
    sigma = (gamma - 1.0) / math.sqrt(tail.size)
    return PowerLawFit(gamma=gamma, x_min=x_min, ks=ks, n_tail=int(tail.size), sigma=sigma)


def fit_powerlaw_auto_xmin(
    samples: Iterable[int],
    x_min_candidates: Optional[Sequence[int]] = None,
    min_tail: int = 50,
) -> PowerLawFit:
    """Fit with automatic ``x_min`` selection (CSN procedure).

    Tries each candidate ``x_min`` and keeps the fit whose model-vs-data KS
    distance over the tail is smallest, subject to the tail retaining at
    least *min_tail* samples so the estimate stays stable.
    """
    data = sorted(int(s) for s in samples if s >= 1)
    if len(data) < min_tail:
        raise ValueError(f"need at least {min_tail} positive samples")
    if x_min_candidates is None:
        distinct = sorted(set(data))
        # Cap candidates so the tail keeps >= min_tail points; *data* is
        # sorted, so tail sizes come from one binary-search sweep.
        ordered = np.asarray(data)
        tail_sizes = len(data) - np.searchsorted(ordered, np.asarray(distinct), side="left")
        x_min_candidates = [
            x for x, size in zip(distinct, tail_sizes.tolist()) if size >= min_tail
        ]
        if not x_min_candidates:
            x_min_candidates = [distinct[0]]
    best: Optional[PowerLawFit] = None
    for x_min in x_min_candidates:
        try:
            fit = fit_discrete_powerlaw(data, x_min=x_min)
        except ValueError:
            continue
        if best is None or fit.ks < best.ks:
            best = fit
    if best is None:
        raise ValueError("no x_min candidate produced a valid fit")
    return best


def hill_estimator(samples: Iterable[float], tail_fraction: float = 0.1) -> float:
    """Hill estimator of the tail exponent gamma.

    Uses the top *tail_fraction* of the sample.  Provided as an independent
    cross-check on the MLE; the two should agree within ~0.2 on genuine
    power-law tails.
    """
    if not 0 < tail_fraction <= 1:
        raise ValueError("tail_fraction must be in (0, 1]")
    data = np.sort(np.asarray(list(samples), dtype=float))[::-1]
    k = max(2, int(len(data) * tail_fraction))
    if k >= len(data):
        k = len(data) - 1
    if k < 2:
        raise ValueError("sample too small for Hill estimation")
    top = data[:k]
    threshold = data[k]
    if threshold <= 0:
        raise ValueError("Hill estimator needs positive threshold")
    hill = np.mean(np.log(top / threshold))
    if hill <= 0:
        raise ValueError("degenerate tail: all top values equal the threshold")
    return 1.0 + 1.0 / float(hill)


def bootstrap_gamma(
    samples: Sequence[int],
    x_min: int,
    n_boot: int = 100,
    seed: NumpySeedLike = None,
) -> Tuple[float, float]:
    """Bootstrap mean and standard deviation of the fitted gamma."""
    rng = make_numpy_rng(seed)
    data = np.asarray(list(samples), dtype=int)
    gammas: List[float] = []
    for _ in range(n_boot):
        resample = rng.choice(data, size=data.size, replace=True)
        try:
            gammas.append(fit_discrete_powerlaw(resample, x_min=x_min).gamma)
        except ValueError:
            continue
    if not gammas:
        raise ValueError("no bootstrap replicate produced a valid fit")
    arr = np.asarray(gammas)
    return float(arr.mean()), float(arr.std(ddof=1) if arr.size > 1 else 0.0)


def powerlaw_plausibility(
    samples: Sequence[int],
    fit: Optional[PowerLawFit] = None,
    n_boot: int = 100,
    seed: NumpySeedLike = None,
) -> float:
    """CSN goodness-of-fit p-value via semiparametric bootstrap.

    Generates *n_boot* synthetic datasets from the fitted model (body
    resampled from the empirical below-x_min data, tail drawn from the
    fitted power law), refits each with the same automatic-x_min procedure,
    and reports the fraction whose KS distance exceeds the data's — the
    probability of seeing a fit this bad *if the model were true*.
    Clauset–Shalizi–Newman's rule of thumb: reject the power law when
    p < 0.1.
    """
    data = np.asarray([int(s) for s in samples if s >= 1], dtype=int)
    if data.size < 10:
        raise ValueError("plausibility needs at least 10 positive samples")
    if n_boot < 1:
        raise ValueError("n_boot must be >= 1")
    if fit is None:
        fit = fit_powerlaw_auto_xmin(data, min_tail=min(50, data.size // 2))
    rng = make_numpy_rng(seed)
    body = data[data < fit.x_min]
    tail_size = int(np.sum(data >= fit.x_min))
    tail_probability = tail_size / data.size
    worse = 0
    usable = 0
    for _ in range(n_boot):
        in_tail = rng.random(data.size) < tail_probability
        n_tail = int(in_tail.sum())
        n_body = data.size - n_tail
        parts = []
        if n_body > 0:
            if body.size > 0:
                parts.append(rng.choice(body, size=n_body, replace=True))
            else:
                n_tail += n_body  # no body data: everything is tail
        if n_tail > 0:
            parts.append(
                np.asarray(
                    sample_discrete_powerlaw(
                        fit.gamma, n_tail, x_min=fit.x_min,
                        seed=int(rng.integers(0, 2**62)),
                    )
                )
            )
        synthetic = np.concatenate(parts) if parts else np.array([], dtype=int)
        try:
            synthetic_fit = fit_powerlaw_auto_xmin(
                synthetic, min_tail=min(50, synthetic.size // 2)
            )
        except ValueError:
            continue
        usable += 1
        if synthetic_fit.ks >= fit.ks:
            worse += 1
    if usable == 0:
        raise ValueError("no bootstrap replicate was fittable")
    return worse / usable


def sample_discrete_powerlaw(
    gamma: float,
    size: int,
    x_min: int = 1,
    x_max: Optional[int] = None,
    seed: NumpySeedLike = None,
) -> List[int]:
    """Draw *size* integers from a (truncated) discrete power law.

    Used by structural generators (PLRG, Inet) to prescribe degree
    sequences, and by tests as ground truth for the fitters.  Inverse-CDF
    sampling over the exact discrete distribution.
    """
    if gamma <= 1.0:
        raise ValueError("gamma must exceed 1 for a normalizable power law")
    if x_min < 1:
        raise ValueError("x_min must be >= 1")
    rng = make_numpy_rng(seed)
    upper = x_max if x_max is not None else x_min * 10_000
    ks = np.arange(x_min, upper + 1, dtype=float)
    pmf = ks ** -gamma
    pmf /= pmf.sum()
    cdf = np.cumsum(pmf)
    u = rng.random(size)
    idx = np.searchsorted(cdf, u, side="left")
    idx = np.clip(idx, 0, ks.size - 1)
    return [int(x_min + i) for i in idx]
