"""Random number generation helpers.

Every stochastic component in :mod:`repro` accepts a ``seed`` argument that
may be ``None`` (non-deterministic), an ``int``, or an already-constructed
:class:`random.Random` / :class:`numpy.random.Generator`.  This module
centralizes the coercion logic so generators, samplers and simulators all
interpret seeds identically, and so that derived streams can be split off a
parent stream without correlating results.
"""

from __future__ import annotations

import hashlib
import json
import random
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, random.Random]
NumpySeedLike = Union[None, int, np.random.Generator]

__all__ = [
    "SeedLike",
    "NumpySeedLike",
    "BufferedUniforms",
    "make_rng",
    "make_numpy_rng",
    "spawn_seed",
    "derive_seed",
]

# Large odd multiplier used to decorrelate derived seeds (SplitMix64 constant).
_SPLIT_MULTIPLIER = 0x9E3779B97F4A7C15
_SEED_MASK = (1 << 63) - 1


def make_rng(seed: SeedLike = None) -> random.Random:
    """Coerce *seed* into a :class:`random.Random` instance.

    Passing an existing :class:`random.Random` returns it unchanged, so a
    caller can thread one stream through many components.  Integers produce a
    fresh, reproducible stream; ``None`` produces an OS-seeded stream.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None or isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(f"cannot build a random.Random from {type(seed).__name__}")


def make_numpy_rng(seed: NumpySeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a numpy Generator from {type(seed).__name__}")


class BufferedUniforms:
    """Scalar uniforms served from block refills of a numpy Generator.

    The vector growth engines interleave O(1) data-structure draws with
    occasional branching; calling ``Generator.random()`` per draw costs
    ~1 µs of dispatch, while refilling an 8K block amortizes that to
    nanoseconds.  Consumes the underlying stream in one chunk per refill.
    """

    __slots__ = ("_rng", "_block", "_cursor", "_size")

    def __init__(self, rng: np.random.Generator, block: int = 8192):
        self._rng = rng
        self._size = block
        self._block = rng.random(block)
        self._cursor = 0

    def next(self) -> float:
        """One uniform draw on [0, 1)."""
        cursor = self._cursor
        if cursor >= self._size:
            self._block = self._rng.random(self._size)
            cursor = 0
        self._cursor = cursor + 1
        return self._block[cursor]


def derive_seed(*components) -> int:
    """Deterministic 62-bit seed from arbitrary key components.

    Unlike :func:`spawn_seed` (which advances a live stream), this is a pure
    function of its arguments: the same components give the same seed in any
    process, on any platform, in any run — the property the parallel battery
    runner relies on for bit-identical results at every ``jobs`` value.
    Components are canonicalized through JSON (dict keys sorted, floats via
    repr), so ``derive_seed("glp", {"m": 1.13}, 0)`` is stable across
    interpreter restarts where built-in ``hash()`` is not.
    """
    canon = json.dumps(list(components), sort_keys=True, default=repr)
    digest = hashlib.sha256(canon.encode("utf-8")).digest()
    return (int.from_bytes(digest[:8], "big") & ((1 << 62) - 1)) + 1


def spawn_seed(rng: random.Random) -> int:
    """Draw a 63-bit child seed from *rng*, decorrelated via SplitMix mixing.

    Used when one seeded component needs to hand independent reproducible
    streams to sub-components (e.g. a generator handing a stream to the
    geometry layer) without sharing state.
    """
    raw = rng.getrandbits(63)
    mixed = (raw * _SPLIT_MULTIPLIER) & _SEED_MASK
    # xor-shift finalization spreads low-entropy inputs across all bits.
    mixed ^= mixed >> 31
    return mixed & _SEED_MASK
