"""Random number generation helpers.

Every stochastic component in :mod:`repro` accepts a ``seed`` argument that
may be ``None`` (non-deterministic), an ``int``, or an already-constructed
:class:`random.Random` / :class:`numpy.random.Generator`.  This module
centralizes the coercion logic so generators, samplers and simulators all
interpret seeds identically, and so that derived streams can be split off a
parent stream without correlating results.
"""

from __future__ import annotations

import random
from typing import Optional, Union

import numpy as np

SeedLike = Union[None, int, random.Random]
NumpySeedLike = Union[None, int, np.random.Generator]

__all__ = [
    "SeedLike",
    "NumpySeedLike",
    "make_rng",
    "make_numpy_rng",
    "spawn_seed",
]

# Large odd multiplier used to decorrelate derived seeds (SplitMix64 constant).
_SPLIT_MULTIPLIER = 0x9E3779B97F4A7C15
_SEED_MASK = (1 << 63) - 1


def make_rng(seed: SeedLike = None) -> random.Random:
    """Coerce *seed* into a :class:`random.Random` instance.

    Passing an existing :class:`random.Random` returns it unchanged, so a
    caller can thread one stream through many components.  Integers produce a
    fresh, reproducible stream; ``None`` produces an OS-seeded stream.
    """
    if isinstance(seed, random.Random):
        return seed
    if seed is None or isinstance(seed, int):
        return random.Random(seed)
    raise TypeError(f"cannot build a random.Random from {type(seed).__name__}")


def make_numpy_rng(seed: NumpySeedLike = None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a numpy Generator from {type(seed).__name__}")


def spawn_seed(rng: random.Random) -> int:
    """Draw a 63-bit child seed from *rng*, decorrelated via SplitMix mixing.

    Used when one seeded component needs to hand independent reproducible
    streams to sub-components (e.g. a generator handing a stream to the
    geometry layer) without sharing state.
    """
    raw = rng.getrandbits(63)
    mixed = (raw * _SPLIT_MULTIPLIER) & _SEED_MASK
    # xor-shift finalization spreads low-entropy inputs across all bits.
    mixed ^= mixed >> 31
    return mixed & _SEED_MASK
