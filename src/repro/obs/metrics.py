"""In-process metrics registry: counters, gauges, histogram timers.

Instrumented code increments named instruments on the ambient registry
(:func:`get_registry`); harnesses snapshot the registry before and after a
run and report the delta, exactly like :class:`repro.core.cache.CacheStats`
does for cache counters.  Worker processes accumulate into their own
registry and ship a snapshot back for :meth:`MetricsRegistry.merge`, so
parallel runs reconcile with serial ones instrument-for-instrument.

Naming convention is dotted lowercase (``battery.units.completed``,
``cache.hit``, ``generator.steps``); the Prometheus exporter
(:func:`repro.obs.exporters.render_prometheus`) rewrites dots to
underscores.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "diff_snapshots",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (must be >= 0)."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += amount


class Gauge:
    """Last-written value (worker counts, queue depths, sizes)."""

    __slots__ = ("value",)

    def __init__(self):
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = value


class Histogram:
    """Streaming summary of observed values: count/sum/min/max.

    Enough to report totals, means, and extremes without keeping samples;
    :meth:`time` makes any code block a duration observation.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        """Fold one observation in."""
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        """Average observation (NaN before any observation)."""
        return self.total / self.count if self.count else float("nan")

    def time(self) -> "_HistogramTimer":
        """Context manager observing the block's wall seconds."""
        return _HistogramTimer(self)

    def as_dict(self) -> Dict[str, float]:
        """Summary fields as a plain dict."""
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
        }


class _HistogramTimer:
    __slots__ = ("_histogram", "_t0")

    def __init__(self, histogram: Histogram):
        self._histogram = histogram
        self._t0 = 0.0

    def __enter__(self) -> "_HistogramTimer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._t0)


class MetricsRegistry:
    """Named instruments, created on first touch, merged across processes."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter called *name* (created on first use)."""
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        """The gauge called *name* (created on first use)."""
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str) -> Histogram:
        """The histogram called *name* (created on first use)."""
        try:
            return self._histograms[name]
        except KeyError:
            with self._lock:
                return self._histograms.setdefault(name, Histogram())

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Current state as plain nested dicts (picklable, diffable)."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in self._counters.items()},
                "gauges": {k: g.value for k, g in self._gauges.items()},
                "histograms": {
                    k: h.as_dict() for k, h in self._histograms.items()
                },
            }

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Fold a worker's snapshot in: counters add, gauges take the
        incoming value, histograms combine count/sum/min/max."""
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            hist = self.histogram(name)
            count = summary.get("count", 0)
            if not count:
                continue
            hist.count += count
            hist.total += summary.get("sum", 0.0)
            low, high = summary.get("min", 0.0), summary.get("max", 0.0)
            hist.min = low if hist.min is None else min(hist.min, low)
            hist.max = high if hist.max is None else max(hist.max, high)

    def clear(self) -> None:
        """Drop every instrument (tests and worker reuse)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def __repr__(self) -> str:
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )


def diff_snapshots(
    after: Dict[str, Dict[str, Any]], before: Dict[str, Dict[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """What happened between two snapshots of the *same* registry.

    Counters subtract; gauges report the *after* value; histograms
    subtract count/sum (min/max are not invertible and keep the after
    values).  Instruments absent from *before* are treated as zero.
    """
    before_counters = before.get("counters", {})
    counters = {
        name: value - before_counters.get(name, 0)
        for name, value in after.get("counters", {}).items()
    }
    histograms = {}
    before_hists = before.get("histograms", {})
    for name, summary in after.get("histograms", {}).items():
        prior = before_hists.get(name, {})
        histograms[name] = {
            "count": summary["count"] - prior.get("count", 0),
            "sum": summary["sum"] - prior.get("sum", 0.0),
            "min": summary["min"],
            "max": summary["max"],
        }
    return {
        "counters": counters,
        "gauges": dict(after.get("gauges", {})),
        "histograms": histograms,
    }


_AMBIENT = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide ambient registry."""
    return _AMBIENT


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install *registry* as ambient; returns the previous one."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = registry
    return previous
