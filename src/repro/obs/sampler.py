"""Per-unit resource sampling via ``resource.getrusage``.

Battery workers wrap each work unit in a :class:`ResourceSampler`:
:meth:`start` snapshots the process's CPU counters, :meth:`stop` returns a
:class:`ResourceUsage` with the CPU seconds *this unit* consumed and the
worker's peak RSS observed so far.  Peak RSS is a process-lifetime
high-water mark (the kernel never lowers ``ru_maxrss``), so per-unit
values are upper bounds that become exact for the unit that set the peak —
which is precisely the unit a memory investigation cares about.

``resource`` is POSIX-only; on platforms without it every sample degrades
to zeros rather than failing, so instrumented code needs no platform
guards.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass
from typing import Any, Dict

try:  # pragma: no cover - resource is present on every POSIX CI target
    import resource as _resource
except ImportError:  # pragma: no cover - e.g. Windows
    _resource = None

__all__ = ["ResourceUsage", "ResourceSampler", "sample_rusage", "peak_rss_kb"]


def _maxrss_kb(ru) -> float:
    """Normalize ``ru_maxrss`` to kilobytes (Linux reports KB, macOS bytes)."""
    raw = float(ru.ru_maxrss)
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return raw / 1024.0
    return raw


def sample_rusage() -> Dict[str, float]:
    """One self-rusage sample: peak RSS (KB) and cumulative CPU seconds."""
    if _resource is None:  # pragma: no cover - non-POSIX
        return {"max_rss_kb": 0.0, "cpu_user": 0.0, "cpu_system": 0.0}
    ru = _resource.getrusage(_resource.RUSAGE_SELF)
    return {
        "max_rss_kb": _maxrss_kb(ru),
        "cpu_user": ru.ru_utime,
        "cpu_system": ru.ru_stime,
    }


def peak_rss_kb(status_path: str = "/proc/self/status") -> float:
    """Peak RSS (KB) of *this process's own work*, fork-safe on Linux.

    ``ru_maxrss`` has a sharp edge for subprocess measurement: a child
    forked from a large parent inherits the parent's resident set in its
    pre-exec address space, and ``execve`` folds that high-water mark into
    the accounting ``getrusage`` reports — so a 200 MB workload spawned
    from a 1 GB parent claims a ~1 GB peak.  ``/proc/self/status``'s
    ``VmHWM`` tracks only the current (post-exec) address space, which is
    the number an RSS budget actually wants; this helper prefers it and
    falls back to ``ru_maxrss`` where procfs is unavailable (or the file
    holds no ``VmHWM`` line).  *status_path* exists so tests can exercise
    both branches on any platform.
    """
    try:
        with open(status_path, "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return float(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return sample_rusage()["max_rss_kb"]


@dataclass(frozen=True)
class ResourceUsage:
    """What one sampled region consumed.

    ``cpu_seconds`` is the user+system CPU delta across the region;
    ``max_rss_kb`` is the process's peak RSS at region end (high-water
    mark, see module docstring); ``wall_seconds`` the elapsed wall clock.
    """

    max_rss_kb: float
    cpu_user: float
    cpu_system: float
    wall_seconds: float

    @property
    def cpu_seconds(self) -> float:
        """User + system CPU seconds consumed in the region."""
        return self.cpu_user + self.cpu_system

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what workers ship back, journals record)."""
        return {
            "max_rss_kb": round(self.max_rss_kb, 1),
            "cpu_seconds": round(self.cpu_seconds, 6),
            "cpu_user": round(self.cpu_user, 6),
            "cpu_system": round(self.cpu_system, 6),
            "wall_seconds": round(self.wall_seconds, 6),
        }


class ResourceSampler:
    """start()/stop() bracket producing a :class:`ResourceUsage`."""

    def __init__(self):
        self._before: Dict[str, float] = {}
        self._t0 = 0.0

    def start(self) -> "ResourceSampler":
        """Snapshot CPU counters and the wall clock."""
        self._before = sample_rusage()
        self._t0 = time.perf_counter()
        return self

    def stop(self) -> ResourceUsage:
        """Sample again and return the region's usage."""
        wall = time.perf_counter() - self._t0
        after = sample_rusage()
        return ResourceUsage(
            max_rss_kb=after["max_rss_kb"],
            cpu_user=max(0.0, after["cpu_user"] - self._before.get("cpu_user", 0.0)),
            cpu_system=max(
                0.0, after["cpu_system"] - self._before.get("cpu_system", 0.0)
            ),
            wall_seconds=wall,
        )

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        pass
