"""repro.obs — the observability layer.

Four instruments and their plumbing, threaded through the generators, the
metric battery, the cache, and the experiment harnesses:

* :mod:`~repro.obs.tracer` — hierarchical span tracing (parent/child ids,
  thread- and process-safe, near-zero cost when disabled);
* :mod:`~repro.obs.metrics` — in-process counters/gauges/histograms,
  aggregated across worker processes back to the parent;
* :mod:`~repro.obs.sampler` — per-unit peak RSS and CPU time via
  ``resource.getrusage`` in the workers;
* :mod:`~repro.obs.profiler` — opt-in per-unit ``cProfile`` dumps with a
  merged hotspot table;
* :mod:`~repro.obs.exporters` — Chrome trace-event JSON (Perfetto /
  ``about://tracing``) and Prometheus text exposition;
* :mod:`~repro.obs.analysis` — journal/trace reports (the ``repro
  journal`` CLI surface);
* :mod:`~repro.obs.perf` — machine-readable benchmark records
  (``BENCH_<id>.json``), the declarative acceptance-floor file, and the
  baseline comparator (the ``repro perf`` CLI surface).

Import discipline: this package depends only on the standard library, so
any layer of the system — graph code, generators, core, experiments — may
instrument itself without creating a cycle.
"""

from .analysis import (
    group_runs,
    journal_summary_tables,
    load_trace_spans,
    span_aggregate,
    summarize_run,
    tail_lines,
)
from .exporters import (
    export_chrome_trace,
    render_prometheus,
    to_chrome_trace,
    validate_chrome_trace,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    set_registry,
)
from .perf import (
    BenchRecord,
    check_floors,
    compare_records,
    environment_fingerprint,
    load_floors,
    load_records,
    validate_record,
)
from .profiler import merge_profiles, profile_unit
from .sampler import ResourceSampler, ResourceUsage, peak_rss_kb, sample_rusage
from .tracer import NULL_SPAN, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "NULL_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "diff_snapshots",
    "ResourceSampler",
    "ResourceUsage",
    "peak_rss_kb",
    "sample_rusage",
    "profile_unit",
    "merge_profiles",
    "to_chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "render_prometheus",
    "group_runs",
    "summarize_run",
    "journal_summary_tables",
    "tail_lines",
    "span_aggregate",
    "load_trace_spans",
    "BenchRecord",
    "validate_record",
    "load_records",
    "load_floors",
    "check_floors",
    "compare_records",
    "environment_fingerprint",
]
