"""Perf telemetry: machine-readable benchmark records, baselines, floors.

Every benchmark run leaves a :class:`BenchRecord` — one JSON file,
``BENCH_<id>.json``, written by the shared harness fixtures in
``benchmarks/conftest.py`` — carrying what the prose tables cannot: wall
time, peak RSS, the backend/engine the run resolved to, cache hit/miss
deltas, the merged :class:`~repro.obs.metrics.MetricsRegistry` delta, the
bench's own published measurements (speedups, budgets), and an
environment fingerprint (git commit, python/numpy versions, CPU count)
that makes two records comparable or provably incomparable.

Three artifacts close the loop:

* **records** — ``benchmarks/output/BENCH_<id>.json``, one per bench run,
  schema-checked by :func:`validate_record`;
* **floors** — ``benchmarks/perf_floors.json``, the declarative
  acceptance bounds that used to live as ad-hoc ``assert`` lines inside
  individual bench scripts (generator >= 2x median, resilience >= 3x,
  the full-scale RSS budgets, obs overhead < 5%), checked by
  :func:`check_floors` both per-run (the bench fixtures) and fleet-wide
  (``repro perf compare``);
* **baseline** — ``benchmarks/perf_baseline.json``, a committed roll-up
  of one blessed run (:func:`build_baseline`), against which
  :func:`compare_records` applies noise-tolerant thresholds: a wall-time
  or RSS drift must clear both a *ratio* and an *absolute slack* before
  it flags, so loaded CI boxes do not cry wolf.

Import discipline: like the rest of :mod:`repro.obs` this module needs
only the standard library at import time (numpy/git are probed lazily
inside :func:`environment_fingerprint`), so any layer may use it.
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchRecord",
    "FloorCheck",
    "BenchDelta",
    "PerfComparison",
    "environment_fingerprint",
    "git_commit",
    "sanitize_bench_id",
    "validate_record",
    "record_path",
    "load_records",
    "load_floors",
    "floors_for",
    "check_floors",
    "build_baseline",
    "load_baseline",
    "compare_records",
    "comparison_tables",
    "trajectory_table",
]

PathLike = Union[str, Path]

#: Bump when the record layout changes; readers refuse newer schemas.
BENCH_SCHEMA_VERSION = 1

#: Record filename pattern: ``BENCH_<id>.json``.
RECORD_PREFIX = "BENCH_"

#: Default noise tolerances for baseline comparison.  A regression must
#: clear BOTH the ratio and the absolute slack — micro-benches jitter by
#: large ratios over tiny absolute times, end-to-end benches the reverse.
DEFAULT_WALL_TOLERANCE = 2.0
DEFAULT_WALL_SLACK_SECONDS = 1.0
DEFAULT_RSS_TOLERANCE = 1.5
DEFAULT_RSS_SLACK_KB = 20_000.0

_ID_OK = re.compile(r"[^A-Za-z0-9_.-]+")

_REQUIRED_FIELDS = {
    "schema": int,
    "bench_id": str,
    "params": dict,
    "values": dict,
    "wall_seconds": (int, float),
    "peak_rss_kb": (int, float),
    "backend": str,
    "engine": str,
    "cache": dict,
    "metrics": dict,
    "environment": dict,
}

_REQUIRED_ENVIRONMENT = ("git_commit", "python", "cpu_count", "platform")


def sanitize_bench_id(raw: str) -> str:
    """Collapse *raw* to a filesystem/JSON-safe bench id."""
    cleaned = _ID_OK.sub("_", str(raw)).strip("_")
    if not cleaned:
        raise ValueError(f"bench id {raw!r} sanitizes to nothing")
    return cleaned


def git_commit(cwd: Optional[PathLike] = None) -> str:
    """The short git commit hash at *cwd* (or the CWD); ``"unknown"``
    when git or the repository is unavailable — a record from an sdist
    install is still a record."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=str(cwd) if cwd is not None else None,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else "unknown"


def environment_fingerprint(cwd: Optional[PathLike] = None) -> Dict[str, Any]:
    """Where a record was measured: commit, interpreter, numpy, CPUs.

    Two records are *comparable* when their fingerprints agree on
    everything but the commit; the comparator reports fingerprint drift
    instead of silently attributing a hardware change to the code.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in CI
        numpy_version = "absent"
    return {
        "git_commit": git_commit(cwd),
        "python": platform.python_version(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "cpu_count": os.cpu_count() or 1,
        "timestamp": round(time.time(), 3),
    }


@dataclass
class BenchRecord:
    """One benchmark run, in comparable form.

    ``values`` holds the bench's own published measurements — the numbers
    the declarative floors bound (median speedups, subprocess RSS,
    overhead shares); ``metrics`` holds the ambient registry delta across
    the run (counters/gauges/histograms, the
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` shape); ``cache``
    the cache-counter delta pulled out of it for at-a-glance hit rates.
    """

    bench_id: str
    params: Dict[str, Any] = field(default_factory=dict)
    values: Dict[str, float] = field(default_factory=dict)
    wall_seconds: float = 0.0
    peak_rss_kb: float = 0.0
    backend: str = "auto"
    engine: str = "auto"
    cache: Dict[str, int] = field(default_factory=dict)
    metrics: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    environment: Dict[str, Any] = field(default_factory=dict)
    schema: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, schema-stamped (what lands in the JSON file)."""
        return {
            "schema": self.schema,
            "bench_id": self.bench_id,
            "params": dict(self.params),
            "values": dict(self.values),
            "wall_seconds": round(float(self.wall_seconds), 6),
            "peak_rss_kb": round(float(self.peak_rss_kb), 1),
            "backend": self.backend,
            "engine": self.engine,
            "cache": dict(self.cache),
            "metrics": self.metrics,
            "environment": dict(self.environment),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchRecord":
        """Rebuild (and validate) a record from its dict form."""
        validate_record(data)
        return cls(
            bench_id=data["bench_id"],
            params=dict(data["params"]),
            values=dict(data["values"]),
            wall_seconds=float(data["wall_seconds"]),
            peak_rss_kb=float(data["peak_rss_kb"]),
            backend=data["backend"],
            engine=data["engine"],
            cache=dict(data["cache"]),
            metrics=dict(data["metrics"]),
            environment=dict(data["environment"]),
            schema=int(data["schema"]),
        )

    def write(self, directory: PathLike) -> Path:
        """Validate and write this record as ``BENCH_<id>.json``."""
        data = self.to_dict()
        validate_record(data)
        path = record_path(directory, self.bench_id)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(data, indent=2, sort_keys=True, default=repr) + "\n",
            encoding="utf-8",
        )
        return path


def validate_record(data: Mapping[str, Any]) -> None:
    """Assert *data* is a schema-valid record dict.

    Raises ``ValueError`` naming every problem at once — a half-valid
    record is a bug in the emitting fixture, and the message should show
    the whole shape of the breakage, not the first field of it.
    """
    problems: List[str] = []
    if not isinstance(data, Mapping):
        raise ValueError(f"bench record must be a mapping, got {type(data).__name__}")
    for key, types in _REQUIRED_FIELDS.items():
        if key not in data:
            problems.append(f"missing field {key!r}")
        elif not isinstance(data[key], types):
            problems.append(
                f"field {key!r} should be {types}, got {type(data[key]).__name__}"
            )
    if isinstance(data.get("schema"), int) and data["schema"] > BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema v{data['schema']} is newer than this build's "
            f"v{BENCH_SCHEMA_VERSION}"
        )
    if isinstance(data.get("bench_id"), str):
        if not data["bench_id"] or _ID_OK.search(data["bench_id"]):
            problems.append(f"bench_id {data['bench_id']!r} is not a clean id")
    if isinstance(data.get("values"), dict):
        for key, value in data["values"].items():
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"values[{key!r}] is not a number: {value!r}")
    if isinstance(data.get("environment"), dict):
        for key in _REQUIRED_ENVIRONMENT:
            if key not in data["environment"]:
                problems.append(f"environment missing {key!r}")
    if problems:
        raise ValueError(
            "invalid bench record: " + "; ".join(problems)
        )


def record_path(directory: PathLike, bench_id: str) -> Path:
    """Where ``bench_id``'s record lives under *directory*."""
    return Path(directory) / f"{RECORD_PREFIX}{sanitize_bench_id(bench_id)}.json"


def load_records(directory: PathLike) -> Dict[str, BenchRecord]:
    """Every ``BENCH_*.json`` under *directory*, keyed by bench id.

    A malformed record file raises — a corrupt record silently dropped
    from a regression gate is the exact failure mode this subsystem
    exists to prevent.
    """
    directory = Path(directory)
    records: Dict[str, BenchRecord] = {}
    for path in sorted(directory.glob(f"{RECORD_PREFIX}*.json")):
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
            record = BenchRecord.from_dict(data)
        except (OSError, ValueError) as exc:
            raise ValueError(f"{path}: {exc}") from None
        records[record.bench_id] = record
    return records


# ---------------------------------------------------------------- floors


def load_floors(path: PathLike) -> Dict[str, Dict[str, Any]]:
    """Parse and validate the declarative floors file.

    The file maps floor names to ``{"bench": id, "value": key,
    "min"|"max": bound}`` entries (plus a free-form ``note``); every
    entry must bound exactly one direction.
    """
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    floors = data.get("floors")
    if not isinstance(floors, dict):
        raise ValueError(f"{path}: expected a top-level 'floors' mapping")
    for name, floor in floors.items():
        if not isinstance(floor, Mapping):
            raise ValueError(f"{path}: floor {name!r} is not a mapping")
        for key in ("bench", "value"):
            if not isinstance(floor.get(key), str):
                raise ValueError(f"{path}: floor {name!r} needs a string {key!r}")
        if ("min" in floor) == ("max" in floor):
            raise ValueError(
                f"{path}: floor {name!r} must set exactly one of min/max"
            )
    return dict(floors)


@dataclass(frozen=True)
class FloorCheck:
    """One floor evaluated against one (possibly absent) record.

    ``status`` is ``"ok"``, ``"violation"``, or ``"skipped"`` (no record
    for the floor's bench — compare runs on subsets); ``observed`` is
    None for skipped floors and for records that never published the
    bounded value (which is itself a violation: a gate whose input went
    missing must not pass silently).
    """

    floor: str
    bench: str
    value: str
    kind: str  # "min" | "max"
    bound: float
    observed: Optional[float]
    status: str

    def describe(self) -> str:
        """One human line: what was required, what was seen."""
        op = ">=" if self.kind == "min" else "<="
        seen = "missing" if self.observed is None else f"{self.observed:g}"
        return (
            f"{self.floor}: {self.bench}.{self.value} {op} {self.bound:g} "
            f"(observed {seen}) -> {self.status}"
        )


def floors_for(
    bench_id: str, floors: Mapping[str, Mapping[str, Any]]
) -> Dict[str, Dict[str, Any]]:
    """The subset of *floors* that bound *bench_id*."""
    return {
        name: dict(floor)
        for name, floor in floors.items()
        if floor.get("bench") == bench_id
    }


def check_floors(
    records: Mapping[str, BenchRecord],
    floors: Mapping[str, Mapping[str, Any]],
) -> List[FloorCheck]:
    """Evaluate every floor against the record set."""
    checks: List[FloorCheck] = []
    for name in sorted(floors):
        floor = floors[name]
        kind = "min" if "min" in floor else "max"
        bound = float(floor[kind])
        record = records.get(floor["bench"])
        if record is None:
            status = "skipped"
            observed: Optional[float] = None
        else:
            raw = record.values.get(floor["value"])
            if raw is None:
                observed = None
                status = "violation"
            else:
                observed = float(raw)
                ok = observed >= bound if kind == "min" else observed <= bound
                status = "ok" if ok else "violation"
        checks.append(
            FloorCheck(
                floor=name,
                bench=floor["bench"],
                value=floor["value"],
                kind=kind,
                bound=bound,
                observed=observed,
                status=status,
            )
        )
    return checks


# -------------------------------------------------------------- baseline


def build_baseline(
    records: Mapping[str, BenchRecord], note: str = ""
) -> Dict[str, Any]:
    """Roll a record set into the committed-baseline shape."""
    benches = {
        bench_id: {
            "wall_seconds": round(record.wall_seconds, 6),
            "peak_rss_kb": round(record.peak_rss_kb, 1),
            "values": dict(record.values),
        }
        for bench_id, record in sorted(records.items())
    }
    return {
        "version": 1,
        "note": note,
        "environment": environment_fingerprint(),
        "benches": benches,
    }


def load_baseline(path: PathLike) -> Dict[str, Any]:
    """Parse a baseline file, validating its minimal shape."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, Mapping) or not isinstance(
        data.get("benches"), Mapping
    ):
        raise ValueError(f"{path}: not a perf baseline (no 'benches' mapping)")
    return dict(data)


# ------------------------------------------------------------ comparator


@dataclass(frozen=True)
class BenchDelta:
    """One bench's current run vs the baseline.

    ``status``: ``"ok"`` (inside tolerance), ``"regression"`` /
    ``"improvement"`` (outside it, in either direction, for either wall
    or RSS), or ``"new"`` (no baseline entry).
    """

    bench_id: str
    wall_seconds: float
    base_wall: Optional[float]
    peak_rss_kb: float
    base_rss: Optional[float]
    status: str
    detail: str = ""

    @property
    def wall_ratio(self) -> Optional[float]:
        """current / baseline wall time (None without a baseline entry)."""
        if not self.base_wall:
            return None
        return self.wall_seconds / self.base_wall

    @property
    def rss_ratio(self) -> Optional[float]:
        """current / baseline peak RSS (None without a baseline entry)."""
        if not self.base_rss:
            return None
        return self.peak_rss_kb / self.base_rss


@dataclass
class PerfComparison:
    """What :func:`compare_records` found: per-bench deltas + floor checks."""

    deltas: List[BenchDelta]
    floor_checks: List[FloorCheck]
    environment: Dict[str, Any] = field(default_factory=dict)
    baseline_environment: Dict[str, Any] = field(default_factory=dict)

    @property
    def regressions(self) -> List[BenchDelta]:
        """Benches that drifted past the noise-tolerant thresholds."""
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def violations(self) -> List[FloorCheck]:
        """Acceptance floors the record set failed."""
        return [c for c in self.floor_checks if c.status == "violation"]

    @property
    def skipped_floors(self) -> List[FloorCheck]:
        """Floors whose bench has no record in this set (subset runs)."""
        return [c for c in self.floor_checks if c.status == "skipped"]

    @property
    def ok(self) -> bool:
        """True when nothing regressed and no floor was violated."""
        return not self.regressions and not self.violations


def _classify(
    current: float,
    base: Optional[float],
    ratio_tolerance: float,
    slack: float,
) -> str:
    """ok/regression/improvement for one scalar, noise-tolerantly.

    Either direction must clear both the ratio and the absolute slack;
    anything else is noise and reports ``ok``.
    """
    if base is None:
        return "new"
    if base <= 0:
        return "ok"
    if current > base * ratio_tolerance and current - base > slack:
        return "regression"
    if current < base / ratio_tolerance and base - current > slack:
        return "improvement"
    return "ok"


def compare_records(
    records: Mapping[str, BenchRecord],
    baseline: Mapping[str, Any],
    floors: Optional[Mapping[str, Mapping[str, Any]]] = None,
    wall_tolerance: float = DEFAULT_WALL_TOLERANCE,
    wall_slack_seconds: float = DEFAULT_WALL_SLACK_SECONDS,
    rss_tolerance: float = DEFAULT_RSS_TOLERANCE,
    rss_slack_kb: float = DEFAULT_RSS_SLACK_KB,
) -> PerfComparison:
    """Current records vs the committed baseline, plus floor checks.

    Wall time and peak RSS are the baseline-compared axes (they measure
    the machine); the bench-published ``values`` are gated by the
    declarative *floors* only (they measure the claim), and surface in
    the report tables for trajectory reading.
    """
    benches = baseline.get("benches", {})
    deltas: List[BenchDelta] = []
    for bench_id in sorted(records):
        record = records[bench_id]
        base = benches.get(bench_id)
        base_wall = float(base["wall_seconds"]) if base else None
        base_rss = float(base["peak_rss_kb"]) if base else None
        wall_status = _classify(
            record.wall_seconds, base_wall, wall_tolerance, wall_slack_seconds
        )
        rss_status = _classify(
            record.peak_rss_kb, base_rss, rss_tolerance, rss_slack_kb
        )
        if base is None:
            status, detail = "new", "no baseline entry"
        elif "regression" in (wall_status, rss_status):
            status = "regression"
            axes = [
                name
                for name, axis in (("wall", wall_status), ("rss", rss_status))
                if axis == "regression"
            ]
            status_detail = "+".join(axes)
            detail = f"{status_detail} outside tolerance"
        elif "improvement" in (wall_status, rss_status):
            status, detail = "improvement", "faster/leaner than baseline"
        else:
            status, detail = "ok", ""
        deltas.append(
            BenchDelta(
                bench_id=bench_id,
                wall_seconds=record.wall_seconds,
                base_wall=base_wall,
                peak_rss_kb=record.peak_rss_kb,
                base_rss=base_rss,
                status=status,
                detail=detail,
            )
        )
    floor_checks = check_floors(records, floors or {})
    any_record = next(iter(records.values()), None)
    return PerfComparison(
        deltas=deltas,
        floor_checks=floor_checks,
        environment=dict(any_record.environment) if any_record else {},
        baseline_environment=dict(baseline.get("environment", {})),
    )


# ---------------------------------------------------------------- tables

Table = Tuple[str, List[str], List[List[Any]]]


def _ratio_cell(ratio: Optional[float]) -> str:
    return "-" if ratio is None else f"{ratio:.2f}x"


def comparison_tables(comparison: PerfComparison) -> List[Table]:
    """Render a comparison as ``(title, headers, rows)`` table triples
    (the :mod:`repro.obs.analysis` convention; the CLI formats them)."""
    delta_rows = [
        [
            d.bench_id,
            round(d.wall_seconds, 3),
            "-" if d.base_wall is None else round(d.base_wall, 3),
            _ratio_cell(d.wall_ratio),
            round(d.peak_rss_kb / 1024.0, 1),
            "-" if d.base_rss is None else round(d.base_rss / 1024.0, 1),
            _ratio_cell(d.rss_ratio),
            d.status,
        ]
        for d in comparison.deltas
    ]
    tables: List[Table] = [
        (
            "benchmarks vs baseline",
            ["bench", "wall_s", "base_s", "ratio", "rss_mb", "base_mb",
             "ratio", "status"],
            delta_rows,
        )
    ]
    if comparison.floor_checks:
        floor_rows = [
            [
                c.floor,
                f"{c.bench}.{c.value}",
                (">=" if c.kind == "min" else "<=") + f" {c.bound:g}",
                "-" if c.observed is None else round(c.observed, 4),
                c.status,
            ]
            for c in comparison.floor_checks
        ]
        tables.append(
            ("acceptance floors", ["floor", "value", "bound", "observed",
                                   "status"], floor_rows)
        )
    base_env = comparison.baseline_environment
    env = comparison.environment
    drift = [
        [key, base_env.get(key, "?"), env.get(key, "?")]
        for key in ("git_commit", "python", "numpy", "platform", "cpu_count")
        if base_env.get(key) != env.get(key)
    ]
    if drift:
        tables.append(
            ("environment drift vs baseline", ["field", "baseline", "now"],
             drift)
        )
    return tables


def trajectory_table(
    records: Mapping[str, BenchRecord],
    baseline: Optional[Mapping[str, Any]] = None,
) -> Table:
    """Per-bench published values next to their baseline counterparts."""
    benches = (baseline or {}).get("benches", {})
    rows: List[List[Any]] = []
    for bench_id in sorted(records):
        record = records[bench_id]
        base_values = (benches.get(bench_id) or {}).get("values", {})
        if not record.values:
            rows.append([bench_id, "-", "-", "-"])
        for key in sorted(record.values):
            base = base_values.get(key)
            rows.append(
                [
                    f"{bench_id}.{key}",
                    round(float(record.values[key]), 4),
                    "-" if base is None else round(float(base), 4),
                    "-"
                    if base in (None, 0)
                    else f"{float(record.values[key]) / float(base):.2f}x",
                ]
            )
    return (
        "published bench values (current vs baseline)",
        ["value", "current", "baseline", "ratio"],
        rows,
    )
