"""Journal and trace analysis: the library behind ``repro journal``.

A battery leaves two artifacts — the JSONL run journal and (optionally) a
Chrome trace — and this module turns either into the reports an operator
actually wants: per-model and per-metric-group wall time, worker skew,
retry counts, and cache efficiency, grouped by ``run_id`` so a journal
that accumulated several runs reads as several runs.

Everything returns plain ``(title, headers, rows)`` table triples; the CLI
renders them with :func:`repro.core.report.format_table`, tests assert on
the rows directly.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

__all__ = [
    "group_runs",
    "summarize_run",
    "journal_summary_tables",
    "tail_lines",
    "span_aggregate",
    "load_trace_spans",
]

#: Key for events written before run_id stamping existed (or emitted by
#: foreign tooling); they still group and summarize.
UNSTAMPED = "-"

Table = Tuple[str, List[str], List[List[Any]]]


def group_runs(
    events: Sequence[Mapping[str, Any]]
) -> Dict[str, List[Mapping[str, Any]]]:
    """Partition journal events by ``run_id``, preserving first-seen order.

    Events with no ``run_id`` (pre-stamping journals) land under
    :data:`UNSTAMPED`.
    """
    runs: Dict[str, List[Mapping[str, Any]]] = {}
    for event in events:
        runs.setdefault(str(event.get("run_id", UNSTAMPED)), []).append(event)
    return runs


def summarize_run(events: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate one run's events into a stats dict.

    Keys: ``config`` (from battery_start), ``units_ok``/``units_failed``/
    ``retries``/``cache_hits``, ``elapsed``, ``models`` (label → dict with
    units/seconds/max_rss_kb/cpu_seconds), ``groups`` (group → seconds,
    including ``generate``), ``workers`` (pid → busy seconds), ``skew``
    (max/mean worker busy ratio, 1.0 when balanced or trivial).
    """
    summary: Dict[str, Any] = {
        "config": {},
        "units_ok": 0,
        "units_failed": 0,
        "retries": 0,
        "cache_hits": 0,
        "elapsed": None,
        "cache": {},
        "models": {},
        "groups": {},
        "workers": {},
    }
    for event in events:
        kind = event.get("event")
        if kind == "battery_start":
            summary["config"] = {
                key: event[key]
                for key in ("models", "n", "seeds", "jobs", "timeout", "retries")
                if key in event
            }
        elif kind == "cache_hit":
            summary["cache_hits"] += 1
        elif kind == "unit_retry":
            summary["retries"] += 1
        elif kind == "unit_fail":
            summary["units_failed"] += 1
        elif kind == "unit_finish":
            summary["units_ok"] += 1
            seconds = float(event.get("seconds", 0.0))
            model = str(event.get("model", "?"))
            slot = summary["models"].setdefault(
                model,
                {"units": 0, "seconds": 0.0, "max_rss_kb": 0.0, "cpu_seconds": 0.0},
            )
            slot["units"] += 1
            slot["seconds"] += seconds
            slot["max_rss_kb"] = max(
                slot["max_rss_kb"], float(event.get("max_rss_kb", 0.0))
            )
            slot["cpu_seconds"] += float(event.get("cpu_seconds", 0.0))
            gen = event.get("gen_seconds")
            if gen is not None:
                summary["groups"]["generate"] = (
                    summary["groups"].get("generate", 0.0) + float(gen)
                )
            for group, group_seconds in (event.get("groups") or {}).items():
                summary["groups"][group] = (
                    summary["groups"].get(group, 0.0) + float(group_seconds)
                )
            worker = event.get("worker")
            if worker is not None:
                summary["workers"][worker] = (
                    summary["workers"].get(worker, 0.0) + seconds
                )
        elif kind == "battery_end":
            summary["elapsed"] = event.get("elapsed")
            summary["cache"] = dict(event.get("cache") or {})
    busy = list(summary["workers"].values())
    if busy and sum(busy) > 0:
        mean = sum(busy) / len(busy)
        summary["skew"] = (max(busy) / mean) if mean > 0 else 1.0
    else:
        summary["skew"] = 1.0
    return summary


def journal_summary_tables(
    events: Sequence[Mapping[str, Any]], run_id: str = ""
) -> List[Table]:
    """Per-run report tables for a journal's events.

    With *run_id* given, only that run is reported; otherwise every run in
    first-seen order.  Unknown run ids raise ``KeyError`` naming the ids
    that do exist.
    """
    runs = group_runs(events)
    if run_id:
        if run_id not in runs:
            known = ", ".join(runs) or "none"
            raise KeyError(f"run {run_id!r} not in journal; runs present: {known}")
        runs = {run_id: runs[run_id]}
    tables: List[Table] = []
    for rid, run_events in runs.items():
        stats = summarize_run(run_events)
        config = stats["config"]
        total = stats["units_ok"] + stats["units_failed"]
        cache = stats["cache"]
        probes = stats["cache_hits"] + cache.get("misses", 0)
        hit_rate = (stats["cache_hits"] / probes) if probes else 0.0
        overview_rows = [
            ["models", ",".join(config.get("models", [])) or "?"],
            ["n", config.get("n", "?")],
            ["jobs", config.get("jobs", "?")],
            ["units ok/failed", f"{stats['units_ok']}/{stats['units_failed']}"],
            ["retries", stats["retries"]],
            ["cache hits", stats["cache_hits"]],
            ["cache hit rate", round(hit_rate, 4)],
            ["worker skew", round(stats["skew"], 4)],
            ["elapsed s", stats["elapsed"] if stats["elapsed"] is not None else "?"],
        ]
        tables.append((f"run {rid}: overview", ["field", "value"], overview_rows))
        if stats["models"]:
            model_rows = [
                [
                    model,
                    slot["units"],
                    round(slot["seconds"], 4),
                    round(slot["seconds"] / slot["units"], 4) if slot["units"] else 0,
                    round(slot["cpu_seconds"], 4),
                    round(slot["max_rss_kb"], 1),
                ]
                for model, slot in sorted(stats["models"].items())
            ]
            tables.append(
                (
                    f"run {rid}: per-model wall time",
                    ["model", "units", "seconds", "mean", "cpu_s", "max_rss_kb"],
                    model_rows,
                )
            )
        if stats["groups"]:
            group_total = sum(stats["groups"].values()) or 1.0
            group_rows = [
                [group, round(seconds, 4), round(seconds / group_total, 4)]
                for group, seconds in sorted(
                    stats["groups"].items(), key=lambda kv: -kv[1]
                )
            ]
            tables.append(
                (f"run {rid}: per-group seconds", ["group", "seconds", "share"], group_rows)
            )
        if stats["workers"]:
            worker_rows = [
                [pid, round(seconds, 4)]
                for pid, seconds in sorted(
                    stats["workers"].items(), key=lambda kv: -kv[1]
                )
            ]
            tables.append(
                (f"run {rid}: worker busy seconds", ["worker", "seconds"], worker_rows)
            )
        if total == 0 and not stats["cache_hits"]:
            tables.append(
                (f"run {rid}: (no unit events)", ["field", "value"], [])
            )
    return tables


def tail_lines(
    events: Sequence[Mapping[str, Any]], count: int = 20
) -> List[str]:
    """The last *count* events, one compact human line each."""
    lines = []
    for event in list(events)[-count:]:
        ts = event.get("ts")
        stamp = f"{ts:.3f}" if isinstance(ts, (int, float)) else "?"
        name = event.get("event", "?")
        extras = []
        for key in ("run_id", "model", "replicate", "group", "status",
                    "seconds", "worker", "attempt"):
            if key in event:
                extras.append(f"{key}={event[key]}")
        lines.append(f"{stamp}  {name:<14} {' '.join(extras)}".rstrip())
    return lines


def load_trace_spans(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Read a Chrome trace file back into span-ish dicts (name, start,
    duration seconds, pid/tid, args)."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError(f"{path}: not a Chrome trace (no traceEvents)")
    spans = []
    for event in events:
        if event.get("ph") != "X":
            continue
        spans.append(
            {
                "name": event.get("name", "?"),
                "start": float(event.get("ts", 0.0)) / 1e6,
                "duration": float(event.get("dur", 0.0)) / 1e6,
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "args": dict(event.get("args", {})),
            }
        )
    return spans


def span_aggregate(
    spans: Sequence[Mapping[str, Any]], top: int = 0
) -> Table:
    """Aggregate spans by name: count, total/mean/max seconds, total-share.

    *top* truncates to the heaviest names (0 = all).  Accepts the dicts
    from :func:`load_trace_spans` or ``Span.as_dict`` output.
    """
    agg: Dict[str, List[float]] = {}
    for span in spans:
        cell = agg.setdefault(str(span["name"]), [0, 0.0, 0.0])
        duration = float(span.get("duration", 0.0))
        cell[0] += 1
        cell[1] += duration
        cell[2] = max(cell[2], duration)
    total = sum(cell[1] for cell in agg.values()) or 1.0
    rows = [
        [
            name,
            int(count),
            round(total_s, 6),
            round(total_s / count, 6) if count else 0.0,
            round(max_s, 6),
            round(total_s / total, 4),
        ]
        for name, (count, total_s, max_s) in sorted(
            agg.items(), key=lambda kv: -kv[1][1]
        )
    ]
    if top:
        rows = rows[:top]
    headers = ["span", "count", "total_s", "mean_s", "max_s", "share"]
    return "span aggregate", headers, rows
