"""Trace and metrics exporters.

Two wire formats, both deliberately boring:

* **Chrome trace-event JSON** — ``{"traceEvents": [...]}`` with complete
  (``"ph": "X"``) events, loadable in ``about://tracing`` or Perfetto.
  Timestamps are microseconds relative to the earliest span, durations are
  microseconds, and each span's ids/attributes land in ``args`` so the
  parent/child tree survives the round trip.
* **Prometheus text exposition** — counters, gauges, and histogram
  count/sum lines with dotted names rewritten to underscores, suitable for
  a textfile collector or a quick ``grep``.

:func:`validate_chrome_trace` is the library half of the CI smoke check:
it re-parses an exported file and asserts both the schema and that every
child span nests inside its parent's time window.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Union

from .metrics import MetricsRegistry

__all__ = [
    "to_chrome_trace",
    "export_chrome_trace",
    "validate_chrome_trace",
    "render_prometheus",
]

#: Slack (seconds) allowed when checking child-inside-parent time bounds:
#: wall-clock starts come from ``time.time()`` while durations come from
#: ``perf_counter``, so microsecond-scale disagreement is expected.
_NESTING_TOLERANCE = 0.005


def _span_dicts(spans: Sequence[Any]) -> List[Dict[str, Any]]:
    out = []
    for span in spans:
        out.append(span if isinstance(span, Mapping) else span.as_dict())
    return out


def to_chrome_trace(spans: Sequence[Any]) -> Dict[str, Any]:
    """Render spans (Span objects or their dicts) as a trace-event object."""
    dicts = _span_dicts(spans)
    origin = min((d["start"] for d in dicts), default=0.0)
    events: List[Dict[str, Any]] = []
    named_processes = set()
    for d in dicts:
        pid = d.get("pid", 0)
        if pid not in named_processes:
            named_processes.add(pid)
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": f"repro pid {pid}"},
                }
            )
        args = dict(d.get("attrs", {}))
        args["span_id"] = d["span_id"]
        if d.get("parent_id"):
            args["parent_id"] = d["parent_id"]
        events.append(
            {
                "name": d["name"],
                "ph": "X",
                "ts": round((d["start"] - origin) * 1e6, 3),
                "dur": round(d["duration"] * 1e6, 3),
                "pid": pid,
                "tid": d.get("tid", 0),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def export_chrome_trace(spans: Sequence[Any], path: Union[str, Path]) -> Path:
    """Write spans to *path* as Chrome trace-event JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(to_chrome_trace(spans), handle, default=repr)
    return path


def validate_chrome_trace(source: Union[str, Path, Mapping]) -> Dict[str, int]:
    """Assert *source* (a file path or parsed dict) is a well-formed trace.

    Checks the schema (``traceEvents`` list, required keys, non-negative
    times) and, for every span carrying a ``parent_id``, that the child's
    time window sits inside its parent's (within a small tolerance).
    Parent edges may cross processes.  Returns summary counts; raises
    ``ValueError`` on the first violation.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    else:
        data = source
    if not isinstance(data, Mapping) or not isinstance(
        data.get("traceEvents"), list
    ):
        raise ValueError("not a Chrome trace: missing traceEvents list")
    spans: Dict[str, Dict[str, Any]] = {}
    complete = 0
    for event in data["traceEvents"]:
        ph = event.get("ph")
        if ph == "M":
            continue
        if ph != "X":
            raise ValueError(f"unexpected event phase {ph!r}")
        for key in ("name", "ts", "dur", "pid", "tid", "args"):
            if key not in event:
                raise ValueError(f"trace event missing {key!r}: {event}")
        if event["ts"] < 0 or event["dur"] < 0:
            raise ValueError(f"negative time in event {event['name']!r}")
        complete += 1
        span_id = event["args"].get("span_id")
        if span_id:
            spans[span_id] = event
    nested = 0
    tolerance = _NESTING_TOLERANCE * 1e6
    for event in spans.values():
        parent_id = event["args"].get("parent_id")
        if not parent_id:
            continue
        parent = spans.get(parent_id)
        if parent is None:
            raise ValueError(
                f"span {event['name']!r} references missing parent {parent_id}"
            )
        # Parent links may cross processes (worker unit spans are adopted
        # under the coordinator's battery span); wall clocks agree on one
        # host, so the time-window check still applies.
        if event["ts"] < parent["ts"] - tolerance or (
            event["ts"] + event["dur"]
            > parent["ts"] + parent["dur"] + tolerance
        ):
            raise ValueError(
                f"span {event['name']!r} escapes its parent "
                f"{parent['name']!r} time window"
            )
        nested += 1
    return {"events": complete, "spans": len(spans), "nested": nested}


def _metric_name(name: str) -> str:
    """Dotted instrument name → Prometheus-legal metric name."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text


def _format_number(value: float) -> str:
    if isinstance(value, float) and math.isnan(value):
        return "NaN"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return repr(value)


def render_prometheus(
    source: Union[MetricsRegistry, Mapping[str, Mapping[str, Any]]]
) -> str:
    """Registry (or snapshot) as Prometheus text exposition format."""
    snapshot = source.snapshot() if isinstance(source, MetricsRegistry) else source
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_number(value)}")
    for name, value in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_number(value)}")
    for name, summary in sorted(snapshot.get("histograms", {}).items()):
        metric = _metric_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {_format_number(summary.get('count', 0))}")
        lines.append(f"{metric}_sum {_format_number(summary.get('sum', 0.0))}")
    return "\n".join(lines) + ("\n" if lines else "")
