"""Hierarchical span tracer.

A *span* is one timed region of work — generating a topology, computing a
metric group, probing the cache — with a name, a parent, wall-clock
start/duration, the process/thread it ran on, and free-form attributes.
Spans nest: entering ``tracer.span("generate", model="glp")`` inside an
open ``"unit"`` span records the parent/child edge, so a whole battery run
reconstructs as a tree (and renders as a flame chart via
:func:`repro.obs.exporters.export_chrome_trace`).

Design constraints, in priority order:

* **near-zero overhead when disabled** — the common case.  A disabled
  tracer's :meth:`Tracer.span` returns one shared no-op context manager
  without allocating anything, so instrumentation points cost a method
  call and an attribute check;
* **thread-safe** — the open-span stack is thread-local (concurrent
  threads each get a correct parent chain) and the finished-span list is
  lock-guarded;
* **process-safe** — span ids embed the originating pid, and
  :meth:`Tracer.adopt` re-parents spans recorded in a worker process under
  a parent span in the coordinating process, so cross-process traces stay
  a single tree.

The module keeps one *ambient* tracer (:func:`get_tracer` /
:func:`set_tracer`), disabled by default.  Instrumented library code emits
into the ambient tracer; harnesses that want a trace enable it (or install
their own) and export the collected spans.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "Tracer", "get_tracer", "set_tracer", "NULL_SPAN"]

_ids = itertools.count(1)  # next() is atomic in CPython


def _new_span_id() -> str:
    """Unique span id: pid-qualified so worker spans never collide."""
    return f"{os.getpid():x}-{next(_ids)}"


class Span:
    """One timed region.  Also the context manager that records itself.

    ``start`` is wall-clock epoch seconds (comparable across processes);
    ``duration`` comes from ``perf_counter`` deltas (monotonic, precise).
    Mutable on purpose: :meth:`Tracer.adopt` rewrites ``parent_id`` when
    grafting worker spans into the parent process's tree.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "start", "duration",
        "pid", "tid", "attrs", "_tracer", "_t0",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self.name = name
        self.span_id = _new_span_id()
        self.parent_id: Optional[str] = None
        self.start = 0.0
        self.duration = 0.0
        self.pid = os.getpid()
        self.tid = threading.get_ident()
        self.attrs = attrs
        self._tracer = tracer
        self._t0 = 0.0

    @property
    def end(self) -> float:
        """Wall-clock end time (start + duration)."""
        return self.start + self.duration

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes mid-span; returns self."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.parent_id = stack[-1].span_id if stack else None
        stack.append(self)
        self.start = time.time()
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._t0
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        else:  # pragma: no cover - misnested exit; drop rather than corrupt
            try:
                stack.remove(self)
            except ValueError:
                pass
        self._tracer._record(self)

    def as_dict(self) -> Dict[str, Any]:
        """Plain-dict form (what workers pickle back to the parent)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration": self.duration,
            "pid": self.pid,
            "tid": self.tid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Span":
        """Rebuild a span from :meth:`as_dict` output."""
        span = cls.__new__(cls)
        span.name = data["name"]
        span.span_id = data["span_id"]
        span.parent_id = data.get("parent_id")
        span.start = data["start"]
        span.duration = data["duration"]
        span.pid = data.get("pid", 0)
        span.tid = data.get("tid", 0)
        span.attrs = dict(data.get("attrs", {}))
        span._tracer = None
        span._t0 = 0.0
        return span

    def __repr__(self) -> str:
        return (
            f"<Span {self.name} id={self.span_id} parent={self.parent_id} "
            f"dur={self.duration:.6f}s>"
        )


class _NullSpan:
    """Shared no-op span: what a disabled tracer hands out."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


#: The singleton no-op span (never records anything).
NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished :class:`Span` objects when enabled.

    One tracer serves one process; worker processes build their own (see
    :func:`repro.core.battery._battery_task`) and ship span dicts back for
    :meth:`adopt`.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def span(self, name: str, **attrs: Any):
        """Open a span context (or the shared no-op when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, name, attrs)

    def current(self) -> Optional[Span]:
        """The innermost open span on this thread (None outside any)."""
        stack = self._stack()
        return stack[-1] if stack else None

    @property
    def spans(self) -> List[Span]:
        """Finished spans recorded so far (shared list — don't mutate)."""
        with self._lock:
            return list(self._spans)

    def drain(self) -> List[Span]:
        """Remove and return every finished span."""
        with self._lock:
            spans, self._spans = self._spans, []
        return spans

    def clear(self) -> None:
        """Discard every finished span."""
        with self._lock:
            self._spans.clear()

    def adopt(self, span_dicts, parent: Optional[Span] = None) -> List[Span]:
        """Graft spans recorded elsewhere (as dicts) into this tracer.

        Spans whose parent is absent from the incoming batch — the worker's
        roots — are re-parented under *parent* (when given), so a battery's
        unit spans hang off its ``battery`` span even though they were
        timed in another process.
        """
        spans = [Span.from_dict(d) for d in span_dicts]
        ids = {span.span_id for span in spans}
        for span in spans:
            if parent is not None and span.parent_id not in ids:
                span.parent_id = parent.span_id
        with self._lock:
            self._spans.extend(spans)
        return spans

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"<Tracer {state} spans={len(self._spans)}>"


_AMBIENT = Tracer(enabled=False)


def get_tracer() -> Tracer:
    """The process-wide ambient tracer (disabled until someone enables it)."""
    return _AMBIENT


def set_tracer(tracer: Tracer) -> Tracer:
    """Install *tracer* as the ambient one; returns the previous tracer."""
    global _AMBIENT
    previous = _AMBIENT
    _AMBIENT = tracer
    return previous
