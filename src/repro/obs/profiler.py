"""Opt-in per-unit ``cProfile`` hook and profile merging.

Profiling a parallel battery cannot use one global profiler — units run in
separate worker processes — so each unit profiles itself into its own
``.pstats`` file under ``--profile-dir`` and the parent merges them
afterwards into one top-N hotspot table.  The hook is strictly opt-in:
with no profile dir configured, :func:`profile_unit` returns a shared
no-op context manager and costs nothing.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import nullcontext
from pathlib import Path
from typing import Any, List, Optional, Tuple, Union

__all__ = ["profile_unit", "merge_profiles"]


class _UnitProfile:
    """Context manager profiling its block into ``<dir>/<label>.pstats``."""

    def __init__(self, directory: Path, label: str):
        self._path = directory / f"{label}.pstats"
        self._profile = cProfile.Profile()

    def __enter__(self) -> "_UnitProfile":
        self._profile.enable()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profile.disable()
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._profile.dump_stats(str(self._path))


def profile_unit(profile_dir: Union[None, str, Path], label: str):
    """A profiling context for one work unit (no-op when *profile_dir* is
    None).  *label* becomes the dump's filename stem; callers make it
    unique per unit (model, replicate)."""
    if profile_dir is None:
        return nullcontext()
    safe = "".join(ch if (ch.isalnum() or ch in "-_.") else "_" for ch in label)
    return _UnitProfile(Path(profile_dir), safe)


def merge_profiles(
    profile_dir: Union[str, Path], top: int = 15
) -> Tuple[List[str], List[List[Any]]]:
    """Merge every ``.pstats`` dump under *profile_dir* into one hotspot
    table: (headers, rows) sorted by cumulative seconds, *top* rows.

    Returns empty rows when the directory holds no dumps (e.g. every unit
    was served from the cache).
    """
    paths = sorted(Path(profile_dir).glob("*.pstats"))
    headers = ["function", "calls", "tottime", "cumtime"]
    if not paths:
        return headers, []
    stats = pstats.Stats(str(paths[0]))
    for path in paths[1:]:
        stats.add(str(path))
    entries = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = func
        where = Path(filename).name
        label = f"{where}:{line}({name})" if line else name
        entries.append((label, nc, tt, ct))
    entries.sort(key=lambda row: row[3], reverse=True)
    rows = [
        [label, calls, round(tottime, 6), round(cumtime, 6)]
        for label, calls, tottime, cumtime in entries[:top]
    ]
    return headers, rows
