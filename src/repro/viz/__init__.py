"""Headless text-mode plotting for terminals and benchmark logs."""

from .ascii import multi_scatter, scatter

__all__ = ["scatter", "multi_scatter"]
