"""Text-mode plotting.

The toolkit is headless (no matplotlib dependency), but degree CCDFs and
scaling sweeps are much easier to eyeball as pictures than as columns.
:func:`scatter` renders (x, y) series into a character grid with optional
log axes — good enough to see a power law as a straight line in a terminal
or a benchmark log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["scatter", "multi_scatter"]

_MARKERS = "ox+*#@%&"


def _transform(value: float, log: bool) -> float:
    if log:
        if value <= 0:
            raise ValueError("log axis requires positive values")
        return math.log10(value)
    return value


def _axis_label(value: float, log: bool) -> str:
    if log:
        return f"1e{value:.1f}"
    return f"{value:.3g}"


def scatter(
    points: Sequence[Tuple[float, float]],
    width: int = 60,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
    marker: str = "o",
) -> str:
    """Render one series as an ASCII scatter plot."""
    return multi_scatter(
        {"": list(points)},
        width=width,
        height=height,
        log_x=log_x,
        log_y=log_y,
        title=title,
        markers=marker,
    )


def multi_scatter(
    series: Dict[str, List[Tuple[float, float]]],
    width: int = 60,
    height: int = 20,
    log_x: bool = False,
    log_y: bool = False,
    title: Optional[str] = None,
    markers: str = _MARKERS,
) -> str:
    """Render several labeled series onto one grid with distinct markers."""
    if width < 10 or height < 5:
        raise ValueError("grid too small to draw anything legible")
    cleaned = {
        label: [
            (x, y)
            for x, y in pts
            if (not log_x or x > 0) and (not log_y or y > 0)
        ]
        for label, pts in series.items()
    }
    all_points = [p for pts in cleaned.values() for p in pts]
    if not all_points:
        raise ValueError("no drawable points")

    xs = [_transform(x, log_x) for x, _ in all_points]
    ys = [_transform(y, log_y) for _, y in all_points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = x_max - x_min or 1.0
    y_span = y_max - y_min or 1.0

    grid = [[" "] * width for _ in range(height)]
    for index, (label, pts) in enumerate(cleaned.items()):
        mark = markers[index % len(markers)]
        for x, y in pts:
            col = int((_transform(x, log_x) - x_min) / x_span * (width - 1))
            row = int((_transform(y, log_y) - y_min) / y_span * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    top_label = _axis_label(y_max, log_y)
    bottom_label = _axis_label(y_min, log_y)
    pad = max(len(top_label), len(bottom_label))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = top_label.rjust(pad)
        elif row_index == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row)}")
    lines.append(" " * pad + " +" + "-" * width)
    left = _axis_label(x_min, log_x)
    right = _axis_label(x_max, log_x)
    gap = max(width - len(left) - len(right), 1)
    lines.append(" " * (pad + 2) + left + " " * gap + right)
    legend = [
        f"{markers[i % len(markers)]} = {label}"
        for i, label in enumerate(cleaned)
        if label
    ]
    if legend:
        lines.append("  ".join(legend))
    return "\n".join(lines)
