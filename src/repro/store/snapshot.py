"""Memory-mapped CSR snapshots.

A snapshot is a directory of plain ``numpy.lib.format`` arrays plus two
small JSON sidecars::

    <dir>/
      meta.json      format version, counts, name, fingerprint, node mode
      indptr.npy     int64[n+1]
      indices.npy    int64[2E]   (sorted per row)
      weights.npy    float64[2E]
      nodes.json     node ids in position order (absent in "range" mode)

:func:`load_csr_snapshot` reopens the arrays with ``mmap_mode="r"`` and
wraps them in a :class:`repro.graph.csr.CSRView`, so every CSR metric
kernel (PR 4) and the T5 percolation sweeps (PR 6) run against the file
pages directly: resident memory stays near zero until a kernel touches
pages, and nothing is rebuilt.  When the node ids are exactly their
positions (``0..n-1`` — what every relabeled or generator-grown graph
has), ``meta.json`` records ``"nodes": "range"`` and the view carries a
``range`` object instead of a million-entry list.

Snapshots are written atomically: arrays land in a ``<dir>.tmp``
sibling that is renamed into place, so a crash mid-write never leaves a
half-readable snapshot where a complete one is expected.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Any, Dict, Optional, Sequence, Union

import numpy as np

from ..graph.csr import CSRView
from ..obs.metrics import get_registry

__all__ = [
    "save_csr_snapshot",
    "load_csr_snapshot",
    "snapshot_info",
    "SNAPSHOT_FORMAT",
]

PathLike = Union[str, Path]

#: Bump when the on-disk snapshot layout changes.
SNAPSHOT_FORMAT = 1


def _nodes_are_positions(nodes: Sequence) -> bool:
    return all(
        isinstance(node, int) and node == i for i, node in enumerate(nodes)
    )


def save_csr_snapshot(
    path: PathLike,
    view: CSRView,
    name: str = "",
    fingerprint: Optional[int] = None,
) -> Path:
    """Write *view* as a mmap-openable snapshot directory at *path*.

    An existing snapshot at *path* is replaced atomically (build into a
    ``.tmp`` sibling, then rename).  *fingerprint* and *name* are stamped
    into ``meta.json`` so consumers can key caches on the snapshot without
    loading the graph.
    """
    path = Path(path)
    staging = path.with_name(path.name + ".tmp")
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir(parents=True)
    np.save(staging / "indptr.npy", np.asarray(view.indptr, dtype=np.int64))
    np.save(staging / "indices.npy", np.asarray(view.indices, dtype=np.int64))
    np.save(staging / "weights.npy", np.asarray(view.weights, dtype=np.float64))
    if _nodes_are_positions(view.nodes):
        node_mode = "range"
    else:
        node_mode = "json"
        (staging / "nodes.json").write_text(
            json.dumps(list(view.nodes)), encoding="utf-8"
        )
    meta = {
        "format": SNAPSHOT_FORMAT,
        "num_nodes": view.num_nodes,
        "num_edges": view.num_edges,
        "name": name,
        "fingerprint": fingerprint,
        "nodes": node_mode,
    }
    (staging / "meta.json").write_text(json.dumps(meta), encoding="utf-8")
    written = sum(f.stat().st_size for f in staging.iterdir() if f.is_file())
    get_registry().counter("store.snapshot.bytes_written").inc(written)
    if path.exists():
        shutil.rmtree(path)
    os.replace(staging, path)
    return path


def snapshot_info(path: PathLike) -> Dict[str, Any]:
    """Parse and validate a snapshot's ``meta.json``.

    Raises ``FileNotFoundError`` when no snapshot directory exists and
    ``ValueError`` for a truncated/foreign/unsupported one — callers that
    can rebuild (the :class:`~repro.store.store.GraphStore` facade) treat
    both as "rebuild the snapshot".
    """
    path = Path(path)
    meta_path = path / "meta.json"
    if not path.is_dir() or not meta_path.is_file():
        raise FileNotFoundError(f"no CSR snapshot at {path}")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable snapshot metadata at {meta_path}: {exc}")
    if not isinstance(meta, dict) or meta.get("format") != SNAPSHOT_FORMAT:
        raise ValueError(
            f"snapshot at {path} has unsupported format "
            f"{meta.get('format') if isinstance(meta, dict) else meta!r}"
        )
    return meta


def load_csr_snapshot(path: PathLike) -> CSRView:
    """Reopen a snapshot as a memory-mapped :class:`CSRView`.

    Arrays are ``np.load(..., mmap_mode="r")`` memmaps — read-only,
    page-faulted on demand — and the node sequence is a ``range`` in
    ``"range"`` mode, so opening a million-node snapshot costs a few
    kilobytes of resident memory plus the ``degrees`` diff array.
    """
    path = Path(path)
    meta = snapshot_info(path)
    try:
        indptr = np.load(path / "indptr.npy", mmap_mode="r")
        indices = np.load(path / "indices.npy", mmap_mode="r")
        weights = np.load(path / "weights.npy", mmap_mode="r")
    except (OSError, ValueError) as exc:
        raise ValueError(f"unreadable snapshot arrays at {path}: {exc}")
    n = int(meta["num_nodes"])
    if len(indptr) != n + 1 or len(indices) != len(weights):
        raise ValueError(f"snapshot arrays at {path} disagree with meta.json")
    if meta["nodes"] == "range":
        nodes: Sequence = range(n)
    else:
        nodes = json.loads((path / "nodes.json").read_text(encoding="utf-8"))
        if len(nodes) != n:
            raise ValueError(
                f"snapshot node map at {path} disagrees with meta.json"
            )
    get_registry().counter("store.snapshot.attach").inc()
    return CSRView(indptr, indices, weights, nodes)
