"""Checkpointed chunked growth into a store.

:func:`grow_to_store` is the scale path for generation: the topology is
grown (the PR 5 vector engine batches the growth itself) and flushed into
the SQLite store **every k nodes**, one transaction per chunk, with a
checkpoint row committed atomically alongside the chunk's rows.  The
chunking follows the graph's node insertion order — growth order, for
growth models — and each edge belongs to the chunk of its later-inserted
endpoint, so when chunk *j* commits, every row it references exists.

Crash-resume contract: re-running the same call against the same store

* skips regeneration entirely when the store is already complete (the
  stored fingerprint is the identity);
* otherwise regenerates deterministically (same model, params, n, seed,
  and — for engine-sensitive generators — the same resolved engine, all
  recorded in the store's ``growth`` metadata and re-validated on
  resume), then re-ingests **only the chunks whose checkpoint rows are
  missing**.

The resumed store is bit-identical to a one-shot run — asserted by the
storage round-trip suite — because WAL-journaled SQLite rolls an
interrupted chunk back to the previous checkpoint, never half-applies it.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..graph.graph import Graph
from ..obs.metrics import get_registry
from ..obs.tracer import get_tracer
from ..stats.rng import SeedLike
from .sqlite import SQLiteGraphStore, StoreError

__all__ = ["GrowthReport", "grow_to_store", "write_graph_chunks"]

PathLike = Union[str, Path]

#: Default flush interval for checkpointed growth.
DEFAULT_CHECKPOINT_EVERY = 50_000


@dataclass(frozen=True)
class GrowthReport:
    """What one :func:`grow_to_store` call did.

    ``chunks_written`` counts chunks ingested by this call;
    ``chunks_resumed`` counts chunks found already committed (crash
    resume); ``regenerated`` is False when the store was complete and the
    call returned without running the generator at all.
    """

    path: Path
    num_nodes: int
    num_edges: int
    fingerprint: int
    chunks_written: int
    chunks_resumed: int
    regenerated: bool
    seconds: float


def _growth_identity(generator, n: int, seed: SeedLike, every: int) -> Dict[str, Any]:
    """The provenance stamp that makes a resume verifiable.

    Mirrors the battery's cache identity: registry name + params, plus the
    resolved engine for engine-sensitive generators (a resume on the other
    engine would regenerate a *different* graph and corrupt the store).
    """
    identity: Dict[str, Any] = {
        "model": generator.name or type(generator).__name__,
        "params": generator.params(),
        "n": n,
        "seed": seed,
        "checkpoint_every": every,
    }
    if generator.engine_sensitive:
        identity["engine"] = generator.resolve_engine(n)
    # Canonicalize through JSON so the identity compares equal to its own
    # meta-table round-trip (tuples become lists, keys sort).
    return json.loads(json.dumps(identity, sort_keys=True, default=repr))


def _chunk_edges(graph: Graph, positions: Dict, chunk_nodes: List) -> List:
    """Edges owned by *chunk_nodes*: each edge belongs to its
    later-inserted endpoint, so both rows it references already exist when
    the chunk's transaction commits."""
    rows = []
    for node in chunk_nodes:
        own = positions[node]
        for other, weight in graph.neighbor_weights(node).items():
            if positions[other] < own:
                rows.append((other, node, weight))
    return rows


def write_graph_chunks(
    db: SQLiteGraphStore,
    graph: Graph,
    every: Optional[int] = None,
    skip_committed: bool = False,
) -> Dict[str, int]:
    """Ingest *graph* into *db* in chunked, checkpointed transactions.

    Nodes flush in insertion order, ``every`` per chunk (None: one chunk);
    each chunk's transaction carries its node rows, its edge rows (edges
    whose later-inserted endpoint falls in the chunk), and its checkpoint
    row.  With *skip_committed*, chunks whose checkpoint row already
    exists are not re-ingested — the resume path.  Returns written/resumed
    chunk counts.

    Each ingested chunk runs under a ``store.chunk`` span and feeds the
    ``store.chunk.seconds`` histogram; written/resumed totals land on the
    ``store.chunks.written`` / ``store.chunks.resumed`` counters.
    """
    order = list(graph.nodes())
    positions = {node: i for i, node in enumerate(order)}
    n = len(order)
    if every is None or every <= 0:
        every = max(n, 1)
    committed = db.committed_chunks() if skip_committed else {}
    registry = get_registry()
    tracer = get_tracer()
    written = resumed = 0
    total_nodes = total_edges = 0
    for chunk, lo in enumerate(range(0, max(n, 1), every)):
        chunk_nodes = order[lo : lo + every]
        if chunk in committed:
            resumed += 1
            total_nodes, total_edges = committed[chunk]
            continue
        with tracer.span("store.chunk", chunk=chunk, nodes=len(chunk_nodes)):
            start = time.perf_counter()
            total_nodes += len(chunk_nodes)
            db.append_nodes(chunk_nodes)
            total_edges += db.append_edges(
                _chunk_edges(graph, positions, chunk_nodes)
            )
            db.record_checkpoint(chunk, total_nodes, total_edges)
            db.commit()
            registry.histogram("store.chunk.seconds").observe(
                time.perf_counter() - start
            )
        written += 1
    registry.counter("store.chunks.written").inc(written)
    registry.counter("store.chunks.resumed").inc(resumed)
    return {"written": written, "resumed": resumed}


def grow_to_store(
    generator,
    n: int,
    path: PathLike,
    seed: SeedLike = None,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    snapshot: bool = True,
) -> GrowthReport:
    """Grow ``generator.generate(n, seed)`` into the store at *path*.

    Complete store with a matching growth identity: returns immediately —
    the persisted topology is reused without regeneration.  Partial store
    (crash): the topology is regenerated deterministically and only the
    un-committed chunks are ingested.  A store grown under a *different*
    identity raises :class:`StoreError` rather than mixing topologies.

    On completion the store is stamped with the graph's fingerprint and —
    unless *snapshot* is False — the mmap CSR snapshot is written beside
    it, so measurement never needs the generator again.
    """
    from .store import GraphStore

    started = time.perf_counter()
    store = GraphStore(path)
    identity = _growth_identity(generator, n, seed, checkpoint_every)
    with SQLiteGraphStore(store.path) as db:
        recorded = db.get_meta("growth")
        if recorded is not None and recorded != identity:
            raise StoreError(
                f"{store.path} was grown with a different identity "
                f"({recorded}); refusing to mix topologies"
            )
        if recorded is None:
            if db.num_nodes:
                raise StoreError(
                    f"{store.path} already holds an ingested graph; "
                    f"grow_to_store needs a fresh or growth-owned store"
                )
            db.set_meta("growth", identity)
            db.commit()
        if db.get_meta("complete", False):
            return GrowthReport(
                path=store.path,
                num_nodes=db.num_nodes,
                num_edges=db.num_edges,
                fingerprint=db.get_meta("fingerprint"),
                chunks_written=0,
                chunks_resumed=len(db.committed_chunks()),
                regenerated=False,
                seconds=time.perf_counter() - started,
            )
        with get_tracer().span(
            "store.grow", model=identity["model"], n=n, path=str(store.path)
        ):
            graph = generator.generate(n, seed=seed)
            counts = write_graph_chunks(
                db, graph, every=checkpoint_every, skip_committed=True
            )
            fingerprint = graph.fingerprint()
            db.set_meta("name", graph.name)
            db.set_meta("fingerprint", fingerprint)
            db.set_meta("complete", True)
            db.commit()
    if snapshot:
        store.write_snapshot(graph.csr(), graph.name, fingerprint)
    return GrowthReport(
        path=store.path,
        num_nodes=graph.num_nodes,
        num_edges=graph.num_edges,
        fingerprint=fingerprint,
        chunks_written=counts["written"],
        chunks_resumed=counts["resumed"],
        regenerated=True,
        seconds=time.perf_counter() - started,
    )
