"""SQLite edge-table backend: the durable graph representation.

Layout (schema version 1):

* ``meta(key, value)`` — JSON-encoded store metadata: format version,
  graph name, fingerprint, completion flag, and the checkpointed-growth
  identity (generator, params, n, seed, chunk size);
* ``nodes(pos, id)`` — one row per node; ``pos`` is the insertion
  position (0..N-1, the CSR array position) and ``id`` the JSON-encoded
  node id, so integer and string ids round-trip with their types;
* ``edges(u, v, weight)`` — one row per undirected edge, endpoints as
  node *positions* with ``u < v``.  The table is ``WITHOUT ROWID`` keyed
  on ``(u, v)`` — itself a covering index for forward adjacency — and a
  second covering index ``(v, u, weight)`` serves the reverse direction;
* ``checkpoints(chunk, nodes, edges)`` — one row per committed growth
  chunk (cumulative counts), written inside the same transaction as the
  chunk's rows, so the set of committed chunks is exactly the set of
  fully-present chunks.

The connection runs in WAL mode with ``synchronous=NORMAL``: readers
never block the ingesting writer, and a crash rolls back to the last
committed chunk instead of corrupting the database.

Ingestion is bulk-only: :meth:`append_nodes` and :meth:`append_edges`
take iterables shaped exactly like :meth:`repro.graph.graph.Graph.
add_edges` batches (``(u, v)`` or ``(u, v, weight)`` node-id tuples) and
feed ``executemany`` — the same batch-commit idiom the vector growth
engine uses in memory.  Both paths publish to the ambient metrics
registry: ``store.rows.nodes`` / ``store.rows.edges`` count inserted
rows and the ``store.ingest.rows_per_second`` histogram tracks bulk
throughput per ``executemany`` batch, so an ingest slowdown shows up in
``repro perf`` records and ``--metrics-out`` dumps without any harness
changes.
"""

from __future__ import annotations

import json
import sqlite3
import time
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple, Union

from ..graph.graph import Graph
from ..obs.metrics import get_registry

__all__ = ["SQLiteGraphStore", "StoreError", "SCHEMA_VERSION"]

PathLike = Union[str, Path]

#: Bump when the table layout changes; stores written by other versions
#: are refused with a clear error instead of being misread.
SCHEMA_VERSION = 1

_TABLES = (
    """CREATE TABLE IF NOT EXISTS meta (
        key TEXT NOT NULL PRIMARY KEY,
        value TEXT NOT NULL
    )""",
    """CREATE TABLE IF NOT EXISTS nodes (
        pos INTEGER NOT NULL PRIMARY KEY,
        id TEXT NOT NULL UNIQUE
    )""",
    """CREATE TABLE IF NOT EXISTS edges (
        u INTEGER NOT NULL,
        v INTEGER NOT NULL,
        weight REAL NOT NULL,
        PRIMARY KEY (u, v)
    ) WITHOUT ROWID""",
    """CREATE TABLE IF NOT EXISTS checkpoints (
        chunk INTEGER NOT NULL PRIMARY KEY,
        nodes INTEGER NOT NULL,
        edges INTEGER NOT NULL
    )""",
)

_INDICES = (
    "CREATE INDEX IF NOT EXISTS edges_vu ON edges (v, u, weight)",
)


class StoreError(RuntimeError):
    """A store file is missing, incompatible, or being misused."""


def _encode_id(node) -> str:
    """JSON-encode a node id (type-preserving for int/str/float/bool)."""
    if isinstance(node, bool) or not isinstance(node, (int, str, float)):
        raise StoreError(
            f"node id {node!r} is not storable; stores accept int, str, "
            f"and float ids"
        )
    return json.dumps(node)


def _decode_id(text: str):
    return json.loads(text)


class SQLiteGraphStore:
    """One SQLite file holding one graph (plus growth checkpoints).

    Open with ``create=True`` (default) to initialize a fresh schema, or
    ``create=False`` to require an existing store.  Use as a context
    manager or call :meth:`close` — the underlying connection holds the
    WAL handle.
    """

    def __init__(self, path: PathLike, create: bool = True):
        self.path = Path(path)
        if not create and not self.path.exists():
            raise StoreError(f"no graph store at {self.path}")
        self._conn = sqlite3.connect(str(self.path))
        try:
            existing = {
                row[0]
                for row in self._conn.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if existing and "meta" not in existing:
                raise StoreError(
                    f"{self.path} is a SQLite database but not a graph "
                    f"store; refusing to adopt it"
                )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            for statement in _TABLES:
                self._conn.execute(statement)
            for statement in _INDICES:
                self._conn.execute(statement)
        except sqlite3.DatabaseError as exc:
            self._conn.close()
            raise StoreError(f"{self.path} is not a SQLite database: {exc}")
        except StoreError:
            self._conn.close()
            raise
        stored = self.get_meta("schema_version")
        if stored is None:
            self.set_meta("schema_version", SCHEMA_VERSION)
        elif stored != SCHEMA_VERSION:
            self._conn.close()
            raise StoreError(
                f"{self.path} uses store schema v{stored}, "
                f"this build reads v{SCHEMA_VERSION}"
            )
        self._conn.commit()
        # pos ← id cache for edge ingestion; loaded lazily (and kept in
        # sync by append_nodes) so resumed runs translate ids without a
        # per-edge query.
        self._positions: Optional[Dict[Any, int]] = None

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Commit and release the connection."""
        self._conn.commit()
        self._conn.close()

    def commit(self) -> None:
        """Commit the open transaction (one checkpoint boundary)."""
        self._conn.commit()

    def __enter__(self) -> "SQLiteGraphStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ meta

    def get_meta(self, key: str, default: Any = None) -> Any:
        """JSON-decoded metadata value for *key* (or *default*)."""
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else json.loads(row[0])

    def set_meta(self, key: str, value: Any) -> None:
        """Upsert one JSON-encodable metadata value (not committed)."""
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, json.dumps(value)),
        )

    # ------------------------------------------------------------- ingestion

    def _position_map(self) -> Dict[Any, int]:
        if self._positions is None:
            self._positions = {
                _decode_id(text): pos
                for pos, text in self._conn.execute(
                    "SELECT pos, id FROM nodes"
                )
            }
        return self._positions

    def append_nodes(self, ids: Iterable) -> int:
        """Bulk-insert node ids in order, assigning the next positions.

        Ids already present are skipped (idempotent chunk replay); returns
        the number of rows actually inserted.  Part of the caller's open
        transaction until :meth:`commit`.
        """
        positions = self._position_map()
        rows: List[Tuple[int, str]] = []
        next_pos = self.num_nodes
        for node in ids:
            if node in positions:
                continue
            positions[node] = next_pos
            rows.append((next_pos, _encode_id(node)))
            next_pos += 1
        if rows:
            self._bulk_insert(
                "INSERT INTO nodes (pos, id) VALUES (?, ?)", rows, "nodes"
            )
        return len(rows)

    def append_edges(self, edges: Iterable[Tuple]) -> int:
        """Bulk-insert ``(u, v)`` / ``(u, v, weight)`` node-id batches.

        Same shape as :meth:`Graph.add_edges` batches, with the same
        reinforcement semantics: re-inserting an existing pair accumulates
        its weight, self-loops are rejected.  Endpoints must already be in
        the store — the chunk writers register a chunk's nodes with
        :meth:`append_nodes` before its edges, which keeps every node's
        position equal to its insertion order even for isolated nodes.
        Returns the number of edge rows submitted.  Part of the caller's
        open transaction until :meth:`commit`.
        """
        positions = self._position_map()
        rows: List[Tuple[int, int, float]] = []
        for item in edges:
            if len(item) == 3:
                u, v, weight = item
                weight = float(weight)
            else:
                u, v = item
                weight = 1.0
            if u == v:
                raise StoreError(f"self-loops are not allowed (node {u!r})")
            if weight <= 0:
                raise StoreError(f"edge weight must be positive, got {weight}")
            try:
                pu, pv = positions[u], positions[v]
            except KeyError as exc:
                raise StoreError(
                    f"edge endpoint {exc.args[0]!r} is not in the store; "
                    f"append_nodes must register a batch's nodes first"
                ) from None
            rows.append((min(pu, pv), max(pu, pv), weight))
        if rows:
            self._bulk_insert(
                "INSERT INTO edges (u, v, weight) VALUES (?, ?, ?) "
                "ON CONFLICT(u, v) DO UPDATE SET "
                "weight = weight + excluded.weight",
                rows,
                "edges",
            )
        return len(rows)

    def _bulk_insert(self, statement: str, rows: List[Tuple], kind: str) -> None:
        """``executemany`` one batch, publishing rows + throughput metrics."""
        start = time.perf_counter()
        self._conn.executemany(statement, rows)
        elapsed = time.perf_counter() - start
        registry = get_registry()
        registry.counter(f"store.rows.{kind}").inc(len(rows))
        if elapsed > 0:
            registry.histogram("store.ingest.rows_per_second").observe(
                len(rows) / elapsed
            )

    # ----------------------------------------------------------- checkpoints

    def committed_chunks(self) -> Dict[int, Tuple[int, int]]:
        """chunk index → cumulative (nodes, edges) for committed chunks."""
        return {
            chunk: (nodes, edges)
            for chunk, nodes, edges in self._conn.execute(
                "SELECT chunk, nodes, edges FROM checkpoints ORDER BY chunk"
            )
        }

    def record_checkpoint(self, chunk: int, nodes: int, edges: int) -> None:
        """Record chunk *chunk* as present (same transaction as its rows)."""
        self._conn.execute(
            "INSERT INTO checkpoints (chunk, nodes, edges) VALUES (?, ?, ?)",
            (chunk, nodes, edges),
        )

    # ----------------------------------------------------------------- reads

    @property
    def num_nodes(self) -> int:
        """Node rows currently in the store."""
        return self._conn.execute("SELECT COUNT(*) FROM nodes").fetchone()[0]

    @property
    def num_edges(self) -> int:
        """Edge rows currently in the store."""
        return self._conn.execute("SELECT COUNT(*) FROM edges").fetchone()[0]

    @property
    def total_weight(self) -> float:
        """Sum of stored edge weights."""
        value = self._conn.execute(
            "SELECT SUM(weight) FROM edges"
        ).fetchone()[0]
        return float(value or 0.0)

    def node_ids(self) -> List:
        """Node ids in position order (the CSR/Graph iteration order)."""
        return [
            _decode_id(text)
            for (text,) in self._conn.execute(
                "SELECT id FROM nodes ORDER BY pos"
            )
        ]

    def iter_edge_positions(
        self, batch: int = 65536
    ) -> Iterator[List[Tuple[int, int, float]]]:
        """Yield edge rows ``(u_pos, v_pos, weight)`` in key order, batched."""
        cursor = self._conn.execute(
            "SELECT u, v, weight FROM edges ORDER BY u, v"
        )
        while True:
            rows = cursor.fetchmany(batch)
            if not rows:
                return
            yield rows

    def load_graph(self, name: str = "") -> Graph:
        """Materialize the stored graph in memory.

        Nodes are inserted in position order and edges through
        :meth:`Graph.add_edges`, so the result iterates — and therefore
        fingerprints, subgraphs, and CSR-builds — identically to the graph
        that was ingested.
        """
        ids = self.node_ids()
        graph = Graph(name=name or self.get_meta("name", "") or self.path.stem)
        graph.add_nodes(ids)
        for rows in self.iter_edge_positions():
            graph.add_edges(
                (ids[u], ids[v], weight) for u, v, weight in rows
            )
        return graph

    def csr_arrays(self):
        """(indptr, indices, weights, node ids) CSR build from the tables.

        Row order matches :meth:`repro.graph.csr.CSRView.from_graph` on the
        loaded graph: positions follow insertion order and each row's
        neighbor indices are sorted ascending.
        """
        import numpy as np

        n = self.num_nodes
        m = self.num_edges
        us = np.empty(m, dtype=np.int64)
        vs = np.empty(m, dtype=np.int64)
        ws = np.empty(m, dtype=np.float64)
        at = 0
        for rows in self.iter_edge_positions():
            block = np.asarray(rows, dtype=np.float64)
            if block.size:
                span = len(rows)
                us[at : at + span] = block[:, 0].astype(np.int64)
                vs[at : at + span] = block[:, 1].astype(np.int64)
                ws[at : at + span] = block[:, 2]
                at += span
        ends = np.concatenate([us, vs])
        other = np.concatenate([vs, us])
        both_w = np.concatenate([ws, ws])
        degrees = np.bincount(ends, minlength=n).astype(np.int64)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        order = np.lexsort((other, ends))
        indices = other[order]
        weights = both_w[order]
        return indptr, indices, weights, self.node_ids()

    def info(self) -> Dict[str, Any]:
        """Summary dict: counts, weight, name, fingerprint, checkpoints."""
        chunks = self.committed_chunks()
        return {
            "path": str(self.path),
            "schema_version": self.get_meta("schema_version"),
            "name": self.get_meta("name", ""),
            "num_nodes": self.num_nodes,
            "num_edges": self.num_edges,
            "total_weight": self.total_weight,
            "fingerprint": self.get_meta("fingerprint"),
            "complete": bool(self.get_meta("complete", False)),
            "chunks_committed": len(chunks),
            "growth": self.get_meta("growth"),
        }

    def __repr__(self) -> str:
        return f"<SQLiteGraphStore {self.path}>"
