"""Out-of-core graph storage.

Every graph elsewhere in :mod:`repro` lives in memory; this package is the
disk-backed counterpart that makes million-node topologies practical to
grow, persist, reopen, and measure without regeneration:

* :class:`SQLiteGraphStore` — the durable representation: ``nodes`` /
  ``edges`` tables with covering indices, bulk ``executemany`` ingestion
  fed by :meth:`repro.graph.graph.Graph.add_edges`-shaped batches, and WAL
  journaling so a killed run never corrupts the file;
* :mod:`repro.store.snapshot` — a memory-mapped CSR snapshot
  (``indptr``/``indices``/``weights`` ``.npy`` arrays in ``numpy.lib.
  format`` plus node↔index maps) that reopens as a
  :class:`repro.graph.csr.CSRView` at near-zero resident memory;
* :class:`GraphStore` — the facade tying both together
  (``open``/``save``/``load``/``csr``/``measure``/``info``);
* :func:`grow_to_store` — checkpointed chunked growth: flush every *k*
  nodes inside one SQLite transaction each, resume from the last committed
  checkpoint after a crash;
* :class:`StoredTopologyGenerator` — a stored world as a battery model,
  so :class:`repro.core.cache.ResultCache` cells key on the stored graph's
  fingerprint.

See ``docs/storage.md`` for the full tour.
"""

from .checkpoint import GrowthReport, grow_to_store
from .measure import view_size_group
from .snapshot import (
    load_csr_snapshot,
    save_csr_snapshot,
    snapshot_info,
)
from .sqlite import SQLiteGraphStore, StoreError
from .store import GraphStore
from .world import StoredTopologyGenerator

__all__ = [
    "GraphStore",
    "SQLiteGraphStore",
    "StoreError",
    "StoredTopologyGenerator",
    "GrowthReport",
    "grow_to_store",
    "save_csr_snapshot",
    "load_csr_snapshot",
    "snapshot_info",
    "view_size_group",
]
