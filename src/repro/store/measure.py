"""Array-only metric kernels for memory-mapped views.

The battery's metric groups (:mod:`repro.core.metrics`) take a
:class:`~repro.graph.graph.Graph` and extract its giant component as
another ``Graph`` — dict-of-dict adjacency that costs gigabytes at
million-node scale.  This module computes the ``size`` group straight
from a :class:`~repro.graph.csr.CSRView` — the form a store snapshot
reopens as — touching only the view's arrays, so a measurement stays
inside the out-of-core RSS budget.

Values are defined to equal ``compute_metric_groups(graph, ["size"])`` on
the materialized graph (asserted by the store equivalence tests): the
component pass is exact, and every scalar is measured on the giant
component as the battery conventions require.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..graph.csr import CSRView

__all__ = ["view_size_group", "view_component_labels"]


def view_component_labels(view: CSRView) -> np.ndarray:
    """Connected-component label per array position (int32).

    Delegates to ``scipy.sparse.csgraph`` over a 0/1 adjacency whose data
    array is ``int8`` — the cheapest exact component pass available; the
    mmapped ``indices``/``indptr`` are shared, not copied.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import connected_components

    n = view.num_nodes
    if n == 0:
        return np.empty(0, dtype=np.int32)
    adjacency = csr_matrix(
        (
            np.ones(len(view.indices), dtype=np.int8),
            view.indices,
            view.indptr,
        ),
        shape=(n, n),
    )
    _, labels = connected_components(adjacency, directed=False)
    return labels


def view_size_group(view: CSRView) -> Dict[str, float]:
    """The battery's ``size`` metric group, computed on the view alone.

    Matches :func:`repro.core.metrics.compute_metric_groups` with
    ``groups=["size"]``: all scalars describe the giant component, and
    ``giant_fraction`` is its share of the whole view.
    """
    n = int(view.num_nodes)
    if n == 0:
        raise ValueError("cannot measure an empty view")
    labels = view_component_labels(view)
    sizes = np.bincount(labels)
    giant = int(sizes.argmax())
    mask = labels == giant
    giant_nodes = int(sizes[giant])
    degrees = np.asarray(view.degrees)
    giant_degrees = degrees[mask]
    # Every edge's endpoints share a component, so the giant's edge count
    # is half its degree mass — no edge scan needed.
    giant_edges = int(giant_degrees.sum()) // 2
    max_degree = int(giant_degrees.max()) if giant_nodes else 0
    return {
        "num_nodes": giant_nodes,
        "num_edges": giant_edges,
        "average_degree": (
            2.0 * giant_edges / giant_nodes if giant_nodes else 0.0
        ),
        "max_degree": max_degree,
        "max_degree_fraction": max_degree / giant_nodes if giant_nodes else 0.0,
        "giant_fraction": giant_nodes / n,
    }
