"""Stored worlds as battery models.

:class:`StoredTopologyGenerator` adapts a :class:`~repro.store.store.
GraphStore` to the :class:`~repro.generators.base.TopologyGenerator`
protocol, so a persisted topology drops straight into ``run_battery`` /
``compare_models`` next to the generative models.  Its cache identity is
the stored graph's **fingerprint** — deliberately not the file path — so

* battery cells computed for a stored world are keyed on *what the graph
  is*: moving or renaming the store file keeps every cached cell valid;
* two stores holding the same topology share cells, and a store whose
  content changes (a new world saved over it) invalidates exactly its own
  cells.

This is the vocabulary the service layer's "named worlds" build on: a
world id resolves to a store path, and the result cache speaks
fingerprints.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

from ..generators.base import GenerationError, TopologyGenerator
from ..graph.graph import Graph
from ..stats.rng import SeedLike
from .sqlite import StoreError
from .store import GraphStore

__all__ = ["StoredTopologyGenerator"]

PathLike = Union[str, Path]


class StoredTopologyGenerator(TopologyGenerator):
    """A persisted topology wearing the generator protocol.

    ``generate(n, seed)`` loads the stored graph (the seed only feeds the
    battery's sampled metrics, never the topology); *n* must equal the
    stored node count, catching rosters mis-sized against their world.
    ``params()`` exposes only the fingerprint, which therefore keys both
    the battery cache cells and the derived per-replicate seeds.
    """

    name = "stored"

    def __init__(self, path: PathLike):
        self._store = GraphStore.open(path)
        info = self._store.info()
        if not info["complete"] or info["fingerprint"] is None:
            raise StoreError(
                f"{self._store.path} is incomplete (interrupted growth?); "
                f"finish or re-run grow_to_store before measuring it"
            )
        self.fingerprint = info["fingerprint"]
        self._num_nodes = info["num_nodes"]

    @property
    def path(self) -> Path:
        """Where the store lives (not part of the cache identity)."""
        return self._store.path

    @property
    def num_nodes(self) -> int:
        """Stored node count — the *n* battery calls must use."""
        return self._num_nodes

    def generate(self, n: int, seed: SeedLike = None) -> Graph:
        """Load the stored graph (must be asked for its true size)."""
        if n != self._num_nodes:
            raise GenerationError(
                f"store {self._store.path} holds {self._num_nodes} nodes; "
                f"generate was asked for n={n}"
            )
        with self.trace_phase("load", n=n):
            return self._store.load()

    def __repr__(self) -> str:
        return (
            f"<StoredTopologyGenerator {self._store.path} "
            f"fingerprint={self.fingerprint}>"
        )
