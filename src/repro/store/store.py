"""The ``GraphStore`` facade: one durable topology, two representations.

A store lives at ``<path>`` (a SQLite database, the source of truth) with
an optional mmap CSR snapshot directory at ``<path>.csr`` beside it.  The
facade keeps the two coherent through the stored fingerprint: ``csr()``
reuses the snapshot only when its stamped fingerprint matches the
database's, and rebuilds it otherwise — a stale or torn snapshot can
never be observed.

Typical flows::

    GraphStore(path).save(graph)              # persist (+ snapshot)
    graph = GraphStore.open(path).load()      # reopen in memory
    view = GraphStore.open(path).csr()        # reopen as mmap CSRView
    GraphStore.open(path).measure()           # "size" group, view-only
    generator.generate_to_store(n, path)      # checkpointed growth

``save`` accepts ``checkpoint_every`` to ingest in chunked transactions
(see :mod:`repro.store.checkpoint`); ``measure`` runs the battery's
``size`` metric group without materializing a ``Graph`` — the near-zero
RSS read path the full-scale benchmarks budget-test.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from ..graph.csr import CSRView
from ..graph.graph import Graph
from ..obs.tracer import get_tracer
from .measure import view_size_group
from .snapshot import load_csr_snapshot, save_csr_snapshot, snapshot_info
from .sqlite import SQLiteGraphStore, StoreError

__all__ = ["GraphStore"]

PathLike = Union[str, Path]


class GraphStore:
    """Disk-backed graph at *path* (SQLite DB + sidecar CSR snapshot)."""

    def __init__(self, path: PathLike):
        self.path = Path(path)

    @property
    def snapshot_path(self) -> Path:
        """The sidecar mmap-CSR snapshot directory (may not exist yet)."""
        return self.path.with_name(self.path.name + ".csr")

    @classmethod
    def open(cls, path: PathLike) -> "GraphStore":
        """A store that must already exist (raises :class:`StoreError`)."""
        store = cls(path)
        if not store.path.is_file():
            raise StoreError(f"no graph store at {store.path}")
        return store

    def exists(self) -> bool:
        """Whether the SQLite database file is present."""
        return self.path.is_file()

    # ----------------------------------------------------------------- write

    def save(
        self,
        graph: Graph,
        checkpoint_every: Optional[int] = None,
        snapshot: bool = True,
    ) -> Dict[str, Any]:
        """Persist *graph* into the store; returns :meth:`info`.

        The database is written in bulk (or in ``checkpoint_every``-node
        chunked transactions when given), stamped with the graph's
        fingerprint, and — unless *snapshot* is False — the mmap CSR
        snapshot is written beside it from the graph's cached
        :meth:`~repro.graph.graph.Graph.csr` view.  Saving over an
        existing store replaces its content only if the database is empty
        or fingerprints match; anything else raises, because silently
        merging two topologies is never what a caller wants.
        """
        from .checkpoint import write_graph_chunks

        fingerprint = graph.fingerprint()
        with get_tracer().span(
            "store.save", path=str(self.path), n=graph.num_nodes
        ):
            with SQLiteGraphStore(self.path) as db:
                existing = db.get_meta("fingerprint")
                if db.num_nodes and existing not in (None, fingerprint):
                    raise StoreError(
                        f"{self.path} already holds a different graph "
                        f"(fingerprint {existing}); delete it or save "
                        f"elsewhere"
                    )
                if existing == fingerprint and db.get_meta("complete", False):
                    # Identical content already on disk: re-ingesting would
                    # double upserted weights, so just refresh the sidecar.
                    if snapshot:
                        self.write_snapshot(graph.csr(), graph.name, fingerprint)
                    return self.info()
                write_graph_chunks(db, graph, every=checkpoint_every)
                db.set_meta("name", graph.name)
                db.set_meta("fingerprint", fingerprint)
                db.set_meta("complete", True)
                db.commit()
            if snapshot:
                self.write_snapshot(graph.csr(), graph.name, fingerprint)
            return self.info()

    def write_snapshot(
        self, view: CSRView, name: str, fingerprint: Optional[int]
    ) -> Path:
        """(Re)write the sidecar snapshot from *view*."""
        with get_tracer().span("store.snapshot", path=str(self.snapshot_path)):
            return save_csr_snapshot(
                self.snapshot_path, view, name=name, fingerprint=fingerprint
            )

    # ------------------------------------------------------------------ read

    def load(self, name: str = "") -> Graph:
        """Materialize the stored graph in memory."""
        with get_tracer().span("store.load", path=str(self.path)):
            with SQLiteGraphStore(self.path, create=False) as db:
                return db.load_graph(name=name)

    def csr(self) -> CSRView:
        """The store as a memory-mapped :class:`CSRView`.

        Reuses the sidecar snapshot when its stamped fingerprint matches
        the database's; otherwise (no snapshot, torn snapshot, fingerprint
        drift) rebuilds it from the edge tables first.  The returned view
        is backed by read-only memmaps either way.
        """
        fingerprint = self.fingerprint()
        try:
            meta = snapshot_info(self.snapshot_path)
            if meta.get("fingerprint") == fingerprint:
                return load_csr_snapshot(self.snapshot_path)
        except (FileNotFoundError, ValueError):
            pass
        with get_tracer().span("store.csr_rebuild", path=str(self.path)):
            with SQLiteGraphStore(self.path, create=False) as db:
                indptr, indices, weights, ids = db.csr_arrays()
                name = db.get_meta("name", "")
            view = CSRView(indptr, indices, weights, ids)
            self.write_snapshot(view, name, fingerprint)
        return load_csr_snapshot(self.snapshot_path)

    def measure(self) -> Dict[str, float]:
        """The battery's ``size`` metric group from the mmap view alone.

        Never materializes a :class:`Graph`: this is the read path whose
        peak RSS the full-scale benchmarks hold to a budget.
        """
        with get_tracer().span("store.measure", path=str(self.path)):
            return view_size_group(self.csr())

    def fingerprint(self) -> Optional[int]:
        """The stored graph's fingerprint (None while incomplete)."""
        with SQLiteGraphStore(self.path, create=False) as db:
            return db.get_meta("fingerprint")

    def info(self) -> Dict[str, Any]:
        """Store summary: counts, fingerprint, checkpoint/snapshot state."""
        with SQLiteGraphStore(self.path, create=False) as db:
            info = db.info()
        try:
            meta = snapshot_info(self.snapshot_path)
            info["snapshot"] = (
                "fresh" if meta.get("fingerprint") == info["fingerprint"]
                else "stale"
            )
        except FileNotFoundError:
            info["snapshot"] = "absent"
        except ValueError:
            info["snapshot"] = "corrupt"
        return info

    def __repr__(self) -> str:
        return f"<GraphStore {self.path}>"
