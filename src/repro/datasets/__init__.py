"""Synthetic observed data: the frozen reference AS map and the growth
timeline (documented substitutions for Route Views and Hobbes data)."""

from .asmap import (
    PUBLISHED_AS_MAP_TARGETS,
    REFERENCE_EXPECTED,
    REFERENCE_SEED,
    reference_as_map,
    reference_generator,
)
from .timeline import (
    PUBLISHED_RATES,
    PUBLISHED_SCALE,
    TimelineConfig,
    hobbes_like_timeline,
)
from .zoo import abilene, karate_club, nsfnet, petersen, zoo

__all__ = [
    "reference_as_map",
    "reference_generator",
    "REFERENCE_SEED",
    "REFERENCE_EXPECTED",
    "PUBLISHED_AS_MAP_TARGETS",
    "hobbes_like_timeline",
    "TimelineConfig",
    "PUBLISHED_RATES",
    "PUBLISHED_SCALE",
    "abilene",
    "nsfnet",
    "karate_club",
    "petersen",
    "zoo",
]
