"""Synthetic growth timeline (substitution for Hobbes / Route Views data).

Experiment F1 fits exponential rates to the 1997–2002 growth of hosts,
ASes and inter-AS links.  The original series came from the Hobbes Internet
Timeline and daily Oregon Route Views snapshots; neither is redistributable
here, so this module *generates* series with the published best-fit rates

    alpha (hosts) = 0.036 /month
    beta  (ASes)  = 0.0304 /month
    delta (links) = 0.0330 /month

plus seeded log-normal measurement noise.  F1's code path — fit rates to
noisy observations, check alpha > delta > beta, derive scaling relations —
is exercised identically; only the provenance of the points differs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..environment.growth import GrowthSeries
from ..stats.rng import SeedLike, make_rng

__all__ = ["PUBLISHED_RATES", "PUBLISHED_SCALE", "TimelineConfig", "hobbes_like_timeline"]

#: Best-fit monthly growth rates reported for Nov 1997 – May 2002.
PUBLISHED_RATES: Dict[str, float] = {
    "hosts": 0.036,
    "ases": 0.0304,
    "links": 0.0330,
}

#: Approximate magnitudes at the start of the window (Nov 1997).
PUBLISHED_SCALE: Dict[str, float] = {
    "hosts": 2.97e7,
    "ases": 3.0e3,
    "links": 5.7e3,
}


@dataclass(frozen=True)
class TimelineConfig:
    """Generation knobs for the synthetic timeline."""

    months: int = 54           # Nov 1997 .. May 2002
    noise_sigma: float = 0.02  # log-normal measurement scatter
    seed: int = 19971108       # first Route Views snapshot date


def hobbes_like_timeline(config: TimelineConfig = TimelineConfig()) -> Dict[str, GrowthSeries]:
    """Generate noisy exponential series for hosts, ASes and links.

    Returns one :class:`GrowthSeries` per quantity, monthly samples at
    t = 0 .. months-1.  Noise is multiplicative log-normal with
    ``config.noise_sigma``, seeded for reproducibility.
    """
    if config.months < 3:
        raise ValueError("need at least 3 months to fit anything")
    if config.noise_sigma < 0:
        raise ValueError("noise_sigma must be non-negative")
    rng = make_rng(config.seed)
    series: Dict[str, GrowthSeries] = {}
    for key, rate in PUBLISHED_RATES.items():
        scale = PUBLISHED_SCALE[key]
        out = GrowthSeries(name=key)
        for month in range(config.months):
            clean = scale * math.exp(rate * month)
            noisy = clean * math.exp(rng.gauss(0.0, config.noise_sigma))
            out.record(float(month), noisy)
        series[key] = out
    return series
