"""A small zoo of well-known public reference topologies.

These are tiny, fully public graphs with exactly known properties, used
throughout the docs and tests as ground truth, and handy as router-level
substrates for quick experiments:

* **Abilene** — the 11-PoP Internet2 research backbone (public design);
* **NSFNET (1989)** — the 14-node T1 backbone, the classic WAN test graph;
* **Zachary's karate club** — the standard 34-node social test graph
  (public domain since Zachary 1977), useful as a non-internet contrast;
* **Petersen** — the 10-node, 3-regular girth-5 graph, an algorithmic
  stress fixture.

All loaders return fresh :class:`repro.graph.Graph` instances (mutating a
returned graph never affects later calls).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from ..graph.graph import Graph

__all__ = ["abilene", "nsfnet", "karate_club", "petersen", "zoo"]

# Abilene PoPs and links as publicly documented by Internet2.
_ABILENE_LINKS: List[Tuple[str, str]] = [
    ("Seattle", "Sunnyvale"),
    ("Seattle", "Denver"),
    ("Sunnyvale", "Los Angeles"),
    ("Sunnyvale", "Denver"),
    ("Los Angeles", "Houston"),
    ("Denver", "Kansas City"),
    ("Kansas City", "Houston"),
    ("Kansas City", "Indianapolis"),
    ("Houston", "Atlanta"),
    ("Indianapolis", "Chicago"),
    ("Indianapolis", "Atlanta"),
    ("Chicago", "New York"),
    ("Atlanta", "Washington"),
    ("New York", "Washington"),
]

# The 1989 NSFNET T1 backbone (14 nodes, 21 links).
_NSFNET_LINKS: List[Tuple[str, str]] = [
    ("Seattle", "Palo Alto"),
    ("Seattle", "Salt Lake City"),
    ("Seattle", "Champaign"),
    ("Palo Alto", "San Diego"),
    ("Palo Alto", "Salt Lake City"),
    ("San Diego", "Houston"),
    ("Salt Lake City", "Boulder"),
    ("Salt Lake City", "Ann Arbor"),
    ("Boulder", "Houston"),
    ("Boulder", "Lincoln"),
    ("Lincoln", "Champaign"),
    ("Houston", "College Park"),
    ("Houston", "Atlanta"),
    ("Champaign", "Pittsburgh"),
    ("Champaign", "Ann Arbor"),
    ("Ann Arbor", "Princeton"),
    ("Pittsburgh", "Princeton"),
    ("Pittsburgh", "Ithaca"),
    ("Pittsburgh", "Atlanta"),
    ("Princeton", "College Park"),
    ("College Park", "Ithaca"),
    ("Atlanta", "College Park"),
]

# Zachary's karate club (public domain, Zachary 1977): 34 nodes, 78 edges.
_KARATE_EDGES: List[Tuple[int, int]] = [
    (1, 2), (1, 3), (1, 4), (1, 5), (1, 6), (1, 7), (1, 8), (1, 9), (1, 11),
    (1, 12), (1, 13), (1, 14), (1, 18), (1, 20), (1, 22), (1, 32),
    (2, 3), (2, 4), (2, 8), (2, 14), (2, 18), (2, 20), (2, 22), (2, 31),
    (3, 4), (3, 8), (3, 9), (3, 10), (3, 14), (3, 28), (3, 29), (3, 33),
    (4, 8), (4, 13), (4, 14),
    (5, 7), (5, 11),
    (6, 7), (6, 11), (6, 17),
    (7, 17),
    (9, 31), (9, 33), (9, 34),
    (10, 34),
    (14, 34),
    (15, 33), (15, 34),
    (16, 33), (16, 34),
    (19, 33), (19, 34),
    (20, 34),
    (21, 33), (21, 34),
    (23, 33), (23, 34),
    (24, 26), (24, 28), (24, 30), (24, 33), (24, 34),
    (25, 26), (25, 28), (25, 32),
    (26, 32),
    (27, 30), (27, 34),
    (28, 34),
    (29, 32), (29, 34),
    (30, 33), (30, 34),
    (31, 33), (31, 34),
    (32, 33), (32, 34),
    (33, 34),
]


def _build(name: str, edges) -> Graph:
    graph = Graph(name=name)
    graph.add_edges(edges)
    return graph


def abilene() -> Graph:
    """The Internet2 Abilene backbone: 11 PoPs, 14 links."""
    return _build("abilene", _ABILENE_LINKS)


def nsfnet() -> Graph:
    """The 1989 NSFNET T1 backbone: 14 nodes, 22 links."""
    return _build("nsfnet", _NSFNET_LINKS)


def karate_club() -> Graph:
    """Zachary's karate club: 34 nodes, 78 edges."""
    return _build("karate-club", _KARATE_EDGES)


def petersen() -> Graph:
    """The Petersen graph: 10 nodes, 3-regular, girth 5."""
    edges = (
        [(i, (i + 1) % 5) for i in range(5)]
        + [(i, i + 5) for i in range(5)]
        + [(5 + i, 5 + (i + 2) % 5) for i in range(5)]
    )
    return _build("petersen", edges)


def zoo() -> Dict[str, Callable[[], Graph]]:
    """Name → loader for every zoo topology."""
    return {
        "abilene": abilene,
        "nsfnet": nsfnet,
        "karate-club": karate_club,
        "petersen": petersen,
    }
