"""Dynamics on topologies: attack/failure tolerance and SIS epidemics."""

from .attack import (
    AttackStrategy,
    RemovalTrajectory,
    critical_fraction,
    removal_sweep,
    victim_order,
)
from .epidemic import SisResult, endemic_prevalence, prevalence_curve, simulate_sis
from .sweep import (
    InflationTrajectory,
    link_redundancy,
    path_inflation_sweep,
    percolation_sweep,
    robustness_summary,
    shortcut_fraction,
)

__all__ = [
    "AttackStrategy",
    "RemovalTrajectory",
    "removal_sweep",
    "victim_order",
    "critical_fraction",
    "InflationTrajectory",
    "percolation_sweep",
    "path_inflation_sweep",
    "link_redundancy",
    "shortcut_fraction",
    "robustness_summary",
    "SisResult",
    "simulate_sis",
    "endemic_prevalence",
    "prevalence_curve",
]
