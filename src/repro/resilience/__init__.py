"""Dynamics on topologies: attack/failure tolerance and SIS epidemics."""

from .attack import (
    AttackStrategy,
    RemovalTrajectory,
    critical_fraction,
    removal_sweep,
)
from .epidemic import SisResult, endemic_prevalence, prevalence_curve, simulate_sis

__all__ = [
    "AttackStrategy",
    "RemovalTrajectory",
    "removal_sweep",
    "critical_fraction",
    "SisResult",
    "simulate_sis",
    "endemic_prevalence",
    "prevalence_curve",
]
