"""Vectorized robustness & redundancy battery (Zhou–Mondragón T5 kernels).

Percolation sweeps are the behavioral half of the comparison battery: a
model earns its living not by matching scalar metrics but by *surviving*
random failure and targeted attack the way the measured AS map does.  The
python reference (:func:`repro.resilience.attack.removal_sweep`) recomputes
connected components from scratch after every removal batch, which is
O(steps × (N + E)) of dict-walking per sweep — too slow to run across the
full 12-model registry at battery scale.

This module is the CSR fast path, behind the same ``backend`` contract as
the metric kernels (:func:`repro.graph.csr.resolve_backend`):

* :func:`percolation_sweep` — node-removal percolation over the cached
  :class:`~repro.graph.csr.CSRView`.  The victim order is computed once
  (arrays for the adaptive-degree attack, the shared
  :func:`~repro.resilience.attack.victim_order` for the precomputed
  strategies), then the giant-component trajectory is recovered *in
  reverse*: start from the fully-attacked graph, seed an incremental
  union-find from one C-speed ``scipy.sparse.csgraph`` components pass,
  and re-add victims last-to-first, recording the running maximum
  component size at each measurement checkpoint.  Total cost is one
  components pass plus O(E α(N)) unions — no per-checkpoint recomputation.
  Trajectories are **bit-identical** to the python reference for every
  strategy, seed, and graph shape (the equivalence suite enforces this).
* :func:`path_inflation_sweep` — sampled path-length inflation along the
  same removal schedule, via the batched BFS kernel
  (:meth:`~repro.graph.csr.CSRView.distance_batch`) restricted to the
  surviving nodes with its ``active`` mask.  Distances are integers and
  are accumulated as integers, so the sampled means are bit-identical
  across backends too.
* :func:`link_redundancy` / :func:`shortcut_fraction` — the Zhou–Mondragón
  redundancy fingerprints: the fraction of links whose loss does not
  disconnect their endpoints (non-bridge links, i.e. links on a cycle) and
  the fraction of links with a two-hop bypass (links closing at least one
  triangle, the radius-2 "shortcut" operationalization).
* :func:`robustness_summary` — the scalar bundle the battery runner's
  ``robustness`` metric group computes per (model, replicate) cell.

Backend is a *speed* choice, never a semantics choice: ``python`` routes to
the reference implementations, ``csr`` to the array kernels, and ``auto``
follows ``REPRO_BACKEND`` / the size threshold exactly like the metric
kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

import numpy as np

from ..graph.csr import resolve_backend
from ..graph.cuts import bridges
from ..graph.graph import Graph
from ..graph.traversal import bfs_distances
from ..obs.tracer import get_tracer
from ..stats.rng import SeedLike, derive_seed, make_rng
from .attack import (
    AttackStrategy,
    RemovalTrajectory,
    critical_fraction,
    removal_sweep,
    victim_order,
)

__all__ = [
    "InflationTrajectory",
    "percolation_sweep",
    "path_inflation_sweep",
    "link_redundancy",
    "shortcut_fraction",
    "robustness_summary",
    "ROBUSTNESS_MAX_FRACTION",
    "ROBUSTNESS_STEPS",
    "ROBUSTNESS_INFLATION_FRACTION",
    "ROBUSTNESS_INFLATION_STEPS",
    "ROBUSTNESS_PATH_SAMPLES",
]

Node = Hashable

#: Sweep shape used by the battery's ``robustness`` metric group.  Fixed
#: module constants (not per-call knobs) so every cached cell across every
#: experiment measures the same thing; changing any of them is a metric
#: change and requires a :data:`repro.core.metrics.METRICS_VERSION` bump.
ROBUSTNESS_MAX_FRACTION = 0.5
ROBUSTNESS_STEPS = 20
ROBUSTNESS_INFLATION_FRACTION = 0.3
ROBUSTNESS_INFLATION_STEPS = 3
ROBUSTNESS_PATH_SAMPLES = 32


@dataclass(frozen=True)
class InflationTrajectory:
    """Sampled mean path length as nodes are removed.

    ``fractions_removed[i]`` / ``mean_distances[i]`` describe the state
    after the i-th measurement, starting at (0.0, intact mean).  Means are
    over all reachable (source, target) pairs from the sampled sources;
    NaN when no pair is reachable (fully fragmented).
    """

    strategy: AttackStrategy
    fractions_removed: Tuple[float, ...]
    mean_distances: Tuple[float, ...]
    samples: int

    @property
    def inflation(self) -> Tuple[float, ...]:
        """Each measurement's mean divided by the intact mean (index 0)."""
        base = self.mean_distances[0]
        return tuple(d / base for d in self.mean_distances)

    def as_points(self) -> List[Tuple[float, float]]:
        """(fraction removed, inflation) pairs for plotting."""
        return list(zip(self.fractions_removed, self.inflation))


def _validate_sweep_args(graph: Graph, max_fraction: float, steps: int) -> None:
    """Shared argument validation, mirroring the reference's messages."""
    if not 0 < max_fraction <= 1:
        raise ValueError("max_fraction must be in (0, 1]")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    if graph.num_nodes == 0:
        raise ValueError("cannot attack an empty graph")


def _checkpoints(total: int, steps: int) -> List[int]:
    """Cumulative removal counts at which the reference sweep measures."""
    batch = max(total // steps, 1)
    out: List[int] = []
    removed = 0
    while removed < total:
        removed += min(batch, total - removed)
        out.append(removed)
    return out


class _UnionFind:
    """Incremental union-find over array positions, tracking the giant.

    Seeded from a C-speed components pass on the surviving subgraph, then
    grown one re-activated victim at a time — the reverse-percolation
    structure behind :func:`percolation_sweep`.
    """

    __slots__ = ("parent", "size", "giant")

    def __init__(self, n: int):
        self.parent = np.arange(n, dtype=np.int64)
        self.size = np.ones(n, dtype=np.int64)
        self.giant = 0

    def seed_components(self, labels: np.ndarray, active: np.ndarray) -> None:
        """Adopt a component labelling: every position points at its
        label's first occurrence; sizes count *active* members only
        (inactive positions are isolated singletons by construction)."""
        _, first_index = np.unique(labels, return_index=True)
        self.parent = first_index[labels].astype(np.int64)
        counts = np.bincount(labels[active], minlength=len(first_index))
        self.size = np.ones(len(labels), dtype=np.int64)
        self.size[first_index] = np.maximum(counts, 1)
        self.giant = int(counts.max()) if counts.size else 0

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = int(parent[x])
        return x

    def union(self, x: int, y: int) -> None:
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return
        if self.size[rx] < self.size[ry]:
            rx, ry = ry, rx
        self.parent[ry] = rx
        self.size[rx] += self.size[ry]
        if self.size[rx] > self.giant:
            self.giant = int(self.size[rx])


def _adaptive_degree_victims(view, total: int) -> np.ndarray:
    """The adaptive highest-degree removal order, as array positions.

    Maintains a decremental degree array instead of re-scanning a mutating
    graph: each removal is one ``argmax`` (ties fall to the lowest
    position, matching the reference's first-maximal iteration-order
    tie-break) plus a neighbor decrement.  Removed positions get a
    sentinel below any reachable degree so they can never be re-picked.
    """
    n = view.num_nodes
    degrees = view.degrees.astype(np.int64)
    victims = np.empty(total, dtype=np.int64)
    sentinel = -(n + 1)
    for k in range(total):
        position = int(np.argmax(degrees))
        victims[k] = position
        degrees[view.neighbor_slice(position)] -= 1
        degrees[position] = sentinel
    return victims


def _victim_positions(
    graph: Graph,
    view,
    strategy: AttackStrategy,
    total: int,
    rng,
    betweenness_pivots: int,
) -> np.ndarray:
    """The first *total* victims as CSR positions, any strategy."""
    if strategy is AttackStrategy.DEGREE:
        return _adaptive_degree_victims(view, total)
    order = victim_order(graph, strategy, rng, betweenness_pivots)
    return np.fromiter(
        (view.index[node] for node in order[:total]), dtype=np.int64, count=total
    )


def _reverse_giant_sizes(
    view, victims: np.ndarray, checkpoints: Sequence[int]
) -> Dict[int, int]:
    """Giant-component size after removing the first k victims, for every
    k in *checkpoints* plus k=0, via reverse incremental union-find."""
    n = view.num_nodes
    total = len(victims)
    active = np.ones(n, dtype=bool)
    active[victims] = False
    uf = _UnionFind(n)
    if active.any():
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import connected_components

        u, v, _ = view.edge_arrays()
        keep = active[u] & active[v]
        adjacency = csr_matrix(
            (np.ones(int(keep.sum()), dtype=np.int8), (u[keep], v[keep])),
            shape=(n, n),
        )
        _, labels = connected_components(adjacency, directed=False)
        uf.seed_components(labels, active)
    wanted = set(checkpoints)
    sizes: Dict[int, int] = {}
    if total in wanted:
        sizes[total] = uf.giant
    for k in range(total - 1, -1, -1):
        position = int(victims[k])
        active[position] = True
        if uf.giant < 1:
            uf.giant = 1
        for neighbor in view.neighbor_slice(position):
            if active[neighbor]:
                uf.union(position, int(neighbor))
        if k in wanted:
            sizes[k] = uf.giant
    sizes[0] = uf.giant
    return sizes


def _csr_removal_sweep(
    graph: Graph,
    strategy: AttackStrategy,
    max_fraction: float,
    steps: int,
    seed: SeedLike,
    betweenness_pivots: int,
) -> RemovalTrajectory:
    rng = make_rng(seed)
    view = graph.csr()
    n = view.num_nodes
    total = int(max_fraction * n)
    victims = _victim_positions(
        graph, view, strategy, total, rng, betweenness_pivots
    )
    checkpoints = _checkpoints(total, steps)
    sizes = _reverse_giant_sizes(view, victims, checkpoints)
    fractions = [0.0] + [k / n for k in checkpoints]
    giants = [sizes[0] / n] + [sizes[k] / n for k in checkpoints]
    return RemovalTrajectory(
        strategy=strategy,
        fractions_removed=tuple(fractions),
        giant_fractions=tuple(giants),
    )


def percolation_sweep(
    graph: Graph,
    strategy: AttackStrategy = AttackStrategy.RANDOM,
    max_fraction: float = 0.5,
    steps: int = 20,
    seed: SeedLike = 0,
    betweenness_pivots: int = 100,
    backend: str = "auto",
) -> RemovalTrajectory:
    """Node-removal percolation sweep with a selectable backend.

    ``backend="python"`` is exactly
    :func:`repro.resilience.attack.removal_sweep` (the reference);
    ``"csr"`` runs the reverse union-find fast path over the graph's
    cached CSR view; ``"auto"`` resolves like every metric kernel
    (``REPRO_BACKEND`` env, then the size threshold).  The two backends
    produce **bit-identical** :class:`RemovalTrajectory` values for every
    strategy and seed — CSR is a speed choice, never a semantics choice.
    """
    _validate_sweep_args(graph, max_fraction, steps)
    resolved = resolve_backend(backend, graph.num_nodes)
    with get_tracer().span(
        "resilience.sweep", strategy=strategy.value, n=graph.num_nodes,
        backend=resolved,
    ):
        if resolved == "python":
            return removal_sweep(
                graph, strategy, max_fraction=max_fraction, steps=steps,
                seed=seed, betweenness_pivots=betweenness_pivots,
            )
        return _csr_removal_sweep(
            graph, strategy, max_fraction, steps, seed, betweenness_pivots
        )


# ------------------------------------------------------------ path inflation


def _sample_sources(active_nodes: List[Node], samples: int, seed, step: int):
    """The measurement's BFS sources: a seeded draw from the surviving
    nodes in graph iteration order.  Pure function of (seed, step, active
    set), shared by both backends so their samples are identical."""
    rng = make_rng(derive_seed("inflation-sources", seed, step))
    count = min(samples, len(active_nodes))
    return rng.sample(active_nodes, count)


def _python_inflation_sweep(
    graph: Graph,
    strategy: AttackStrategy,
    max_fraction: float,
    steps: int,
    samples: int,
    seed: SeedLike,
    betweenness_pivots: int,
) -> InflationTrajectory:
    """Reference implementation: graph copy, per-batch removal, dict BFS."""
    rng = make_rng(seed)
    work = graph.copy()
    n = graph.num_nodes
    total = int(max_fraction * n)
    adaptive = strategy is AttackStrategy.DEGREE
    order: List[Node] = []
    if not adaptive:
        order = victim_order(work, strategy, rng, betweenness_pivots)

    def measure(step: int) -> float:
        active = list(work.nodes())
        distance_sum = 0
        pairs = 0
        for source in _sample_sources(active, samples, seed, step):
            distances = bfs_distances(work, source)
            distance_sum += sum(distances.values())
            pairs += len(distances) - 1
        return distance_sum / pairs if pairs else float("nan")

    fractions = [0.0]
    means = [measure(0)]
    batch = max(total // steps, 1)
    removed = 0
    cursor = 0
    step = 0
    while removed < total:
        for _ in range(min(batch, total - removed)):
            if adaptive:
                victim = max(work.nodes(), key=work.degree)
            else:
                victim = order[cursor]
                cursor += 1
            work.remove_node(victim)
            removed += 1
        step += 1
        fractions.append(removed / n)
        means.append(measure(step))
    return InflationTrajectory(
        strategy=strategy,
        fractions_removed=tuple(fractions),
        mean_distances=tuple(means),
        samples=samples,
    )


def _csr_inflation_sweep(
    graph: Graph,
    strategy: AttackStrategy,
    max_fraction: float,
    steps: int,
    samples: int,
    seed: SeedLike,
    betweenness_pivots: int,
) -> InflationTrajectory:
    """Fast path: one victim-order pass, then batched masked BFS per
    checkpoint.  Integer distance accumulation keeps the sampled means
    bit-identical to the reference."""
    rng = make_rng(seed)
    view = graph.csr()
    n = view.num_nodes
    total = int(max_fraction * n)
    victims = _victim_positions(
        graph, view, strategy, total, rng, betweenness_pivots
    )
    active = np.ones(n, dtype=bool)

    def measure(step: int) -> float:
        active_nodes = [view.nodes[i] for i in np.flatnonzero(active)]
        sources = _sample_sources(active_nodes, samples, seed, step)
        if not sources:
            return float("nan")
        positions = np.fromiter(
            (view.index[node] for node in sources),
            dtype=np.int64, count=len(sources),
        )
        distances = view.distance_batch(positions, active=active)
        reached = distances > 0
        pairs = int(reached.sum())
        if pairs == 0:
            return float("nan")
        distance_sum = int(distances.sum(where=reached, dtype=np.int64))
        return distance_sum / pairs

    checkpoints = _checkpoints(total, steps)
    fractions = [0.0]
    means = [measure(0)]
    removed = 0
    for step, k in enumerate(checkpoints, start=1):
        active[victims[removed:k]] = False
        removed = k
        fractions.append(k / n)
        means.append(measure(step))
    return InflationTrajectory(
        strategy=strategy,
        fractions_removed=tuple(fractions),
        mean_distances=tuple(means),
        samples=samples,
    )


def path_inflation_sweep(
    graph: Graph,
    strategy: AttackStrategy = AttackStrategy.RANDOM,
    max_fraction: float = 0.5,
    steps: int = 5,
    samples: int = 32,
    seed: SeedLike = 0,
    betweenness_pivots: int = 100,
    backend: str = "auto",
) -> InflationTrajectory:
    """Sampled path-length inflation along a removal schedule.

    At the intact graph and after every removal batch, BFS runs from up to
    *samples* seeded sources drawn from the surviving nodes, and the mean
    distance over all reachable (source, target) pairs is recorded.  The
    removal schedule, source draws, and integer distance sums are shared
    logic, so both backends return bit-identical trajectories; the CSR
    path runs all sources of a measurement as one batched masked BFS
    (:meth:`~repro.graph.csr.CSRView.distance_batch` with its ``active``
    mask) instead of one dict BFS per source.
    """
    _validate_sweep_args(graph, max_fraction, steps)
    if samples < 1:
        raise ValueError("samples must be >= 1")
    resolved = resolve_backend(backend, graph.num_nodes)
    with get_tracer().span(
        "resilience.inflation", strategy=strategy.value, n=graph.num_nodes,
        backend=resolved,
    ):
        impl = (
            _python_inflation_sweep if resolved == "python"
            else _csr_inflation_sweep
        )
        return impl(
            graph, strategy, max_fraction, steps, samples, seed,
            betweenness_pivots,
        )


# ------------------------------------------------------- redundancy metrics


def link_redundancy(graph: Graph, backend: str = "auto") -> float:
    """Fraction of links that are *redundant*: their loss leaves their
    endpoints connected (the link lies on a cycle, i.e. is not a bridge).

    The Zhou–Mondragón redundancy fingerprint: measured AS maps are
    bridge-heavy at the stub edge and cycle-rich in the core, and models
    that match the degree sequence can still miss this badly.  The bridge
    count itself comes from the shared iterative Tarjan DFS
    (:func:`repro.graph.cuts.bridges`, O(N+E)) under either backend — it
    is an exact integer, so the value is identical by construction;
    *backend* is accepted for contract uniformity with the sweeps.
    """
    resolve_backend(backend, graph.num_nodes)  # validate the argument
    m = graph.num_edges
    if m == 0:
        return float("nan")
    return (m - len(bridges(graph))) / m


def shortcut_fraction(graph: Graph, backend: str = "auto") -> float:
    """Fraction of links with a two-hop bypass (the link closes at least
    one triangle) — the radius-2 "shortcut" count of the Zhou–Mondragón
    redundancy analysis: traffic survives the link's loss with one extra
    hop.

    The python reference intersects sorted neighbor sets per edge; the CSR
    path counts edges with a positive entry of A·A via one sparse matmul.
    Both are exact integer counts, so the fraction is bit-identical.
    """
    m = graph.num_edges
    if m == 0:
        return float("nan")
    if resolve_backend(backend, graph.num_nodes) == "csr":
        view = graph.csr()
        adjacency = view.unweighted_sparse()
        two_paths = adjacency @ adjacency
        # Entries of A·A at edge positions count common neighbors; each
        # undirected shortcut edge appears twice (once per direction).
        bypassed = adjacency.multiply(two_paths)
        shortcuts = int((bypassed.data > 0).sum()) // 2
        return shortcuts / m
    shortcuts = 0
    for u, v in graph.edges():
        u_neighbors = graph.neighbor_weights(u)
        v_neighbors = graph.neighbor_weights(v)
        if len(v_neighbors) < len(u_neighbors):
            u_neighbors, v_neighbors = v_neighbors, u_neighbors
        if any(w in v_neighbors for w in u_neighbors):
            shortcuts += 1
    return shortcuts / m


def robustness_summary(
    graph: Graph, seed: SeedLike = 0, backend: str = "auto"
) -> Dict[str, float]:
    """The T5 scalar bundle for one topology: percolation survival and
    collapse points under random failure and adaptive-degree attack,
    sampled path inflation under random failure, and the redundancy
    fingerprints.  All sweeps use the fixed ``ROBUSTNESS_*`` shape so
    values are comparable (and cacheable) across every model and run.
    """
    random_run = percolation_sweep(
        graph, AttackStrategy.RANDOM, max_fraction=ROBUSTNESS_MAX_FRACTION,
        steps=ROBUSTNESS_STEPS, seed=seed, backend=backend,
    )
    attack_run = percolation_sweep(
        graph, AttackStrategy.DEGREE, max_fraction=ROBUSTNESS_MAX_FRACTION,
        steps=ROBUSTNESS_STEPS, seed=seed, backend=backend,
    )
    inflation = path_inflation_sweep(
        graph, AttackStrategy.RANDOM,
        max_fraction=ROBUSTNESS_INFLATION_FRACTION,
        steps=ROBUSTNESS_INFLATION_STEPS, samples=ROBUSTNESS_PATH_SAMPLES,
        seed=seed, backend=backend,
    )
    random_critical = critical_fraction(random_run)
    attack_critical = critical_fraction(attack_run)
    return {
        "random_survival": random_run.giant_fractions[-1],
        "attack_survival": attack_run.giant_fractions[-1],
        "random_critical": (
            random_critical if random_critical is not None else float("nan")
        ),
        "attack_critical": (
            attack_critical if attack_critical is not None else float("nan")
        ),
        "path_inflation": inflation.inflation[-1],
        "link_redundancy": link_redundancy(graph, backend=backend),
        "shortcut_fraction": shortcut_fraction(graph, backend=backend),
    }
