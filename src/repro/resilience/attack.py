"""Attack and failure tolerance (Albert–Jeong–Barabási).

The classic robustness result on internet maps: heavy-tailed topologies
are extraordinarily tolerant of *random* node failure (the giant component
survives removal of most nodes) yet fragile under *targeted* removal of the
highest-degree hubs — a handful of ASes hold the map together.  The
functions here run removal sweeps and report the giant-component fraction
trajectory plus the critical fraction where it collapses.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Tuple

from ..graph.betweenness import approximate_betweenness
from ..graph.graph import Graph
from ..graph.traversal import connected_components
from ..stats.rng import SeedLike, make_rng

__all__ = [
    "AttackStrategy",
    "RemovalTrajectory",
    "removal_sweep",
    "victim_order",
    "critical_fraction",
]

Node = Hashable


class AttackStrategy(enum.Enum):
    """How victims are chosen."""

    RANDOM = "random"
    DEGREE = "degree"              # highest current degree first (recomputed)
    DEGREE_STATIC = "degree-static"  # by initial degree, precomputed
    BETWEENNESS = "betweenness"    # by initial betweenness, precomputed


@dataclass(frozen=True)
class RemovalTrajectory:
    """Giant-component fraction as nodes are removed.

    ``fractions_removed[i]`` and ``giant_fractions[i]`` describe the state
    after the i-th measurement; both start at (0.0, 1.0).
    """

    strategy: AttackStrategy
    fractions_removed: Tuple[float, ...]
    giant_fractions: Tuple[float, ...]

    def as_points(self) -> List[Tuple[float, float]]:
        """(fraction removed, giant fraction) pairs for plotting."""
        return list(zip(self.fractions_removed, self.giant_fractions))

    def giant_at(self, removed_fraction: float) -> float:
        """Giant fraction at the last measurement <= *removed_fraction*."""
        best = self.giant_fractions[0]
        for f, g in zip(self.fractions_removed, self.giant_fractions):
            if f <= removed_fraction + 1e-12:
                best = g
            else:
                break
        return best


def _giant_fraction(graph: Graph, original_n: int) -> float:
    if graph.num_nodes == 0 or original_n == 0:
        return 0.0
    components = connected_components(graph)
    return (len(components[0]) if components else 0) / original_n


def victim_order(
    graph: Graph, strategy: AttackStrategy, rng, betweenness_pivots: int = 100
) -> List[Node]:
    """Precomputed removal order for the non-adaptive strategies.

    Equal scores (duplicate degrees, tied betweenness) are broken by the
    graph's node iteration order — a stable sort over ``graph.nodes()``, so
    ties fall to the earliest-inserted node id.  That makes the ordering a
    pure function of the graph, which is what lets the CSR sweep in
    :mod:`repro.resilience.sweep` (where array positions follow the same
    iteration order) reproduce the python reference bit-for-bit.

    ``ADAPTIVE`` degree (:attr:`AttackStrategy.DEGREE`) has no precomputed
    order and raises; it is handled inline by the sweeps.
    """
    nodes = list(graph.nodes())
    if strategy is AttackStrategy.RANDOM:
        rng.shuffle(nodes)
        return nodes
    if strategy is AttackStrategy.DEGREE_STATIC:
        return sorted(nodes, key=lambda n: -graph.degree(n))
    if strategy is AttackStrategy.BETWEENNESS:
        scores = approximate_betweenness(
            graph, num_pivots=min(betweenness_pivots, len(nodes)), seed=rng
        )
        return sorted(nodes, key=lambda n: -scores[n])
    raise ValueError(f"strategy {strategy} needs adaptive handling")


def removal_sweep(
    graph: Graph,
    strategy: AttackStrategy = AttackStrategy.RANDOM,
    max_fraction: float = 0.5,
    steps: int = 20,
    seed: SeedLike = 0,
    betweenness_pivots: int = 100,
) -> RemovalTrajectory:
    """Remove up to *max_fraction* of nodes, measuring at *steps* points.

    ``DEGREE`` recomputes the top-degree victim adaptively after every
    removal batch (the strongest attack); the other strategies precompute
    their ordering via :func:`victim_order`.  Equal degrees/betweenness are
    always broken by node iteration order, so the sweep is a pure function
    of (graph, strategy, seed) — the contract the vectorized sweep in
    :mod:`repro.resilience.sweep` reproduces bit-for-bit.  The input graph
    is never mutated.
    """
    if not 0 < max_fraction <= 1:
        raise ValueError("max_fraction must be in (0, 1]")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    rng = make_rng(seed)
    work = graph.copy()
    original_n = graph.num_nodes
    if original_n == 0:
        raise ValueError("cannot attack an empty graph")

    total_victims = int(max_fraction * original_n)
    batch = max(total_victims // steps, 1)
    adaptive = strategy is AttackStrategy.DEGREE
    order: List[Node] = []
    if not adaptive:
        order = victim_order(work, strategy, rng, betweenness_pivots)

    fractions = [0.0]
    giants = [_giant_fraction(work, original_n)]
    removed = 0
    cursor = 0
    while removed < total_victims:
        for _ in range(min(batch, total_victims - removed)):
            if adaptive:
                # max() keeps the first maximal element, so equal degrees
                # fall to the earliest surviving node in iteration order —
                # the same deterministic tie-break as victim_order().
                victim = max(work.nodes(), key=work.degree)
            else:
                victim = order[cursor]
                cursor += 1
            work.remove_node(victim)
            removed += 1
        fractions.append(removed / original_n)
        giants.append(_giant_fraction(work, original_n))
    return RemovalTrajectory(
        strategy=strategy,
        fractions_removed=tuple(fractions),
        giant_fractions=tuple(giants),
    )


def critical_fraction(
    trajectory: RemovalTrajectory, collapse_threshold: float = 0.05
) -> Optional[float]:
    """First removal fraction where the giant drops below the threshold.

    None when the network never collapses within the sweep — itself the
    headline result for random failure on heavy-tailed maps.
    """
    if not 0 < collapse_threshold < 1:
        raise ValueError("collapse_threshold must be in (0, 1)")
    for f, g in zip(trajectory.fractions_removed, trajectory.giant_fractions):
        if g < collapse_threshold:
            return f
    return None
