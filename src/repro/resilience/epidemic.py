"""SIS epidemic spreading (Pastor-Satorras–Vespignani).

The other canonical dynamics-on-internet-topology result: on scale-free
maps the SIS epidemic threshold vanishes — any infection rate sustains an
endemic state, because hubs act as permanent reservoirs.  On Poissonian
topologies the classical threshold ``beta/mu > 1/<k>`` applies.

Discrete-time SIS: each step, every infected node infects each susceptible
neighbor independently with probability ``beta``, then recovers with
probability ``mu``.  :func:`endemic_prevalence` runs to quasi-stationarity
and reports the surviving infected fraction (averaged over the sampling
window); :func:`prevalence_curve` sweeps beta to trace the transition.

The mean-field prediction ``threshold ≈ 1/λ₁`` from
:mod:`repro.graph.spectral` is the analytic anchor the tests check against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from ..graph.graph import Graph
from ..stats.rng import SeedLike, make_rng

__all__ = ["SisResult", "simulate_sis", "endemic_prevalence", "prevalence_curve"]

Node = Hashable


@dataclass(frozen=True)
class SisResult:
    """One SIS run: per-step infected fractions."""

    beta: float
    mu: float
    trajectory: Tuple[float, ...]
    died_out: bool

    @property
    def final_prevalence(self) -> float:
        """Mean infected fraction over the last quarter of the run."""
        if not self.trajectory:
            return 0.0
        tail = self.trajectory[-max(len(self.trajectory) // 4, 1):]
        return sum(tail) / len(tail)


def simulate_sis(
    graph: Graph,
    beta: float,
    mu: float = 0.5,
    steps: int = 120,
    initial_fraction: float = 0.05,
    seed: SeedLike = 0,
) -> SisResult:
    """Run one discrete-time SIS epidemic on *graph*."""
    if not 0 <= beta <= 1:
        raise ValueError("beta must be in [0, 1]")
    if not 0 < mu <= 1:
        raise ValueError("mu must be in (0, 1]")
    if not 0 < initial_fraction <= 1:
        raise ValueError("initial_fraction must be in (0, 1]")
    if steps < 1:
        raise ValueError("steps must be >= 1")
    nodes = list(graph.nodes())
    if not nodes:
        raise ValueError("cannot infect an empty graph")
    rng = make_rng(seed)
    n = len(nodes)
    num_seeds = max(int(initial_fraction * n), 1)
    infected = set(rng.sample(nodes, num_seeds))

    trajectory: List[float] = []
    for _ in range(steps):
        newly_infected = set()
        for node in infected:
            for neighbor in graph.neighbors(node):
                if neighbor not in infected and rng.random() < beta:
                    newly_infected.add(neighbor)
        recovered = {node for node in infected if rng.random() < mu}
        infected = (infected - recovered) | newly_infected
        trajectory.append(len(infected) / n)
        if not infected:
            break
    return SisResult(
        beta=beta,
        mu=mu,
        trajectory=tuple(trajectory),
        died_out=not infected,
    )


def endemic_prevalence(
    graph: Graph,
    beta: float,
    mu: float = 0.5,
    steps: int = 120,
    runs: int = 3,
    seed: SeedLike = 0,
) -> float:
    """Mean quasi-stationary prevalence over independent runs."""
    if runs < 1:
        raise ValueError("runs must be >= 1")
    rng = make_rng(seed)
    total = 0.0
    for _ in range(runs):
        result = simulate_sis(
            graph, beta=beta, mu=mu, steps=steps, seed=rng.getrandbits(32)
        )
        total += result.final_prevalence
    return total / runs


def prevalence_curve(
    graph: Graph,
    betas: Sequence[float],
    mu: float = 0.5,
    steps: int = 120,
    runs: int = 3,
    seed: SeedLike = 0,
) -> List[Tuple[float, float]]:
    """(beta, endemic prevalence) sweep — the epidemic phase diagram."""
    return [
        (beta, endemic_prevalence(graph, beta, mu=mu, steps=steps, runs=runs, seed=seed))
        for beta in betas
    ]
